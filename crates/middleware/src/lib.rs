//! # garlic-middleware — the Garlic analogue
//!
//! The middleware of the paper: it holds a [`catalog::Catalog`] of
//! subsystems, plans Boolean queries over their attributes
//! ([`plan::plan`]), and executes the plan with full cost accounting
//! ([`exec::Garlic::top_k`]).
//!
//! The planner implements the full Section 4/8 strategy catalogue: the
//! filtered "Beatles" strategy, A₀′ for conjunctions, B₀ for disjunctions,
//! A₀-with-compound-aggregation for arbitrary positive queries, the naive
//! scan for negations, and Section 8 internal-conjunction pushdown.
//!
//! The whole stack is built for the paper's *multi-user* setting: the
//! [`catalog::Catalog`] owns its subsystems as `Arc` handles and is
//! cheaply cloneable, [`exec::Garlic`] and [`exec::QuerySession`] are
//! `'static` and `Send + Sync`, and [`service::GarlicService`] executes
//! batches of independent queries concurrently over one shared catalog —
//! with per-query Section 5 access counts identical to sequential
//! execution.
//!
//! ```
//! use garlic_middleware::{Catalog, Garlic, GarlicQuery, GarlicService};
//! use garlic_subsys::{cd_store::demo_subsystems, Target};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let (rel, qbic, text) = demo_subsystems(&mut rng);
//! let mut catalog = Catalog::new();
//! catalog.register(rel).unwrap();
//! catalog.register(qbic).unwrap();
//! catalog.register(text).unwrap();
//!
//! let garlic = Garlic::new(catalog);
//! let query = GarlicQuery::and(
//!     GarlicQuery::atom("Artist", Target::text("Beatles")),
//!     GarlicQuery::atom("AlbumColor", Target::text("red")),
//! );
//! let result = garlic.top_k(&query, 2).unwrap();
//! assert_eq!(result.answers.len(), 2);
//!
//! // The same middleware, as a concurrent multi-query service:
//! let service = GarlicService::new(garlic);
//! let batch = vec![(query.clone(), 2), (query, 1)];
//! let results = service.top_k_batch(&batch);
//! assert_eq!(results[0].as_ref().unwrap().answers.len(), 2);
//! assert_eq!(results[1].as_ref().unwrap().answers.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod error;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod query;
pub mod service;

pub use catalog::Catalog;
pub use error::{MiddlewareError, QueryError};
pub use exec::{EngineDetails, Explain, Garlic, QueryResult, QuerySession};
pub use parser::{parse_query, ParseError};
pub use plan::{Plan, PlannerOptions, Strategy};
pub use query::{GarlicQuery, QueryAggregation};
pub use service::{GarlicService, QueryRequest};

// Re-exported so downstream callers can attach a registry and consume
// traces without naming the telemetry crate themselves.
pub use garlic_telemetry::{QueryTrace, Telemetry, TelemetrySnapshot};
