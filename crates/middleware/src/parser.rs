//! A small text query language for Garlic queries.
//!
//! The paper deliberately abstracts away "the choice of query language";
//! this parser provides a concrete one for the examples and tools:
//!
//! ```text
//! query   := or
//! or      := and ( "OR" and )*
//! and     := unary ( "AND" unary )*
//! unary   := "NOT" unary | "(" query ")" | atom
//! atom    := ident "=" value | ident "~" termlist
//! value   := quoted string | number | bare word
//! termlist:= quoted string of whitespace-separated terms
//! ```
//!
//! `=` builds a [`Target::Text`]/[`Target::Number`] atom; `~` builds a
//! [`Target::Terms`] full-text atom. Keywords are case-insensitive.
//!
//! Nesting is bounded: the recursive-descent parser rejects queries nested
//! deeper than [`MAX_NESTING_DEPTH`] with a [`ParseError`] instead of
//! recursing without limit — adversarial input like 100 000 opening
//! parentheses (or `NOT`s) must fail cleanly, not overflow the stack of
//! whichever service thread happened to parse it.
//!
//! ```
//! use garlic_middleware::parser::parse_query;
//! let q = parse_query(r#"Artist = "Beatles" AND (Color = red OR NOT Shape = round)"#).unwrap();
//! assert_eq!(q.atoms().len(), 3);
//! ```

use garlic_subsys::{AtomicQuery, Target};
use std::fmt;

use crate::query::GarlicQuery;

/// The maximum `(`/`NOT` nesting depth [`parse_query`] accepts. Deep
/// enough for any real query; shallow enough that parsing — and every
/// recursive consumer of the resulting [`GarlicQuery`] tree (NNF
/// conversion, planning, `Drop`) — stays far from stack exhaustion.
pub const MAX_NESTING_DEPTH: usize = 128;

/// A parse failure, with position and explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    And,
    Or,
    Not,
    LParen,
    RParen,
    Eq,
    Tilde,
    Word(String),
    Quoted(String),
    Number(f64),
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Token)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            let start = self.pos;
            let Some(c) = self.peek() else { break };
            let token = match c {
                '(' => {
                    self.pos += 1;
                    Token::LParen
                }
                ')' => {
                    self.pos += 1;
                    Token::RParen
                }
                '=' => {
                    self.pos += 1;
                    Token::Eq
                }
                '~' => {
                    self.pos += 1;
                    Token::Tilde
                }
                '"' => Token::Quoted(self.quoted()?),
                c if c.is_ascii_digit() || c == '-' || c == '+' => self.number()?,
                c if c.is_alphanumeric() || c == '_' => self.word(),
                other => return Err(self.error(format!("unexpected character {other:?}"))),
            };
            out.push((start, token));
        }
        Ok(out)
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.pos += self.peek().map_or(0, char::len_utf8);
        }
    }

    fn quoted(&mut self) -> Result<String, ParseError> {
        debug_assert_eq!(self.peek(), Some('"'));
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '"' {
                let text = self.input[start..self.pos].to_owned();
                self.pos += 1;
                return Ok(text);
            }
            self.pos += c.len_utf8();
        }
        Err(self.error("unterminated string literal"))
    }

    fn number(&mut self) -> Result<Token, ParseError> {
        let start = self.pos;
        if matches!(self.peek(), Some('-' | '+')) {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit() || c == '.') {
            self.pos += 1;
        }
        let text = &self.input[start..self.pos];
        text.parse::<f64>()
            .map(Token::Number)
            .map_err(|_| self.error(format!("invalid number {text:?}")))
    }

    fn word(&mut self) -> Token {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_') {
            self.pos += self.peek().map_or(0, char::len_utf8);
        }
        let text = &self.input[start..self.pos];
        match text.to_ascii_uppercase().as_str() {
            "AND" => Token::And,
            "OR" => Token::Or,
            "NOT" => Token::Not,
            _ => Token::Word(text.to_owned()),
        }
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    cursor: usize,
    input_len: usize,
    depth: usize,
}

impl Parser {
    /// Guards every recursion point of `unary` (both `NOT` and `(` descend
    /// through it) with the nesting bound. Depth counts the construct being
    /// entered, so a query at exactly [`MAX_NESTING_DEPTH`] still parses and
    /// the first construct past it is the one reported.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            Err(self.error(format!(
                "query nesting depth {} exceeds the maximum depth of {MAX_NESTING_DEPTH}",
                self.depth
            )))
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.cursor).map(|(_, t)| t)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.cursor)
            .map(|(p, _)| *p)
            .unwrap_or(self.input_len)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.position(),
            message: message.into(),
        }
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.cursor).map(|(_, t)| t.clone());
        if t.is_some() {
            self.cursor += 1;
        }
        t
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(token) {
            self.cursor += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn or_expr(&mut self) -> Result<GarlicQuery, ParseError> {
        let mut parts = vec![self.and_expr()?];
        while self.peek() == Some(&Token::Or) {
            self.cursor += 1;
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            GarlicQuery::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<GarlicQuery, ParseError> {
        let mut parts = vec![self.unary()?];
        while self.peek() == Some(&Token::And) {
            self.cursor += 1;
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            GarlicQuery::And(parts)
        })
    }

    fn unary(&mut self) -> Result<GarlicQuery, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.cursor += 1;
                self.enter()?;
                let inner = self.unary();
                self.leave();
                Ok(GarlicQuery::not(inner?))
            }
            Some(Token::LParen) => {
                self.cursor += 1;
                self.enter()?;
                let inner = self.or_expr();
                self.leave();
                let inner = inner?;
                self.expect(&Token::RParen, "closing parenthesis")?;
                Ok(inner)
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<GarlicQuery, ParseError> {
        let attribute = match self.advance() {
            Some(Token::Word(w)) => w,
            _ => return Err(self.error("expected an attribute name")),
        };
        match self.advance() {
            Some(Token::Eq) => {
                let target = match self.advance() {
                    Some(Token::Quoted(s)) => Target::Text(s),
                    Some(Token::Word(w)) => Target::Text(w),
                    Some(Token::Number(n)) => Target::Number(n),
                    _ => return Err(self.error("expected a value after '='")),
                };
                Ok(GarlicQuery::Atom(AtomicQuery { attribute, target }))
            }
            Some(Token::Tilde) => {
                let terms = match self.advance() {
                    Some(Token::Quoted(s)) => {
                        s.split_whitespace().map(str::to_owned).collect::<Vec<_>>()
                    }
                    Some(Token::Word(w)) => vec![w],
                    _ => return Err(self.error("expected search terms after '~'")),
                };
                if terms.is_empty() {
                    return Err(self.error("empty term list"));
                }
                Ok(GarlicQuery::Atom(AtomicQuery {
                    attribute,
                    target: Target::Terms(terms),
                }))
            }
            _ => Err(self.error("expected '=' or '~' after the attribute")),
        }
    }
}

/// Parses the query language described in the module docs.
pub fn parse_query(input: &str) -> Result<GarlicQuery, ParseError> {
    let tokens = Lexer::new(input).tokens()?;
    if tokens.is_empty() {
        return Err(ParseError {
            position: 0,
            message: "empty query".into(),
        });
    }
    let mut parser = Parser {
        tokens,
        cursor: 0,
        input_len: input.len(),
        depth: 0,
    };
    let query = parser.or_expr()?;
    if parser.peek().is_some() {
        return Err(parser.error("trailing input after the query"));
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_atom_forms() {
        let q = parse_query(r#"Artist = "Beatles""#).unwrap();
        assert_eq!(q, GarlicQuery::atom("Artist", Target::text("Beatles")));
        let q = parse_query("Color = red").unwrap();
        assert_eq!(q, GarlicQuery::atom("Color", Target::text("red")));
        let q = parse_query("Year = 1969").unwrap();
        assert_eq!(q, GarlicQuery::atom("Year", Target::Number(1969.0)));
        let q = parse_query(r#"Review ~ "psychedelic rock""#).unwrap();
        assert_eq!(
            q,
            GarlicQuery::atom("Review", Target::terms(&["psychedelic", "rock"]))
        );
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let q = parse_query("A = x OR B = y AND C = z").unwrap();
        match q {
            GarlicQuery::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], GarlicQuery::And(_)));
            }
            other => panic!("expected OR at top level, got {other:?}"),
        }
    }

    #[test]
    fn parentheses_override_precedence() {
        let q = parse_query("(A = x OR B = y) AND C = z").unwrap();
        match q {
            GarlicQuery::And(parts) => {
                assert!(matches!(parts[0], GarlicQuery::Or(_)));
            }
            other => panic!("expected AND at top level, got {other:?}"),
        }
    }

    #[test]
    fn not_parses_and_nests() {
        let q = parse_query("NOT Color = red").unwrap();
        assert!(matches!(q, GarlicQuery::Not(_)));
        let q = parse_query("NOT NOT Color = red").unwrap();
        assert_eq!(q.to_nnf().literals.len(), 1);
        assert!(!q.to_nnf().literals[0].negated);
    }

    #[test]
    fn keywords_case_insensitive() {
        let a = parse_query("A = x and B = y or not C = z").unwrap();
        let b = parse_query("A = x AND B = y OR NOT C = z").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn round_trips_the_running_example() {
        let q = parse_query(r#"Artist = "Beatles" AND AlbumColor = red"#).unwrap();
        assert_eq!(
            q,
            GarlicQuery::and(
                GarlicQuery::atom("Artist", Target::text("Beatles")),
                GarlicQuery::atom("AlbumColor", Target::text("red")),
            )
        );
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_query("Artist =").unwrap_err();
        assert!(err.message.contains("value"));
        let err = parse_query(r#"Artist = "unterminated"#).unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = parse_query("").unwrap_err();
        assert!(err.message.contains("empty"));
        let err = parse_query("A = x extra").unwrap_err();
        assert!(err.message.contains("trailing") || err.message.contains("expected"));
        let err = parse_query("A = x AND").unwrap_err();
        assert!(err.message.contains("attribute"));
        let err = parse_query("@bad").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn numbers_with_signs_and_decimals() {
        let q = parse_query("Score = -1.5").unwrap();
        assert_eq!(q, GarlicQuery::atom("Score", Target::Number(-1.5)));
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        // Regression: 100k opening parens used to recurse 100k frames deep
        // and crash with a stack overflow; now it is a clean ParseError.
        let depth = 100_000;
        let deep_parens = format!("{}A = x{}", "(".repeat(depth), ")".repeat(depth));
        let err = parse_query(&deep_parens).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");

        let deep_nots = format!("{}A = x", "NOT ".repeat(depth));
        let err = parse_query(&deep_nots).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn nesting_boundary_is_exact_at_the_limit() {
        // Pin the fence at 127 / 128 / 129: everything up to and including
        // MAX_NESTING_DEPTH parses, the first depth past it is rejected,
        // and the error names the offending depth, not just the limit.
        let at = |depth: usize| format!("{}A = x{}", "(".repeat(depth), ")".repeat(depth));

        assert_eq!(
            parse_query(&at(MAX_NESTING_DEPTH - 1))
                .unwrap()
                .atoms()
                .len(),
            1,
            "depth 127 parses"
        );
        assert_eq!(
            parse_query(&at(MAX_NESTING_DEPTH)).unwrap().atoms().len(),
            1,
            "depth 128 is inside the limit, not past it"
        );

        let err = parse_query(&at(MAX_NESTING_DEPTH + 1)).unwrap_err();
        assert!(
            err.message
                .contains(&format!("depth {}", MAX_NESTING_DEPTH + 1)),
            "the error reports the offending depth: {err}"
        );
        assert!(
            err.message.contains(&MAX_NESTING_DEPTH.to_string()),
            "the error reports the limit: {err}"
        );

        // NOT NOT ... hits the same guard at the same fence.
        let nots = |depth: usize| format!("{}A = x", "NOT ".repeat(depth));
        assert_eq!(
            parse_query(&nots(MAX_NESTING_DEPTH))
                .unwrap()
                .to_nnf()
                .literals
                .len(),
            1
        );
        let err = parse_query(&nots(MAX_NESTING_DEPTH + 1)).unwrap_err();
        assert!(err.message.contains("nesting depth"), "{err}");
    }

    #[test]
    fn depth_resets_between_siblings_not_cumulative() {
        // 200 shallow parenthesised atoms AND-ed together: depth never
        // exceeds 1, so the bound must not trip.
        let parts: Vec<String> = (0..200).map(|i| format!("(A{i} = x)")).collect();
        let q = parse_query(&parts.join(" AND ")).unwrap();
        assert_eq!(q.atoms().len(), 200);
    }
}
