//! Garlic-level queries: Boolean combinations of concrete atomic queries,
//! graded under the standard calculus (min / max / 1−x — the Garlic
//! semantics of Section 2).

use garlic_agg::{Aggregation, Grade};
use garlic_core::query::{Calculus, Query};
use garlic_subsys::AtomicQuery;

/// A Boolean combination of atomic queries, e.g.
/// `(Artist = "Beatles") ∧ (AlbumColor = "red")`.
#[derive(Debug, Clone, PartialEq)]
pub enum GarlicQuery {
    /// An atomic query.
    Atom(AtomicQuery),
    /// Conjunction (graded by min).
    And(Vec<GarlicQuery>),
    /// Disjunction (graded by max).
    Or(Vec<GarlicQuery>),
    /// Negation (graded by 1−x).
    Not(Box<GarlicQuery>),
}

impl GarlicQuery {
    /// Convenience: an atomic leaf.
    pub fn atom(attribute: &str, target: garlic_subsys::Target) -> GarlicQuery {
        GarlicQuery::Atom(AtomicQuery::new(attribute, target))
    }

    /// Convenience: binary conjunction.
    pub fn and(a: GarlicQuery, b: GarlicQuery) -> GarlicQuery {
        GarlicQuery::And(vec![a, b])
    }

    /// Convenience: binary disjunction.
    pub fn or(a: GarlicQuery, b: GarlicQuery) -> GarlicQuery {
        GarlicQuery::Or(vec![a, b])
    }

    /// Convenience: negation. (Deliberately named like the logic operator;
    /// this is a static constructor, not `std::ops::Not`.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(q: GarlicQuery) -> GarlicQuery {
        GarlicQuery::Not(Box::new(q))
    }

    /// The distinct atomic queries, in first-occurrence order. A repeated
    /// atom (as in `Q ∧ ¬Q`) appears once and is evaluated once.
    pub fn atoms(&self) -> Vec<AtomicQuery> {
        let mut out: Vec<AtomicQuery> = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut Vec<AtomicQuery>) {
        match self {
            GarlicQuery::Atom(a) => {
                if !out.contains(a) {
                    out.push(a.clone());
                }
            }
            GarlicQuery::And(qs) | GarlicQuery::Or(qs) => {
                for q in qs {
                    q.collect_atoms(out);
                }
            }
            GarlicQuery::Not(q) => q.collect_atoms(out),
        }
    }

    /// Lowers to the index-based core algebra, given the atom universe from
    /// [`GarlicQuery::atoms`].
    pub fn to_core(&self, atoms: &[AtomicQuery]) -> Query {
        match self {
            GarlicQuery::Atom(a) => Query::Atom(
                atoms
                    .iter()
                    .position(|x| x == a)
                    .expect("atom universe must come from atoms()"),
            ),
            GarlicQuery::And(qs) => Query::And(qs.iter().map(|q| q.to_core(atoms)).collect()),
            GarlicQuery::Or(qs) => Query::Or(qs.iter().map(|q| q.to_core(atoms)).collect()),
            GarlicQuery::Not(q) => Query::Not(Box::new(q.to_core(atoms))),
        }
    }

    /// Negation-free?
    pub fn is_positive(&self) -> bool {
        match self {
            GarlicQuery::Atom(_) => true,
            GarlicQuery::And(qs) | GarlicQuery::Or(qs) => qs.iter().all(Self::is_positive),
            GarlicQuery::Not(_) => false,
        }
    }

    /// If the query is a flat conjunction of distinct atoms, those atoms.
    pub fn as_flat_and(&self) -> Option<Vec<&AtomicQuery>> {
        match self {
            GarlicQuery::Atom(a) => Some(vec![a]),
            GarlicQuery::And(qs) => {
                let mut out = Vec::with_capacity(qs.len());
                for q in qs {
                    match q {
                        GarlicQuery::Atom(a) if !out.contains(&a) => out.push(a),
                        _ => return None,
                    }
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// If the query is a flat disjunction of distinct atoms, those atoms.
    pub fn as_flat_or(&self) -> Option<Vec<&AtomicQuery>> {
        match self {
            GarlicQuery::Or(qs) if qs.len() >= 2 => {
                let mut out = Vec::with_capacity(qs.len());
                for q in qs {
                    match q {
                        GarlicQuery::Atom(a) if !out.contains(&a) => out.push(a),
                        _ => return None,
                    }
                }
                Some(out)
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for GarlicQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GarlicQuery::Atom(a) => write!(f, "({a})"),
            GarlicQuery::And(qs) => {
                let parts: Vec<String> = qs.iter().map(|q| format!("{q}")).collect();
                write!(f, "({})", parts.join(" AND "))
            }
            GarlicQuery::Or(qs) => {
                let parts: Vec<String> = qs.iter().map(|q| format!("{q}")).collect();
                write!(f, "({})", parts.join(" OR "))
            }
            GarlicQuery::Not(q) => write!(f, "NOT {q}"),
        }
    }
}

/// A literal of a negation-normal-form query: an atomic query or its
/// negation.
#[derive(Debug, Clone, PartialEq)]
pub struct Literal {
    /// The underlying atomic query.
    pub atom: AtomicQuery,
    /// Whether the literal is the atom's negation.
    pub negated: bool,
}

/// A query in negation-normal form: negations appear only on atoms.
///
/// Under the standard calculus an NNF query is *monotone in its literals'
/// grades* (only min/max combine them), so algorithm A₀ applies — with each
/// negated literal served by a
/// [`ComplementSource`](garlic_core::ComplementSource), per the Section 7
/// observation that the sorted order of `¬Q` is the reverse of `Q`'s.
#[derive(Debug, Clone, PartialEq)]
pub enum NnfNode {
    /// Index into [`Nnf::literals`].
    Lit(usize),
    /// Conjunction.
    And(Vec<NnfNode>),
    /// Disjunction.
    Or(Vec<NnfNode>),
}

/// A query converted to negation-normal form, with its literal table.
#[derive(Debug, Clone, PartialEq)]
pub struct Nnf {
    /// Distinct literals, in first-occurrence order. Note `Q` and `¬Q` are
    /// *different* literals over the same atom (the hard query of Section 7
    /// produces exactly that pair).
    pub literals: Vec<Literal>,
    /// The formula over literal indexes.
    pub root: NnfNode,
}

impl Nnf {
    /// Grades one object from its literals' grades (min for ∧, max for ∨).
    pub fn grade(&self, literal_grades: &[Grade]) -> Grade {
        fn eval(node: &NnfNode, grades: &[Grade]) -> Grade {
            match node {
                NnfNode::Lit(i) => grades[*i],
                NnfNode::And(children) => children
                    .iter()
                    .map(|c| eval(c, grades))
                    .fold(Grade::ONE, Grade::min),
                NnfNode::Or(children) => children
                    .iter()
                    .map(|c| eval(c, grades))
                    .fold(Grade::ZERO, Grade::max),
            }
        }
        eval(&self.root, literal_grades)
    }
}

impl GarlicQuery {
    /// Converts to negation-normal form by pushing negations down through
    /// De Morgan's laws (valid for the standard calculus — property-tested
    /// in `tests/semantics_equivalences.rs`) and cancelling double
    /// negations.
    pub fn to_nnf(&self) -> Nnf {
        let mut literals: Vec<Literal> = Vec::new();
        let root = nnf_rec(self, false, &mut literals);
        Nnf { literals, root }
    }
}

fn nnf_rec(query: &GarlicQuery, negate: bool, literals: &mut Vec<Literal>) -> NnfNode {
    match query {
        GarlicQuery::Atom(a) => {
            let lit = Literal {
                atom: a.clone(),
                negated: negate,
            };
            let idx = literals.iter().position(|l| *l == lit).unwrap_or_else(|| {
                literals.push(lit);
                literals.len() - 1
            });
            NnfNode::Lit(idx)
        }
        GarlicQuery::And(qs) => {
            let children = qs.iter().map(|q| nnf_rec(q, negate, literals)).collect();
            if negate {
                NnfNode::Or(children) // ¬(A ∧ B) = ¬A ∨ ¬B
            } else {
                NnfNode::And(children)
            }
        }
        GarlicQuery::Or(qs) => {
            let children = qs.iter().map(|q| nnf_rec(q, negate, literals)).collect();
            if negate {
                NnfNode::And(children) // ¬(A ∨ B) = ¬A ∧ ¬B
            } else {
                NnfNode::Or(children)
            }
        }
        GarlicQuery::Not(q) => nnf_rec(q, !negate, literals),
    }
}

/// An NNF query as an aggregation over its *literals'* grades — always
/// monotone, so A₀ evaluates any Boolean query once negations are pushed
/// to the sources.
#[derive(Debug, Clone)]
pub struct NnfAggregation {
    nnf: Nnf,
}

impl NnfAggregation {
    /// Wraps an NNF query.
    pub fn new(nnf: Nnf) -> Self {
        NnfAggregation { nnf }
    }

    /// The literal table, in the order grades must be supplied.
    pub fn literals(&self) -> &[Literal] {
        &self.nnf.literals
    }
}

impl Aggregation for NnfAggregation {
    fn name(&self) -> String {
        "garlic-nnf-query".to_owned()
    }

    fn combine(&self, grades: &[Grade]) -> Grade {
        self.nnf.grade(grades)
    }

    fn is_monotone(&self) -> bool {
        true // min/max over literal grades only.
    }

    fn is_strict(&self, _arity: usize) -> bool {
        matches!(&self.nnf.root, NnfNode::And(children)
            if children.iter().all(|c| matches!(c, NnfNode::Lit(_))))
    }
}

/// A compound query as an m-ary [`Aggregation`] over its atoms' grades,
/// under the standard calculus. This is what lets algorithm A₀ evaluate
/// *any* positive Boolean query, not just flat conjunctions — positive
/// min/max combinations are monotone, which is all Theorem 4.2 needs.
#[derive(Debug, Clone)]
pub struct QueryAggregation {
    core: Query,
    positive: bool,
    conjunctive: bool,
}

impl QueryAggregation {
    /// Builds the aggregation for a query over its atom universe.
    pub fn new(query: &GarlicQuery, atoms: &[AtomicQuery]) -> Self {
        QueryAggregation {
            core: query.to_core(atoms),
            positive: query.is_positive(),
            conjunctive: query.as_flat_and().is_some(),
        }
    }
}

impl Aggregation for QueryAggregation {
    fn name(&self) -> String {
        "garlic-query(min/max/1-x)".to_owned()
    }

    fn combine(&self, grades: &[Grade]) -> Grade {
        self.core.grade(grades, &Calculus::standard())
    }

    fn is_monotone(&self) -> bool {
        // Positive min/max queries are monotone; negation breaks it.
        self.positive
    }

    fn is_strict(&self, _arity: usize) -> bool {
        // A flat conjunction under min is strict; anything containing an OR
        // (or a negation) is not, in general. Conservative.
        self.conjunctive
    }

    fn zero_annihilates(&self, _arity: usize) -> bool {
        self.conjunctive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garlic_subsys::Target;

    fn q_beatles_red() -> GarlicQuery {
        GarlicQuery::and(
            GarlicQuery::atom("Artist", Target::text("Beatles")),
            GarlicQuery::atom("AlbumColor", Target::text("red")),
        )
    }

    #[test]
    fn atoms_dedupe_and_order() {
        let a = GarlicQuery::atom("Color", Target::text("red"));
        let hard = GarlicQuery::and(a.clone(), GarlicQuery::not(a));
        let atoms = hard.atoms();
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].attribute, "Color");
    }

    #[test]
    fn flat_shapes_detected() {
        let q = q_beatles_red();
        assert_eq!(q.as_flat_and().unwrap().len(), 2);
        assert!(q.as_flat_or().is_none());

        let o = GarlicQuery::or(
            GarlicQuery::atom("Color", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        assert_eq!(o.as_flat_or().unwrap().len(), 2);
        assert!(o.as_flat_and().is_none());

        let nested = GarlicQuery::and(
            GarlicQuery::atom("Artist", Target::text("Who")),
            GarlicQuery::or(
                GarlicQuery::atom("Color", Target::text("red")),
                GarlicQuery::atom("Shape", Target::text("round")),
            ),
        );
        assert!(nested.as_flat_and().is_none());
    }

    #[test]
    fn query_aggregation_evaluates_standard_semantics() {
        let q = q_beatles_red();
        let atoms = q.atoms();
        let agg = QueryAggregation::new(&q, &atoms);
        let g = |v: f64| Grade::new(v).unwrap();
        assert_eq!(agg.combine(&[g(1.0), g(0.7)]), g(0.7)); // min
        assert!(agg.is_monotone());
        assert!(agg.is_strict(2));
        assert!(agg.zero_annihilates(2));
    }

    #[test]
    fn nested_positive_query_monotone_not_strict() {
        let q = GarlicQuery::and(
            GarlicQuery::atom("Artist", Target::text("Who")),
            GarlicQuery::or(
                GarlicQuery::atom("Color", Target::text("red")),
                GarlicQuery::atom("Shape", Target::text("round")),
            ),
        );
        let atoms = q.atoms();
        let agg = QueryAggregation::new(&q, &atoms);
        assert!(agg.is_monotone());
        assert!(!agg.is_strict(3));
        let g = |v: f64| Grade::new(v).unwrap();
        // min(a, max(b, c))
        assert_eq!(agg.combine(&[g(0.8), g(0.3), g(0.6)]), g(0.6));
    }

    #[test]
    fn negated_query_not_monotone() {
        let a = GarlicQuery::atom("Color", Target::text("red"));
        let hard = GarlicQuery::and(a.clone(), GarlicQuery::not(a));
        let atoms = hard.atoms();
        let agg = QueryAggregation::new(&hard, &atoms);
        assert!(!agg.is_monotone());
        // μ(x) = min(g, 1-g).
        assert_eq!(agg.combine(&[Grade::HALF]), Grade::HALF);
        let g = |v: f64| Grade::new(v).unwrap();
        assert!(agg.combine(&[g(0.9)]).approx_eq(g(0.1), 1e-12));
    }

    #[test]
    fn display_is_readable() {
        let s = format!("{}", q_beatles_red());
        assert!(s.contains("AND"));
        assert!(s.contains("Beatles"));
    }

    #[test]
    fn nnf_of_hard_query_has_two_literals_over_one_atom() {
        let red = GarlicQuery::atom("Color", Target::text("red"));
        let hard = GarlicQuery::and(red.clone(), GarlicQuery::not(red));
        let nnf = hard.to_nnf();
        assert_eq!(nnf.literals.len(), 2);
        assert!(!nnf.literals[0].negated);
        assert!(nnf.literals[1].negated);
        assert_eq!(nnf.literals[0].atom, nnf.literals[1].atom);
    }

    #[test]
    fn nnf_pushes_negation_through_de_morgan() {
        // ¬(A ∧ (B ∨ C)) = ¬A ∨ (¬B ∧ ¬C).
        let q = GarlicQuery::not(GarlicQuery::and(
            GarlicQuery::atom("A", Target::text("a")),
            GarlicQuery::or(
                GarlicQuery::atom("B", Target::text("b")),
                GarlicQuery::atom("C", Target::text("c")),
            ),
        ));
        let nnf = q.to_nnf();
        assert_eq!(nnf.literals.len(), 3);
        assert!(nnf.literals.iter().all(|l| l.negated));
        assert!(matches!(nnf.root, NnfNode::Or(_)));
    }

    #[test]
    fn double_negation_cancels() {
        let a = GarlicQuery::atom("A", Target::text("a"));
        let nnf = GarlicQuery::not(GarlicQuery::not(a)).to_nnf();
        assert_eq!(nnf.literals.len(), 1);
        assert!(!nnf.literals[0].negated);
    }

    #[test]
    fn nnf_grading_matches_calculus_grading() {
        // Grade via NNF-over-literal-grades vs the original query under the
        // standard calculus: identical for all atom grades.
        let a = GarlicQuery::atom("A", Target::text("a"));
        let b = GarlicQuery::atom("B", Target::text("b"));
        let q = GarlicQuery::not(GarlicQuery::or(
            GarlicQuery::and(a.clone(), GarlicQuery::not(b.clone())),
            b.clone(),
        ));
        let atoms = q.atoms();
        let nnf = q.to_nnf();
        let core = q.to_core(&atoms);
        let calc = garlic_core::query::Calculus::standard();
        for ga in garlic_agg::grade_grid(6) {
            for gb in garlic_agg::grade_grid(6) {
                let atom_grades = [ga, gb];
                let lit_grades: Vec<Grade> = nnf
                    .literals
                    .iter()
                    .map(|l| {
                        let base = if l.atom == atoms[0] { ga } else { gb };
                        if l.negated {
                            base.complement()
                        } else {
                            base
                        }
                    })
                    .collect();
                // Approximate: the calculus path may complement twice
                // (1 − (1 − x) differs from x by an ulp for some x).
                assert!(nnf
                    .grade(&lit_grades)
                    .approx_eq(core.grade(&atom_grades, &calc), 1e-12));
            }
        }
    }

    #[test]
    fn nnf_aggregation_is_monotone_and_conjunctive_when_flat() {
        let red = GarlicQuery::atom("Color", Target::text("red"));
        let hard = GarlicQuery::and(red.clone(), GarlicQuery::not(red));
        let agg = NnfAggregation::new(hard.to_nnf());
        assert!(agg.is_monotone());
        assert!(agg.is_strict(2)); // flat AND over literals
        let g = |v: f64| Grade::new(v).unwrap();
        // combine takes LITERAL grades: (g, 1-g) supplied externally.
        assert_eq!(agg.combine(&[g(0.7), g(0.3)]), g(0.3));
    }
}
