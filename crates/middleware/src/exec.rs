//! The executor: runs a [`Plan`] against the catalog's subsystems, through
//! counting sources so every answer comes back with its Section 5
//! middleware cost.
//!
//! Execution is a single [`Strategy::execute`]-style dispatch over the
//! unified core engine: every strategy's one-shot path is a thin call into
//! the engine-backed algorithm shells of `garlic_core::algorithms`, and
//! every strategy's *paged* path is a resumable [`QuerySession`] — there is
//! no per-strategy re-evaluation fallback.
//!
//! Ownership: [`Garlic`] owns its [`Catalog`] and a [`QuerySession`] owns
//! the `Arc` answer handles it streams from, so both are `'static`,
//! `Send + Sync`, and freely movable across threads — the substrate the
//! concurrent [`GarlicService`](crate::service::GarlicService) executes on.

use std::sync::Arc;

use garlic_agg::iterated::min_agg;
use garlic_agg::{Aggregation, Grade};
use garlic_core::access::{total_stats, CountingSource};
use garlic_core::algorithms::engine::{B0Session, EngineProfile, EngineSession};
use garlic_core::algorithms::{
    b0_max::b0_max_topk,
    fa::{fagin_run, FaOptions},
    fa_min::fagin_min_topk,
    filtered::filtered_topk,
    naive::naive_topk,
};
use garlic_core::complement::ComplementSource;
use garlic_core::{AccessStats, GradedEntry, GradedSource, TopK, TopKError};
use garlic_subsys::AtomicQuery;
use garlic_telemetry::{MetricValue, QueryTrace, Span, SpanTimer, Telemetry};

use crate::catalog::Catalog;
use crate::error::MiddlewareError;
use crate::plan::{plan, Plan, PlannerOptions, Strategy};
use crate::query::{GarlicQuery, NnfAggregation, QueryAggregation};

/// A subsystem answer — an owned `Arc` handle — behind the Section 5
/// metering wrapper.
type Counted = CountingSource<Arc<dyn GradedSource>>;

/// A crisp (set-access) answer behind the metering wrapper.
type CountedCrisp = CountingSource<Arc<dyn garlic_core::SetAccess>>;

/// The aggregation a session carries: thread-safe so the session is.
type SessionAgg = Box<dyn Aggregation + Send + Sync>;

/// The one place execution wraps a source in its metering counter.
fn counted<S: GradedSource>(source: S) -> CountingSource<S> {
    CountingSource::new(source)
}

/// Whether any of the metered sources served a degraded stream (e.g. a
/// sharded source that dropped a quarantined shard) — the flag every
/// answer carries back to the caller.
fn any_degraded(sources: &[Counted]) -> bool {
    sources.iter().any(|s| s.degraded())
}

/// Evaluates each atom through the catalog, metered.
fn counted_atoms(
    catalog: &Catalog,
    atoms: &[AtomicQuery],
) -> Result<Vec<Counted>, MiddlewareError> {
    atoms
        .iter()
        .map(|a| Ok(counted(catalog.evaluate(a)?)))
        .collect()
}

/// One metered source per NNF *literal*: negated literals read the atom's
/// list reversed with complemented grades (the Section 7 observation).
fn nnf_sources(
    catalog: &Catalog,
    query: &GarlicQuery,
) -> Result<(Vec<Counted>, NnfAggregation), MiddlewareError> {
    let nnf = query.to_nnf();
    let sources: Vec<Counted> = nnf
        .literals
        .iter()
        .map(|lit| {
            let base = catalog.evaluate(&lit.atom)?;
            let source: Arc<dyn GradedSource> = if lit.negated {
                Arc::new(ComplementSource::new(base))
            } else {
                base
            };
            Ok(counted(source))
        })
        .collect::<Result<_, MiddlewareError>>()?;
    Ok((sources, NnfAggregation::new(nnf)))
}

impl PlannerOptions {
    /// The A₀ tuning knobs these planner options imply.
    fn fa_options(&self) -> FaOptions {
        FaOptions {
            shrink_depths: self.shrink_depths,
        }
    }
}

/// A query answer with its plan and measured middleware cost.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The top-k answers (objects with their overall grades).
    pub answers: TopK,
    /// Measured access counts across all subsystems.
    pub stats: AccessStats,
    /// The plan that produced the answer.
    pub plan: Plan,
    /// `true` when some source served a degraded stream (e.g. a sharded
    /// attribute that dropped a quarantined shard): the answers are
    /// correct for the surviving data and `stats` bills exactly the
    /// accesses performed, but unreadable objects are missing.
    pub degraded: bool,
}

/// An executed EXPLAIN: the plan, the answers it produced, the billed
/// Section 5 cost, and the per-query execution trace.
///
/// The trace's `source[i]` spans are rendered from the same
/// [`CountingSource`] totals `stats` sums over — the per-source counts in
/// the trace are **bit-equal to the billed totals by construction**, not
/// re-derived estimates (pinned by the `explain_equivalence` suite).
#[derive(Debug, Clone)]
pub struct Explain {
    /// The plan the planner chose.
    pub plan: Plan,
    /// The answers the traced execution produced (via the session path,
    /// which returns the same ranking as [`Garlic::top_k`]).
    pub answers: TopK,
    /// Total billed middleware cost of the traced execution.
    pub stats: AccessStats,
    /// Per-source `(label, cost)` pairs, in source order — the exact
    /// [`CountingSource`] totals, summing to `stats`.
    pub per_source: Vec<(String, AccessStats)>,
    /// The execution trace (plan decision, engine phases, per-source
    /// costs, storage counter deltas when telemetry is attached).
    pub trace: QueryTrace,
    /// Whether some source served a degraded stream — see
    /// [`QueryResult::degraded`].
    pub degraded: bool,
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.trace)
    }
}

/// The Garlic middleware: a catalog plus planner options, optionally
/// wired to a [`Telemetry`] registry.
///
/// Owns its catalog, so it is `'static`, `Send + Sync`, and cheaply
/// cloneable (clones share the registered subsystems). All query entry
/// points take `&self`: one `Garlic` — or one `Arc<Garlic>` — serves any
/// number of concurrent callers.
#[derive(Clone)]
pub struct Garlic {
    catalog: Catalog,
    options: PlannerOptions,
    telemetry: Option<Arc<Telemetry>>,
}

impl Garlic {
    /// Wraps a catalog with default options.
    pub fn new(catalog: Catalog) -> Self {
        Garlic {
            catalog,
            options: PlannerOptions::default(),
            telemetry: None,
        }
    }

    /// Wraps a catalog with explicit options.
    pub fn with_options(catalog: Catalog, options: PlannerOptions) -> Self {
        Garlic {
            catalog,
            options,
            telemetry: None,
        }
    }

    /// Attaches a metrics registry (builder style). Query entry points
    /// then record `middleware.queries` and the
    /// `middleware.query_latency_ns` histogram — one registry check per
    /// query, never per entry — and [`Garlic::explain`] appends a span of
    /// registry counter deltas to its trace.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The attached registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Plans without executing (the zero-cost half of EXPLAIN; see
    /// [`Garlic::explain`] for the traced, executing form).
    pub fn plan_for(&self, query: &GarlicQuery, k: usize) -> Result<Plan, MiddlewareError> {
        plan(&self.catalog, query, k, self.options)
    }

    /// EXPLAIN ANALYZE: plans, executes through the resumable session
    /// path, and returns the answers together with a per-query trace —
    /// the plan decision, engine phase timings, per-source Section 5
    /// access counts (bit-equal to the billed [`CountingSource`] totals),
    /// and, when telemetry is attached, the storage counter deltas the
    /// query caused.
    pub fn explain(&self, query: &GarlicQuery, k: usize) -> Result<Explain, MiddlewareError> {
        self.explain_with_deadline(query, k, None)
    }

    /// [`Garlic::explain`] with a cooperative deadline: the engine checks
    /// it between batch rounds and fails with
    /// [`MiddlewareError::DeadlineExceeded`] once it passes, leaving
    /// every source consistent.
    pub fn explain_with_deadline(
        &self,
        query: &GarlicQuery,
        k: usize,
        deadline: Option<std::time::Instant>,
    ) -> Result<Explain, MiddlewareError> {
        let plan_timer = SpanTimer::start();
        let plan = self.plan_for(query, k)?;
        let plan_ns = plan_timer.elapsed_ns();

        let before = self.telemetry.as_ref().map(|t| t.snapshot());
        let exec_timer = SpanTimer::start();
        let mut session = plan
            .strategy
            .open_session(&self.catalog, query, &plan.atoms)?;
        session.set_deadline(deadline);
        let answers = session.next_batch(k)?;
        let exec_ns = exec_timer.elapsed_ns();

        let stats = session.stats();
        let per_source = session.per_source_stats();

        let mut root = Span::new(format!("query: {query} top-{k}"));
        let mut plan_span = Span::new(format!("plan: {:?}", plan.strategy));
        plan_span.duration_ns = Some(plan_ns);
        plan_span.add_field("atoms", plan.atoms.len());
        plan_span.add_field("estimated_cost", format!("{:.1}", plan.estimated_cost));
        root.push(plan_span);

        let mut exec = Span::new("execute");
        exec.duration_ns = Some(exec_ns);
        exec.add_field("answers", answers.len());
        exec.add_field("S", stats.sorted);
        exec.add_field("R", stats.random);

        if let Some(EngineDetails {
            profile,
            depth,
            frontier,
        }) = session.engine_details()
        {
            let mut engine = Span::new("engine");
            engine.add_field("depth", depth);
            engine.add_field("sorted_ns", profile.sorted_ns);
            engine.add_field("random_ns", profile.random_ns);
            engine.add_field("sorted_batches", profile.sorted_batches);
            engine.add_field("sorted_entries", profile.sorted_entries);
            engine.add_field("random_batches", profile.random_batches);
            engine.add_field("random_probes", profile.random_probes);
            if !frontier.is_empty() {
                let steps: Vec<String> = frontier.iter().map(|(k, g)| format!("{k}:{g}")).collect();
                engine.add_field("frontier", steps.join(" "));
            }
            exec.push(engine);
        } else if let Some(total) = session.materialized_size() {
            // The filtered / naive strategies materialise their complete
            // ranking at open; the whole cost is the one-time build.
            exec.push(Span::new("materialize").field("entries", total));
        }

        for (i, (label, s)) in per_source.iter().enumerate() {
            exec.push(
                Span::new(format!("source[{i}] \"{label}\""))
                    .field("S", s.sorted)
                    .field("R", s.random),
            );
        }

        if let (Some(before), Some(t)) = (before, &self.telemetry) {
            // Registry-wide counter deltas across the execution: under a
            // single in-flight query these are exactly this query's
            // storage activity (cache hits/misses, fence skips, ...);
            // under concurrency they are a best-effort attribution.
            let after = t.snapshot();
            let mut storage = Span::new("telemetry");
            for e in &after.entries {
                if let MetricValue::Counter(v) = e.value {
                    let prev = before.counter(&e.name);
                    if v > prev {
                        storage.add_field(&e.name, v - prev);
                    }
                }
            }
            if !storage.fields.is_empty() {
                exec.push(storage);
            }
        }
        root.push(exec);

        Ok(Explain {
            plan,
            answers,
            stats,
            per_source,
            trace: QueryTrace::new(root),
            degraded: session.degraded(),
        })
    }

    /// Plans and executes a top-k query.
    pub fn top_k(&self, query: &GarlicQuery, k: usize) -> Result<QueryResult, MiddlewareError> {
        let timer = self.telemetry.as_ref().map(|_| SpanTimer::start());
        let plan = self.plan_for(query, k)?;
        let (answers, stats, degraded) = self.execute(query, &plan, k)?;
        if let (Some(t), Some(timer)) = (&self.telemetry, timer) {
            t.counter("middleware.queries").inc();
            t.histogram("middleware.query_latency_ns")
                .record(timer.elapsed_ns());
        }
        Ok(QueryResult {
            answers,
            stats,
            plan,
            degraded,
        })
    }

    /// [`Garlic::top_k`] with a cooperative deadline, served through the
    /// session path (identical ranking). The engine checks the deadline
    /// once per batch round; when it passes, the query fails with
    /// [`MiddlewareError::DeadlineExceeded`] instead of running away.
    ///
    /// With no deadline this is exactly [`Garlic::top_k`] — answers,
    /// billed stats, and strategy all bit-identical to the one-shot path.
    pub fn top_k_with_deadline(
        &self,
        query: &GarlicQuery,
        k: usize,
        deadline: Option<std::time::Instant>,
    ) -> Result<QueryResult, MiddlewareError> {
        if deadline.is_none() {
            return self.top_k(query, k);
        }
        let timer = self.telemetry.as_ref().map(|_| SpanTimer::start());
        let plan = self.plan_for(query, k)?;
        let mut session = plan
            .strategy
            .open_session(&self.catalog, query, &plan.atoms)?;
        session.set_deadline(deadline);
        let answers = session.next_batch(k)?;
        if let (Some(t), Some(timer)) = (&self.telemetry, timer) {
            t.counter("middleware.queries").inc();
            t.histogram("middleware.query_latency_ns")
                .record(timer.elapsed_ns());
        }
        Ok(QueryResult {
            answers,
            stats: session.stats(),
            plan,
            degraded: session.degraded(),
        })
    }

    /// Opens a resumable [`QuerySession`] for a query: every strategy in
    /// the Section 4/8 catalogue pages through its ranked result set batch
    /// by batch, never repeating an object and never re-evaluating.
    /// `k_hint` is the anticipated cumulative result size, used only for
    /// planning estimates.
    pub fn open_session(
        &self,
        query: &GarlicQuery,
        k_hint: usize,
    ) -> Result<QuerySession, MiddlewareError> {
        let plan = self.plan_for(query, k_hint.max(1))?;
        plan.strategy
            .open_session(&self.catalog, query, &plan.atoms)
    }

    /// Pages through a query's ranked result set: returns one [`TopK`] per
    /// requested batch size, never repeating an object, plus the *total*
    /// middleware cost. Every strategy runs on a resumable engine session
    /// ([`QuerySession`]): the A₀ family "continues where it left off"
    /// (Section 4), so its cumulative sorted cost equals a single
    /// evaluation at the cumulative k; B₀-family paging costs `m·k`
    /// cumulative; the filtered and naive strategies — whose evaluation
    /// cost does not depend on k — materialise their ranking once at
    /// session open and stream it.
    pub fn top_k_paged(
        &self,
        query: &GarlicQuery,
        batches: &[usize],
    ) -> Result<(Vec<TopK>, AccessStats), MiddlewareError> {
        if batches.contains(&0) {
            return Err(MiddlewareError::TopK(TopKError::ZeroK));
        }
        let total: usize = batches.iter().sum();
        let total = total.min(self.catalog.universe_size());

        let mut session = self.open_session(query, total.max(1))?;
        let mut out = Vec::with_capacity(batches.len());
        let mut remaining = total;
        for &b in batches {
            let take = b.min(remaining);
            if take == 0 {
                out.push(TopK::from_entries(Vec::new()));
                continue;
            }
            out.push(session.next_batch(take)?);
            remaining -= take;
        }
        Ok((out, session.stats()))
    }

    /// Alias of [`Garlic::top_k_paged`], kept for existing callers.
    pub fn top_batches(
        &self,
        query: &GarlicQuery,
        batches: &[usize],
    ) -> Result<(Vec<TopK>, AccessStats), MiddlewareError> {
        self.top_k_paged(query, batches)
    }

    /// A *weighted* conjunction of atomic queries (Section 4's pointer to
    /// \[FW97\]: "the user decides that color is twice as important to him
    /// as shape"). Weights are non-negative with a positive sum; the
    /// aggregation is the Fagin–Wimmers weighting of min, which is
    /// monotone, so algorithm A₀ applies unchanged.
    pub fn top_k_weighted(
        &self,
        weighted_atoms: &[(AtomicQuery, f64)],
        k: usize,
    ) -> Result<QueryResult, MiddlewareError> {
        if weighted_atoms.is_empty() {
            return Err(MiddlewareError::Unsupported {
                reason: "weighted conjunction needs at least one conjunct".into(),
            });
        }
        let atoms: Vec<AtomicQuery> = weighted_atoms.iter().map(|(a, _)| a.clone()).collect();
        let weights: Vec<f64> = weighted_atoms.iter().map(|(_, w)| *w).collect();
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) || weights.iter().sum::<f64>() <= 0.0
        {
            return Err(MiddlewareError::Unsupported {
                reason: "weights must be non-negative, finite, with a positive sum".into(),
            });
        }
        let sources = counted_atoms(&self.catalog, &atoms)?;
        let agg = garlic_agg::weighted::FaginWimmers::new(min_agg(), &weights);
        let run = fagin_run(&sources, &agg, k, self.options.fa_options())?;
        let m = atoms.len();
        let n = self.catalog.universe_size();
        let plan = Plan {
            strategy: Strategy::FaGeneric,
            description: format!(
                "weighted conjunction of {m} atoms with weights {weights:?} \
                 under the Fagin-Wimmers rule (FW97); monotone, evaluated by A0"
            ),
            estimated_cost: 2.0
                * m as f64
                * (n as f64).powf((m as f64 - 1.0) / m as f64)
                * (k as f64).powf(1.0 / m as f64),
            atoms,
        };
        Ok(QueryResult {
            answers: run.topk,
            stats: total_stats(&sources),
            plan,
            degraded: any_degraded(&sources),
        })
    }

    fn execute(
        &self,
        query: &GarlicQuery,
        plan: &Plan,
        k: usize,
    ) -> Result<(TopK, AccessStats, bool), MiddlewareError> {
        plan.strategy
            .execute(&self.catalog, query, &plan.atoms, self.options, k)
    }
}

/// The crisp match-set source plus the metered graded conjuncts of a
/// filtered plan.
fn filtered_parts(
    catalog: &Catalog,
    atoms: &[AtomicQuery],
    crisp_index: usize,
) -> Result<(CountedCrisp, Vec<Counted>), MiddlewareError> {
    let crisp_atom = &atoms[crisp_index];
    let sub = catalog.resolve(&crisp_atom.attribute)?;
    let crisp = counted(
        sub.evaluate_set(crisp_atom)
            .map_err(MiddlewareError::Subsystem)?,
    );
    let graded_atoms: Vec<AtomicQuery> = atoms
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != crisp_index)
        .map(|(_, a)| a.clone())
        .collect();
    let graded = counted_atoms(catalog, &graded_atoms)?;
    Ok((crisp, graded))
}

/// The single fused internal-conjunction list (Section 8), metered.
fn pushdown_source(catalog: &Catalog, atoms: &[AtomicQuery]) -> Result<Counted, MiddlewareError> {
    let sub = catalog.resolve(&atoms[0].attribute)?;
    Ok(counted(
        sub.evaluate_internal_conjunction(atoms)
            .map_err(MiddlewareError::Subsystem)?,
    ))
}

impl Strategy {
    /// One-shot execution: a single dispatch over the engine-backed
    /// algorithm shells, returning the answers with their measured cost.
    pub(crate) fn execute(
        &self,
        catalog: &Catalog,
        query: &GarlicQuery,
        atoms: &[AtomicQuery],
        options: PlannerOptions,
        k: usize,
    ) -> Result<(TopK, AccessStats, bool), MiddlewareError> {
        match self {
            Strategy::B0Max => {
                let sources = counted_atoms(catalog, atoms)?;
                let answers = b0_max_topk(&sources, k)?;
                Ok((answers, total_stats(&sources), any_degraded(&sources)))
            }
            Strategy::FaMin => {
                let sources = counted_atoms(catalog, atoms)?;
                let answers = fagin_min_topk(&sources, k)?;
                Ok((answers, total_stats(&sources), any_degraded(&sources)))
            }
            Strategy::Filtered { crisp_index } => {
                let (crisp, graded) = filtered_parts(catalog, atoms, *crisp_index)?;
                let answers = filtered_topk(&crisp, &graded, *crisp_index, &min_agg(), k)?;
                Ok((
                    answers,
                    crisp.stats() + total_stats(&graded),
                    any_degraded(&graded),
                ))
            }
            Strategy::FaGeneric => {
                let sources = counted_atoms(catalog, atoms)?;
                let agg = QueryAggregation::new(query, atoms);
                let run = fagin_run(&sources, &agg, k, options.fa_options())?;
                Ok((run.topk, total_stats(&sources), any_degraded(&sources)))
            }
            Strategy::NaiveCalculus => {
                let sources = counted_atoms(catalog, atoms)?;
                let agg = QueryAggregation::new(query, atoms);
                let answers = naive_topk(&sources, &agg, k)?;
                Ok((answers, total_stats(&sources), any_degraded(&sources)))
            }
            Strategy::InternalPushdown { .. } => {
                // Top k of the single fused list.
                let sources = vec![pushdown_source(catalog, atoms)?];
                let answers = b0_max_topk(&sources, k)?;
                Ok((answers, total_stats(&sources), any_degraded(&sources)))
            }
            Strategy::FaNnf => {
                let (sources, agg) = nnf_sources(catalog, query)?;
                let run = fagin_run(&sources, &agg, k, options.fa_options())?;
                Ok((run.topk, total_stats(&sources), any_degraded(&sources)))
            }
        }
    }

    /// Opens the strategy's resumable paging session (see [`QuerySession`]).
    ///
    /// Note [`PlannerOptions::shrink_depths`] applies to one-shot
    /// [`Strategy::execute`] only: a resumable session must keep every
    /// seen object's grade vector complete to answer the *next* batch, so
    /// the random-access-saving prefix shrink has nothing to cut.
    pub(crate) fn open_session(
        &self,
        catalog: &Catalog,
        query: &GarlicQuery,
        atoms: &[AtomicQuery],
    ) -> Result<QuerySession, MiddlewareError> {
        let atom_labels = || -> Vec<String> { atoms.iter().map(|a| a.attribute.clone()).collect() };
        let (kind, labels) = match self {
            Strategy::FaMin => (
                SessionKind::Engine(EngineSession::new(
                    counted_atoms(catalog, atoms)?,
                    Box::new(min_agg()) as SessionAgg,
                )?),
                atom_labels(),
            ),
            Strategy::FaGeneric => (
                SessionKind::Engine(EngineSession::new(
                    counted_atoms(catalog, atoms)?,
                    Box::new(QueryAggregation::new(query, atoms)) as SessionAgg,
                )?),
                atom_labels(),
            ),
            Strategy::FaNnf => {
                let nnf = query.to_nnf();
                let labels = nnf
                    .literals
                    .iter()
                    .map(|lit| {
                        if lit.negated {
                            format!("¬{}", lit.atom.attribute)
                        } else {
                            lit.atom.attribute.clone()
                        }
                    })
                    .collect();
                let (sources, agg) = nnf_sources(catalog, query)?;
                (
                    SessionKind::Engine(EngineSession::new(sources, Box::new(agg) as SessionAgg)?),
                    labels,
                )
            }
            Strategy::B0Max => (
                SessionKind::B0(B0Session::new(counted_atoms(catalog, atoms)?)?),
                atom_labels(),
            ),
            Strategy::InternalPushdown { .. } => {
                let fused = atoms
                    .iter()
                    .map(|a| a.attribute.as_str())
                    .collect::<Vec<_>>()
                    .join("∧");
                (
                    SessionKind::B0(B0Session::new(vec![pushdown_source(catalog, atoms)?])?),
                    vec![format!("{fused} (fused)")],
                )
            }
            Strategy::Filtered { crisp_index } => {
                // The filtered strategy's cost is |S|·m no matter the k
                // (padding objects need no access), so the session can
                // materialise the complete ranking up front at the same
                // cost one evaluation would pay. The match set's grades are
                // completed through the engine's batched random_batch path,
                // so a disk-backed conjunct decodes each block once.
                let (crisp, graded) = filtered_parts(catalog, atoms, *crisp_index)?;
                let n = crisp.len();
                let all = filtered_topk(&crisp, &graded, *crisp_index, &min_agg(), n)?;
                let stats = crisp.stats() + total_stats(&graded);
                // Per-source totals in atom order, the crisp match set in
                // its original position.
                let mut labels = Vec::with_capacity(atoms.len());
                let mut per_source = Vec::with_capacity(atoms.len());
                let mut graded_iter = graded.iter();
                for (i, a) in atoms.iter().enumerate() {
                    if i == *crisp_index {
                        labels.push(format!("{} (crisp)", a.attribute));
                        per_source.push(crisp.stats());
                    } else {
                        labels.push(a.attribute.clone());
                        per_source.push(graded_iter.next().expect("one per atom").stats());
                    }
                }
                (
                    SessionKind::Materialized {
                        entries: all.into_entries(),
                        cursor: 0,
                        stats,
                        per_source,
                        degraded: any_degraded(&graded),
                    },
                    labels,
                )
            }
            Strategy::NaiveCalculus => {
                // The naive scan always grades everything (m·N), so one
                // materialisation covers every batch.
                let sources = counted_atoms(catalog, atoms)?;
                let agg = QueryAggregation::new(query, atoms);
                let n = sources.first().map(|s| s.len()).unwrap_or(0);
                let all = naive_topk(&sources, &agg, n)?;
                let stats = total_stats(&sources);
                let per_source = sources.iter().map(|s| s.stats()).collect();
                (
                    SessionKind::Materialized {
                        entries: all.into_entries(),
                        cursor: 0,
                        stats,
                        per_source,
                        degraded: any_degraded(&sources),
                    },
                    atom_labels(),
                )
            }
        };
        Ok(QuerySession { kind, labels })
    }
}

/// A resumable, strategy-agnostic paging session over one planned query.
///
/// * A₀-family strategies hold a live
///   [`EngineSession`] — each batch resumes the sorted phase at the stored
///   depth ("continue where we left off", Section 4), so cumulative sorted
///   cost equals one evaluation at the cumulative `k`.
/// * B₀-family strategies (flat disjunctions and Section 8 pushdown) hold a
///   [`B0Session`] — paging deepens the per-list prefixes, `m·k` cumulative
///   cost, no random access.
/// * The filtered and naive strategies — whose evaluation cost is
///   independent of `k` — materialise their full ranking once at open and
///   stream slices of it at zero further access cost.
///
/// A session owns everything it streams from (`Arc` answer handles plus
/// its own bookkeeping), so it is `'static` and `Send`: open it on one
/// thread, store it, hand it to another — the server-side "user session"
/// the paper's multi-user middleware implies.
pub struct QuerySession {
    kind: SessionKind,
    /// One human-readable label per metered source, in source order
    /// (attribute names; `¬attr` for complemented NNF literals, `(crisp)`
    /// / `(fused)` markers for the filtered and pushdown forms).
    labels: Vec<String>,
}

enum SessionKind {
    Engine(EngineSession<Counted, SessionAgg>),
    B0(B0Session<Counted>),
    Materialized {
        entries: Vec<GradedEntry>,
        cursor: usize,
        stats: AccessStats,
        /// The per-source [`CountingSource`] totals of the one-time
        /// materialisation, aligned with `QuerySession::labels`.
        per_source: Vec<AccessStats>,
        /// Whether any source served the materialisation degraded,
        /// captured at open (the sources are consumed by then).
        degraded: bool,
    },
}

/// Engine-phase execution detail surfaced by
/// [`QuerySession::engine_details`] for EXPLAIN's `engine` span.
pub struct EngineDetails<'a> {
    /// Batched sorted/random phase timings and batch counts.
    pub profile: EngineProfile,
    /// Common sorted-access depth reached across the sources.
    pub depth: usize,
    /// `(returned, frontier grade)` after each batch boundary.
    pub frontier: &'a [(usize, Grade)],
}

impl QuerySession {
    /// Returns the next `k` best answers (fewer once the result set is
    /// exhausted), never repeating an object across batches.
    pub fn next_batch(&mut self, k: usize) -> Result<TopK, MiddlewareError> {
        match &mut self.kind {
            SessionKind::Engine(session) => session.next_batch(k).map_err(MiddlewareError::from),
            SessionKind::B0(session) => session.next_batch(k).map_err(MiddlewareError::from),
            SessionKind::Materialized {
                entries, cursor, ..
            } => {
                if k == 0 {
                    return Err(MiddlewareError::TopK(TopKError::ZeroK));
                }
                let end = (*cursor + k).min(entries.len());
                // The materialised ranking is already sorted; a page is a
                // plain slice copy, not a re-sort.
                let batch = TopK::from_sorted_entries(entries[*cursor..end].to_vec());
                *cursor = end;
                Ok(batch)
            }
        }
    }

    /// How many answers have been handed out so far.
    pub fn returned(&self) -> usize {
        match &self.kind {
            SessionKind::Engine(session) => session.returned(),
            SessionKind::B0(session) => session.returned(),
            SessionKind::Materialized { cursor, .. } => *cursor,
        }
    }

    /// The cumulative middleware cost of every batch so far (for the
    /// materialised strategies: of the one-time materialisation).
    pub fn stats(&self) -> AccessStats {
        match &self.kind {
            SessionKind::Engine(session) => total_stats(session.sources()),
            SessionKind::B0(session) => total_stats(session.sources()),
            SessionKind::Materialized { stats, .. } => *stats,
        }
    }

    /// Per-source `(label, cost)` pairs in source order — read straight
    /// from the session's [`CountingSource`]s (for the materialised
    /// strategies: recorded at materialisation time), so they sum to
    /// exactly [`QuerySession::stats`].
    pub fn per_source_stats(&self) -> Vec<(String, AccessStats)> {
        let stats: Vec<AccessStats> = match &self.kind {
            SessionKind::Engine(session) => session.sources().iter().map(|s| s.stats()).collect(),
            SessionKind::B0(session) => session.sources().iter().map(|s| s.stats()).collect(),
            SessionKind::Materialized { per_source, .. } => per_source.clone(),
        };
        self.labels.iter().cloned().zip(stats).collect()
    }

    /// Engine-phase detail for EXPLAIN, when this session runs live on the
    /// core engine. `None` for the materialised strategies.
    pub fn engine_details(&self) -> Option<EngineDetails<'_>> {
        let details = |profile, depth, frontier| EngineDetails {
            profile,
            depth,
            frontier,
        };
        match &self.kind {
            SessionKind::Engine(s) => Some(details(
                s.engine().profile(),
                s.engine().depth(),
                s.frontier_history(),
            )),
            SessionKind::B0(s) => Some(details(
                s.engine().profile(),
                s.engine().depth(),
                s.frontier_history(),
            )),
            SessionKind::Materialized { .. } => None,
        }
    }

    /// How many entries a materialised session ranked at open (`None` for
    /// live engine sessions).
    pub fn materialized_size(&self) -> Option<usize> {
        match &self.kind {
            SessionKind::Materialized { entries, .. } => Some(entries.len()),
            _ => None,
        }
    }

    /// Sets (or clears) a cooperative deadline on the underlying engine.
    /// The engine checks it once per batch round; a page that fails with
    /// [`MiddlewareError::DeadlineExceeded`] leaves the session resumable —
    /// extend (or clear) the deadline and request the page again.
    /// Materialised sessions paid their whole cost at open, so the
    /// deadline has nothing left to bound and this is a no-op for them.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        match &mut self.kind {
            SessionKind::Engine(session) => session.set_deadline(deadline),
            SessionKind::B0(session) => session.set_deadline(deadline),
            SessionKind::Materialized { .. } => {}
        }
    }

    /// Whether any source this session reads from has served a degraded
    /// stream — see [`QueryResult::degraded`].
    pub fn degraded(&self) -> bool {
        match &self.kind {
            SessionKind::Engine(session) => session.sources().iter().any(|s| s.degraded()),
            SessionKind::B0(session) => session.sources().iter().any(|s| s.degraded()),
            SessionKind::Materialized { degraded, .. } => *degraded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garlic_agg::Grade;
    use garlic_subsys::cd_store::demo_subsystems;
    use garlic_subsys::{Subsystem, Target};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        rel: garlic_subsys::RelationalStore,
        qbic: garlic_subsys::QbicStore,
        text: garlic_subsys::TextStore,
    }

    impl Fixture {
        fn new() -> Self {
            let mut rng = StdRng::seed_from_u64(7);
            let (rel, qbic, text) = demo_subsystems(&mut rng);
            Fixture { rel, qbic, text }
        }

        fn garlic(&self) -> Garlic {
            let mut cat = Catalog::new();
            cat.register(self.rel.clone()).unwrap();
            cat.register(self.qbic.clone()).unwrap();
            cat.register(self.text.clone()).unwrap();
            Garlic::new(cat)
        }
    }

    #[test]
    fn beatles_red_returns_only_beatles_with_colour_ranking() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("Artist", Target::text("Beatles")),
            GarlicQuery::atom("AlbumColor", Target::text("red")),
        );
        let result = garlic.top_k(&q, 2).unwrap();
        // Albums 0 ("Crimson Meadows", red .9) and 3 ("Scarlet Parade",
        // red .6) are the two red-est Beatles albums.
        let ids: Vec<u64> = result.answers.objects().iter().map(|o| o.0).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&0));
        assert!(ids.contains(&3));
        assert!(result.answers.grades()[0] > Grade::ZERO);
        assert!(matches!(result.plan.strategy, Strategy::Filtered { .. }));
        // Cost must be far below a full scan (12 objects × 2 lists = 24).
        assert!(result.stats.unweighted() < 24);
    }

    #[test]
    fn color_shape_conjunction_matches_reference_semantics() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let fast = garlic.top_k(&q, 3).unwrap();

        // Reference: naive evaluation of the same semantics.
        let color = f
            .qbic
            .evaluate(&AtomicQuery::new("AlbumColor", Target::text("red")))
            .unwrap();
        let shape = f
            .qbic
            .evaluate(&AtomicQuery::new("Shape", Target::text("round")))
            .unwrap();
        let slow = naive_topk(&[color, shape], &min_agg(), 3).unwrap();
        assert!(fast.answers.same_grades(&slow, 1e-12));
    }

    #[test]
    fn disjunction_executes_b0_with_mk_cost() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::or(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let result = garlic.top_k(&q, 3).unwrap();
        assert_eq!(result.stats.sorted, 6);
        assert_eq!(result.stats.random, 0);
    }

    #[test]
    fn negated_query_executes_naive_and_matches_semantics() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let a = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let q = GarlicQuery::and(a.clone(), GarlicQuery::not(a));
        let result = garlic.top_k(&q, 1).unwrap();
        // The winner's grade is min(g, 1-g) <= 1/2 (Section 7).
        assert!(result.answers.best().unwrap().grade <= Grade::HALF);
        assert!(matches!(result.plan.strategy, Strategy::NaiveCalculus));
    }

    #[test]
    fn nested_positive_query_via_fa_generic_matches_naive() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::or(
                GarlicQuery::atom("Shape", Target::text("round")),
                GarlicQuery::atom("Review", Target::terms(&["rock"])),
            ),
        );
        let fast = garlic.top_k(&q, 3).unwrap();
        assert!(matches!(fast.plan.strategy, Strategy::FaGeneric));

        // Reference: naive with the same compound aggregation.
        let atoms = q.atoms();
        let sources: Vec<_> = atoms
            .iter()
            .map(|a| garlic.catalog().evaluate(a).unwrap())
            .collect();
        let agg = QueryAggregation::new(&q, &atoms);
        let slow = naive_topk(&sources, &agg, 3).unwrap();
        assert!(fast.answers.same_grades(&slow, 1e-12));
    }

    #[test]
    fn internal_pushdown_differs_from_garlic_semantics() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );

        let external = f.garlic().top_k(&q, 12).unwrap();

        let mut cat = Catalog::new();
        cat.register(f.qbic.clone()).unwrap();
        let internal_garlic = Garlic::with_options(
            cat,
            PlannerOptions {
                prefer_internal: true,
                ..Default::default()
            },
        );
        let internal = internal_garlic.top_k(&q, 12).unwrap();
        assert!(matches!(
            internal.plan.strategy,
            Strategy::InternalPushdown { .. }
        ));

        // Same objects, but the grades differ: product vs min (Section 8).
        let min_grades = external.answers.grades();
        let prod_grades = internal.answers.grades();
        assert_ne!(min_grades, prod_grades);
    }

    #[test]
    fn paged_batches_equal_one_shot() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );

        let (batches, _) = garlic.top_batches(&q, &[3, 3, 3]).unwrap();
        assert_eq!(batches.len(), 3);
        let oneshot = garlic.top_k(&q, 9).unwrap();
        let mut paged: Vec<Grade> = Vec::new();
        for b in &batches {
            paged.extend(b.grades());
        }
        assert_eq!(paged.len(), 9);
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
    }

    #[test]
    fn paged_batches_work_for_filtered_strategy_too() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("Artist", Target::text("Beatles")),
            GarlicQuery::atom("AlbumColor", Target::text("red")),
        );
        let (batches, _) = garlic.top_batches(&q, &[2, 2]).unwrap();
        let oneshot = garlic.top_k(&q, 4).unwrap();
        let mut paged: Vec<Grade> = Vec::new();
        for b in &batches {
            paged.extend(b.grades());
        }
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
    }

    #[test]
    fn a0_family_paging_cost_equals_one_evaluation_at_cumulative_k() {
        // The acceptance property of the resumable engine sessions: paging
        // k1 + k2 + ... costs exactly the sorted accesses of ONE evaluation
        // at the cumulative k ("continue where we left off", Section 4).
        // Random accesses can only be fewer-or-equal in the one-shot run
        // (a batch may complete a grade the one-shot run later observes
        // under sorted access). Each (object, list) pair is fetched at most
        // once per access kind, bounding the paged total by 2·m·N.
        let f = Fixture::new();
        let garlic = f.garlic();
        let n = garlic.catalog().universe_size() as u64;
        for (label, q) in [
            (
                "FaMin",
                GarlicQuery::and(
                    GarlicQuery::atom("AlbumColor", Target::text("red")),
                    GarlicQuery::atom("Shape", Target::text("round")),
                ),
            ),
            (
                "FaGeneric",
                GarlicQuery::and(
                    GarlicQuery::atom("AlbumColor", Target::text("red")),
                    GarlicQuery::or(
                        GarlicQuery::atom("Shape", Target::text("round")),
                        GarlicQuery::atom("Review", Target::terms(&["rock"])),
                    ),
                ),
            ),
        ] {
            let (batches, paged_stats) = garlic.top_k_paged(&q, &[2, 3, 4]).unwrap();
            let oneshot = garlic.top_k(&q, 9).unwrap();
            let m = q.atoms().len() as u64;

            // Same answers at every boundary...
            let paged: Vec<Grade> = batches.iter().flat_map(|b| b.grades()).collect();
            for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
                assert!(got.approx_eq(want, 1e-12), "{label}");
            }
            // ...and the one-shot sorted cost, exactly.
            let mut session = garlic.open_session(&q, 9).unwrap();
            for b in [2usize, 3, 4] {
                session.next_batch(b).unwrap();
            }
            assert_eq!(session.returned(), 9, "{label}");
            assert_eq!(session.stats(), paged_stats, "{label}");
            assert_eq!(paged_stats.sorted, oneshot.stats.sorted, "{label}");
            assert!(paged_stats.random >= oneshot.stats.random, "{label}");
            assert!(paged_stats.unweighted() <= 2 * m * n, "{label}");
        }
    }

    #[test]
    fn paged_batches_work_for_naive_calculus_without_reevaluation() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let a = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let q = GarlicQuery::and(a.clone(), GarlicQuery::not(a));
        assert!(matches!(
            garlic.plan_for(&q, 6).unwrap().strategy,
            Strategy::NaiveCalculus
        ));

        let (batches, stats) = garlic.top_k_paged(&q, &[3, 3]).unwrap();
        let oneshot = garlic.top_k(&q, 6).unwrap();
        let paged: Vec<Grade> = batches.iter().flat_map(|b| b.grades()).collect();
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
        // The naive scan costs m·N regardless of k: paging pays it once.
        assert_eq!(stats, oneshot.stats);
    }

    #[test]
    fn paged_batches_work_for_b0_at_mk_cumulative_cost() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::or(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let (batches, stats) = garlic.top_k_paged(&q, &[2, 2, 2]).unwrap();
        let oneshot = garlic.top_k(&q, 6).unwrap();
        let paged: Vec<Grade> = batches.iter().flat_map(|b| b.grades()).collect();
        assert_eq!(paged.len(), 6);
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
        // Exactly m·(cumulative k) sorted accesses, no random access — the
        // same cost as the one evaluation at k = 6.
        assert_eq!(stats, oneshot.stats);
        assert_eq!(stats.sorted, 2 * 6);
        assert_eq!(stats.random, 0);
    }

    #[test]
    fn paged_batches_work_for_internal_pushdown() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let mut cat = Catalog::new();
        cat.register(f.qbic.clone()).unwrap();
        let garlic = Garlic::with_options(
            cat,
            PlannerOptions {
                prefer_internal: true,
                ..Default::default()
            },
        );
        assert!(matches!(
            garlic.plan_for(&q, 4).unwrap().strategy,
            Strategy::InternalPushdown { .. }
        ));
        let (batches, stats) = garlic.top_k_paged(&q, &[2, 2]).unwrap();
        let oneshot = garlic.top_k(&q, 4).unwrap();
        let paged: Vec<Grade> = batches.iter().flat_map(|b| b.grades()).collect();
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
        // One fused list: cumulative k sorted accesses, like the one-shot.
        assert_eq!(stats, oneshot.stats);
        assert_eq!(stats.sorted, 4);
    }

    #[test]
    fn paged_batches_work_for_nnf_pushdown() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::not(GarlicQuery::atom("Shape", Target::text("round"))),
        );
        let mut cat = Catalog::new();
        cat.register(f.rel.clone()).unwrap();
        cat.register(f.qbic.clone()).unwrap();
        cat.register(f.text.clone()).unwrap();
        let garlic = Garlic::with_options(
            cat,
            PlannerOptions {
                negation_pushdown: true,
                ..Default::default()
            },
        );
        assert!(matches!(
            garlic.plan_for(&q, 6).unwrap().strategy,
            Strategy::FaNnf
        ));
        let (batches, _) = garlic.top_k_paged(&q, &[3, 3]).unwrap();
        let oneshot = garlic.top_k(&q, 6).unwrap();
        let paged: Vec<Grade> = batches.iter().flat_map(|b| b.grades()).collect();
        assert_eq!(paged.len(), 6);
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
    }

    #[test]
    fn session_streams_batches_on_demand() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let mut session = garlic.open_session(&q, 12).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        loop {
            let batch = session.next_batch(5).unwrap();
            if batch.is_empty() {
                break;
            }
            for e in batch.entries() {
                assert!(seen.insert(e.object), "object repeated across batches");
            }
            total += batch.len();
        }
        assert_eq!(total, 12);
        assert_eq!(session.returned(), 12);
        assert!(session.next_batch(0).is_err());
    }

    #[test]
    fn paged_batches_clamp_at_universe() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let (batches, _) = garlic.top_batches(&q, &[10, 10]).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 12); // N = 12
        assert!(garlic.top_batches(&q, &[0]).is_err());
    }

    #[test]
    fn weighted_conjunction_reweights_the_ranking() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let color = AtomicQuery::new("AlbumColor", Target::text("red"));
        let shape = AtomicQuery::new("Shape", Target::text("round"));

        // Equal weights recover the unweighted min conjunction.
        let equal = garlic
            .top_k_weighted(&[(color.clone(), 1.0), (shape.clone(), 1.0)], 12)
            .unwrap();
        let unweighted = garlic
            .top_k(
                &GarlicQuery::and(
                    GarlicQuery::Atom(color.clone()),
                    GarlicQuery::Atom(shape.clone()),
                ),
                12,
            )
            .unwrap();
        assert!(equal.answers.same_grades(&unweighted.answers, 1e-9));

        // "Color twice as important as shape": grades must differ from the
        // unweighted ones, and match the naive FW reference.
        let weighted = garlic
            .top_k_weighted(&[(color.clone(), 2.0), (shape.clone(), 1.0)], 12)
            .unwrap();
        assert_ne!(weighted.answers.grades(), unweighted.answers.grades());

        let sources = vec![
            garlic.catalog().evaluate(&color).unwrap(),
            garlic.catalog().evaluate(&shape).unwrap(),
        ];
        let agg = garlic_agg::weighted::FaginWimmers::new(min_agg(), &[2.0, 1.0]);
        let reference = naive_topk(&sources, &agg, 12).unwrap();
        assert!(weighted.answers.same_grades(&reference, 1e-9));
    }

    #[test]
    fn weighted_conjunction_rejects_bad_weights() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let color = AtomicQuery::new("AlbumColor", Target::text("red"));
        assert!(garlic.top_k_weighted(&[], 1).is_err());
        assert!(garlic.top_k_weighted(&[(color.clone(), -1.0)], 1).is_err());
        assert!(garlic.top_k_weighted(&[(color, 0.0)], 1).is_err());
    }

    #[test]
    fn negation_pushdown_matches_naive_calculus() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::not(GarlicQuery::atom("Shape", Target::text("round"))),
        );

        let naive = f.garlic().top_k(&q, 5).unwrap();
        assert!(matches!(naive.plan.strategy, Strategy::NaiveCalculus));

        let mut cat = Catalog::new();
        cat.register(f.rel.clone()).unwrap();
        cat.register(f.qbic.clone()).unwrap();
        cat.register(f.text.clone()).unwrap();
        let pushdown = Garlic::with_options(
            cat,
            PlannerOptions {
                negation_pushdown: true,
                ..Default::default()
            },
        )
        .top_k(&q, 5)
        .unwrap();
        assert!(matches!(pushdown.plan.strategy, Strategy::FaNnf));
        assert!(pushdown.answers.same_grades(&naive.answers, 1e-12));
    }

    #[test]
    fn hard_query_via_pushdown_still_correct() {
        let f = Fixture::new();
        let red = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let hard = GarlicQuery::and(red.clone(), GarlicQuery::not(red));

        let naive = f.garlic().top_k(&hard, 2).unwrap();

        let mut cat = Catalog::new();
        cat.register(f.rel.clone()).unwrap();
        cat.register(f.qbic.clone()).unwrap();
        cat.register(f.text.clone()).unwrap();
        let pushdown = Garlic::with_options(
            cat,
            PlannerOptions {
                negation_pushdown: true,
                ..Default::default()
            },
        )
        .top_k(&hard, 2)
        .unwrap();
        assert!(pushdown.answers.same_grades(&naive.answers, 1e-12));
        assert!(pushdown.answers.best().unwrap().grade <= Grade::HALF);
    }

    #[test]
    fn plan_for_without_execution() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::atom("Artist", Target::text("Kinks"));
        let plan = garlic.plan_for(&q, 2).unwrap();
        let text = format!("{plan}");
        assert!(text.contains("strategy"));
        assert!(text.contains("Kinks"));
    }

    #[test]
    fn explain_executes_and_traces_per_source_costs() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let ex = garlic.explain(&q, 3).unwrap();

        // Same ranking as the plain execution path.
        let plain = garlic.top_k(&q, 3).unwrap();
        assert_eq!(ex.answers.entries(), plain.answers.entries());
        assert_eq!(ex.plan.strategy, plain.plan.strategy);

        // The per-source totals are the billed totals, bit for bit.
        let sum: AccessStats = ex
            .per_source
            .iter()
            .fold(AccessStats::default(), |acc, (_, s)| acc + *s);
        assert_eq!(sum, ex.stats);
        assert_eq!(ex.per_source.len(), 2);

        // The rendered trace carries the plan, the engine phases, and one
        // span per source with exactly those counts.
        let text = ex.to_string();
        assert!(text.contains("plan: FaMin"));
        assert!(ex.trace.find("engine").is_some());
        for (i, (label, s)) in ex.per_source.iter().enumerate() {
            let span = ex
                .trace
                .find(&format!("source[{i}] \"{label}\""))
                .expect("source span");
            assert_eq!(span.get_field("S"), Some(s.sorted.to_string().as_str()));
            assert_eq!(span.get_field("R"), Some(s.random.to_string().as_str()));
        }
    }

    #[test]
    fn explain_traces_materialized_strategies() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let a = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let q = GarlicQuery::and(a.clone(), GarlicQuery::not(a));
        let ex = garlic.explain(&q, 2).unwrap();
        assert!(matches!(ex.plan.strategy, Strategy::NaiveCalculus));
        assert!(ex.trace.find("materialize").is_some());
        let sum: AccessStats = ex
            .per_source
            .iter()
            .fold(AccessStats::default(), |acc, (_, s)| acc + *s);
        assert_eq!(sum, ex.stats);

        // Filtered: the crisp match set is labelled in place.
        let filtered = GarlicQuery::and(
            GarlicQuery::atom("Artist", Target::text("Beatles")),
            GarlicQuery::atom("AlbumColor", Target::text("red")),
        );
        let ex = garlic.explain(&filtered, 2).unwrap();
        assert!(matches!(ex.plan.strategy, Strategy::Filtered { .. }));
        assert!(ex.per_source.iter().any(|(l, _)| l.ends_with("(crisp)")));
        let sum: AccessStats = ex
            .per_source
            .iter()
            .fold(AccessStats::default(), |acc, (_, s)| acc + *s);
        assert_eq!(sum, ex.stats);
    }

    #[test]
    fn explain_appends_registry_deltas_when_telemetry_attached() {
        let f = Fixture::new();
        let telemetry = garlic_telemetry::Telemetry::new();
        telemetry.register_collector({
            let calls = std::sync::atomic::AtomicU64::new(0);
            move |out| {
                out.push(garlic_telemetry::MetricEntry {
                    name: "probe.calls".into(),
                    value: MetricValue::Counter(
                        calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1,
                    ),
                });
            }
        });
        let garlic = f.garlic().with_telemetry(Arc::clone(&telemetry));
        let q = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let ex = garlic.explain(&q, 2).unwrap();
        // The collector's counter advanced between the two snapshots, so
        // the delta span surfaces it.
        let span = ex.trace.find("telemetry").expect("delta span");
        assert_eq!(span.get_field("probe.calls"), Some("1"));

        // And the plain path records the query histogram + counter.
        garlic.top_k(&q, 2).unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("middleware.queries"), 1);
        match snap.get("middleware.query_latency_ns") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
