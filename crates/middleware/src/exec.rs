//! The executor: runs a [`Plan`] against the catalog's subsystems, through
//! counting sources so every answer comes back with its Section 5
//! middleware cost.

use garlic_agg::iterated::min_agg;
use garlic_core::access::CountingSource;
use garlic_core::algorithms::{
    b0_max::b0_max_topk, fa::fagin_run, fa::FaOptions, fa_min::fagin_min_topk,
    filtered::filtered_topk, naive::naive_topk,
};
use garlic_core::{AccessStats, GradedSource, TopK};
use garlic_subsys::AtomicQuery;

use garlic_core::complement::ComplementSource;

use crate::catalog::Catalog;
use crate::error::MiddlewareError;
use crate::plan::{plan, Plan, PlannerOptions, Strategy};
use crate::query::{GarlicQuery, NnfAggregation, QueryAggregation};

/// A query answer with its plan and measured middleware cost.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The top-k answers (objects with their overall grades).
    pub answers: TopK,
    /// Measured access counts across all subsystems.
    pub stats: AccessStats,
    /// The plan that produced the answer.
    pub plan: Plan,
}

/// The Garlic middleware: a catalog plus planner options.
pub struct Garlic<'a> {
    catalog: Catalog<'a>,
    options: PlannerOptions,
}

impl<'a> Garlic<'a> {
    /// Wraps a catalog with default options.
    pub fn new(catalog: Catalog<'a>) -> Self {
        Garlic {
            catalog,
            options: PlannerOptions::default(),
        }
    }

    /// Wraps a catalog with explicit options.
    pub fn with_options(catalog: Catalog<'a>, options: PlannerOptions) -> Self {
        Garlic { catalog, options }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog<'a> {
        &self.catalog
    }

    /// Plans without executing (EXPLAIN).
    pub fn explain(&self, query: &GarlicQuery, k: usize) -> Result<Plan, MiddlewareError> {
        plan(&self.catalog, query, k, self.options)
    }

    /// Plans and executes a top-k query.
    pub fn top_k(&self, query: &GarlicQuery, k: usize) -> Result<QueryResult, MiddlewareError> {
        let plan = self.explain(query, k)?;
        let (answers, stats) = self.execute(query, &plan, k)?;
        Ok(QueryResult {
            answers,
            stats,
            plan,
        })
    }

    /// Pages through a query's ranked result set: returns one [`TopK`] per
    /// requested batch size, never repeating an object, plus the *total*
    /// middleware cost — which, thanks to A₀'s "continue where we left
    /// off" property (Section 4), matches a single evaluation at the
    /// cumulative k rather than paying per batch.
    ///
    /// Supported for queries that plan to a single-algorithm strategy over
    /// the atom lists (A₀′ / generic A₀ / NNF); other strategies fall back
    /// to one evaluation at the cumulative k and slicing.
    pub fn top_batches(
        &self,
        query: &GarlicQuery,
        batches: &[usize],
    ) -> Result<(Vec<TopK>, AccessStats), MiddlewareError> {
        if batches.contains(&0) {
            return Err(MiddlewareError::TopK(garlic_core::TopKError::ZeroK));
        }
        let total: usize = batches.iter().sum();
        let n = self.catalog.universe_size();
        let total = total.min(n);

        let plan = self.explain(query, total.max(1))?;
        match plan.strategy {
            Strategy::FaMin | Strategy::FaGeneric => {
                let sources = self.evaluate_counted(&plan.atoms)?;
                let agg = QueryAggregation::new(query, &plan.atoms);
                let mut session =
                    garlic_core::algorithms::resume::ResumableFa::new(&sources, &agg)?;
                let mut out = Vec::with_capacity(batches.len());
                let mut remaining = total;
                for &b in batches {
                    let take = b.min(remaining);
                    if take == 0 {
                        out.push(TopK::from_entries(Vec::new()));
                        continue;
                    }
                    out.push(session.next_batch(take)?);
                    remaining -= take;
                }
                Ok((out, garlic_core::access::total_stats(&sources)))
            }
            _ => {
                // One evaluation at the cumulative k, then slice.
                let result = self.top_k(query, total.max(1))?;
                let entries = result.answers.entries();
                let mut out = Vec::with_capacity(batches.len());
                let mut cursor = 0usize;
                for &b in batches {
                    let end = (cursor + b).min(entries.len());
                    out.push(TopK::from_entries(entries[cursor..end].to_vec()));
                    cursor = end;
                }
                Ok((out, result.stats))
            }
        }
    }

    /// A *weighted* conjunction of atomic queries (Section 4's pointer to
    /// \[FW97\]: "the user decides that color is twice as important to him
    /// as shape"). Weights are non-negative with a positive sum; the
    /// aggregation is the Fagin–Wimmers weighting of min, which is
    /// monotone, so algorithm A₀ applies unchanged.
    pub fn top_k_weighted(
        &self,
        weighted_atoms: &[(AtomicQuery, f64)],
        k: usize,
    ) -> Result<QueryResult, MiddlewareError> {
        if weighted_atoms.is_empty() {
            return Err(MiddlewareError::Unsupported {
                reason: "weighted conjunction needs at least one conjunct".into(),
            });
        }
        let atoms: Vec<AtomicQuery> = weighted_atoms.iter().map(|(a, _)| a.clone()).collect();
        let weights: Vec<f64> = weighted_atoms.iter().map(|(_, w)| *w).collect();
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) || weights.iter().sum::<f64>() <= 0.0
        {
            return Err(MiddlewareError::Unsupported {
                reason: "weights must be non-negative, finite, with a positive sum".into(),
            });
        }
        let sources = self.evaluate_counted(&atoms)?;
        let agg = garlic_agg::weighted::FaginWimmers::new(min_agg(), &weights);
        let run = fagin_run(
            &sources,
            &agg,
            k,
            FaOptions {
                shrink_depths: self.options.shrink_depths,
            },
        )?;
        let m = atoms.len();
        let n = self.catalog.universe_size();
        let plan = Plan {
            strategy: Strategy::FaGeneric,
            description: format!(
                "weighted conjunction of {m} atoms with weights {weights:?} \
                 under the Fagin-Wimmers rule (FW97); monotone, evaluated by A0"
            ),
            estimated_cost: 2.0
                * m as f64
                * (n as f64).powf((m as f64 - 1.0) / m as f64)
                * (k as f64).powf(1.0 / m as f64),
            atoms,
        };
        Ok(QueryResult {
            answers: run.topk,
            stats: garlic_core::access::total_stats(&sources),
            plan,
        })
    }

    fn evaluate_counted(
        &self,
        atoms: &[AtomicQuery],
    ) -> Result<Vec<CountingSource<Box<dyn GradedSource + 'a>>>, MiddlewareError> {
        atoms
            .iter()
            .map(|a| Ok(CountingSource::new(self.catalog.evaluate(a)?)))
            .collect()
    }

    fn execute(
        &self,
        query: &GarlicQuery,
        plan: &Plan,
        k: usize,
    ) -> Result<(TopK, AccessStats), MiddlewareError> {
        match &plan.strategy {
            Strategy::B0Max => {
                let sources = self.evaluate_counted(&plan.atoms)?;
                let answers = b0_max_topk(&sources, k)?;
                Ok((answers, garlic_core::access::total_stats(&sources)))
            }
            Strategy::FaMin => {
                let sources = self.evaluate_counted(&plan.atoms)?;
                let answers = fagin_min_topk(&sources, k)?;
                Ok((answers, garlic_core::access::total_stats(&sources)))
            }
            Strategy::Filtered { crisp_index } => {
                let crisp_atom = &plan.atoms[*crisp_index];
                let sub = self.catalog.resolve(&crisp_atom.attribute)?;
                let crisp = CountingSource::new(
                    sub.evaluate_set(crisp_atom)
                        .map_err(MiddlewareError::Subsystem)?,
                );
                let graded_atoms: Vec<AtomicQuery> = plan
                    .atoms
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i != crisp_index)
                    .map(|(_, a)| a.clone())
                    .collect();
                let graded = self.evaluate_counted(&graded_atoms)?;
                let answers = filtered_topk(&crisp, &graded, *crisp_index, &min_agg(), k)?;
                let stats = crisp.stats() + garlic_core::access::total_stats(&graded);
                Ok((answers, stats))
            }
            Strategy::FaGeneric => {
                let sources = self.evaluate_counted(&plan.atoms)?;
                let agg = QueryAggregation::new(query, &plan.atoms);
                let run = fagin_run(
                    &sources,
                    &agg,
                    k,
                    FaOptions {
                        shrink_depths: self.options.shrink_depths,
                    },
                )?;
                Ok((run.topk, garlic_core::access::total_stats(&sources)))
            }
            Strategy::NaiveCalculus => {
                let sources = self.evaluate_counted(&plan.atoms)?;
                let agg = QueryAggregation::new(query, &plan.atoms);
                let answers = naive_topk(&sources, &agg, k)?;
                Ok((answers, garlic_core::access::total_stats(&sources)))
            }
            Strategy::InternalPushdown { .. } => {
                let sub = self.catalog.resolve(&plan.atoms[0].attribute)?;
                let fused = CountingSource::new(
                    sub.evaluate_internal_conjunction(&plan.atoms)
                        .map_err(MiddlewareError::Subsystem)?,
                );
                // Top k of the single fused list.
                let sources = vec![fused];
                let answers = b0_max_topk(&sources, k)?;
                Ok((answers, garlic_core::access::total_stats(&sources)))
            }
            Strategy::FaNnf => {
                let nnf = query.to_nnf();
                // One source per *literal*: negated literals read the
                // atom's list reversed with complemented grades.
                let sources: Vec<CountingSource<Box<dyn GradedSource + 'a>>> = nnf
                    .literals
                    .iter()
                    .map(|lit| {
                        let base = self.catalog.evaluate(&lit.atom)?;
                        let source: Box<dyn GradedSource + 'a> = if lit.negated {
                            Box::new(ComplementSource::new(base))
                        } else {
                            base
                        };
                        Ok(CountingSource::new(source))
                    })
                    .collect::<Result<_, MiddlewareError>>()?;
                let agg = NnfAggregation::new(nnf);
                let run = fagin_run(
                    &sources,
                    &agg,
                    k,
                    FaOptions {
                        shrink_depths: self.options.shrink_depths,
                    },
                )?;
                Ok((run.topk, garlic_core::access::total_stats(&sources)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garlic_agg::Grade;
    use garlic_subsys::cd_store::demo_subsystems;
    use garlic_subsys::{Subsystem, Target};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        rel: garlic_subsys::RelationalStore,
        qbic: garlic_subsys::QbicStore,
        text: garlic_subsys::TextStore,
    }

    impl Fixture {
        fn new() -> Self {
            let mut rng = StdRng::seed_from_u64(7);
            let (rel, qbic, text) = demo_subsystems(&mut rng);
            Fixture { rel, qbic, text }
        }

        fn garlic(&self) -> Garlic<'_> {
            let mut cat = Catalog::new();
            cat.register(&self.rel).unwrap();
            cat.register(&self.qbic).unwrap();
            cat.register(&self.text).unwrap();
            Garlic::new(cat)
        }
    }

    #[test]
    fn beatles_red_returns_only_beatles_with_colour_ranking() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("Artist", Target::text("Beatles")),
            GarlicQuery::atom("AlbumColor", Target::text("red")),
        );
        let result = garlic.top_k(&q, 2).unwrap();
        // Albums 0 ("Crimson Meadows", red .9) and 3 ("Scarlet Parade",
        // red .6) are the two red-est Beatles albums.
        let ids: Vec<u64> = result.answers.objects().iter().map(|o| o.0).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&0));
        assert!(ids.contains(&3));
        assert!(result.answers.grades()[0] > Grade::ZERO);
        assert!(matches!(result.plan.strategy, Strategy::Filtered { .. }));
        // Cost must be far below a full scan (12 objects × 2 lists = 24).
        assert!(result.stats.unweighted() < 24);
    }

    #[test]
    fn color_shape_conjunction_matches_reference_semantics() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let fast = garlic.top_k(&q, 3).unwrap();

        // Reference: naive evaluation of the same semantics.
        let color = f
            .qbic
            .evaluate(&AtomicQuery::new("AlbumColor", Target::text("red")))
            .unwrap();
        let shape = f
            .qbic
            .evaluate(&AtomicQuery::new("Shape", Target::text("round")))
            .unwrap();
        let slow = naive_topk(&[color, shape], &min_agg(), 3).unwrap();
        assert!(fast.answers.same_grades(&slow, 1e-12));
    }

    #[test]
    fn disjunction_executes_b0_with_mk_cost() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::or(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let result = garlic.top_k(&q, 3).unwrap();
        assert_eq!(result.stats.sorted, 6);
        assert_eq!(result.stats.random, 0);
    }

    #[test]
    fn negated_query_executes_naive_and_matches_semantics() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let a = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let q = GarlicQuery::and(a.clone(), GarlicQuery::not(a));
        let result = garlic.top_k(&q, 1).unwrap();
        // The winner's grade is min(g, 1-g) <= 1/2 (Section 7).
        assert!(result.answers.best().unwrap().grade <= Grade::HALF);
        assert!(matches!(result.plan.strategy, Strategy::NaiveCalculus));
    }

    #[test]
    fn nested_positive_query_via_fa_generic_matches_naive() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::or(
                GarlicQuery::atom("Shape", Target::text("round")),
                GarlicQuery::atom("Review", Target::terms(&["rock"])),
            ),
        );
        let fast = garlic.top_k(&q, 3).unwrap();
        assert!(matches!(fast.plan.strategy, Strategy::FaGeneric));

        // Reference: naive with the same compound aggregation.
        let atoms = q.atoms();
        let sources: Vec<_> = atoms
            .iter()
            .map(|a| garlic.catalog().evaluate(a).unwrap())
            .collect();
        let agg = QueryAggregation::new(&q, &atoms);
        let slow = naive_topk(&sources, &agg, 3).unwrap();
        assert!(fast.answers.same_grades(&slow, 1e-12));
    }

    #[test]
    fn internal_pushdown_differs_from_garlic_semantics() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );

        let external = f.garlic().top_k(&q, 12).unwrap();

        let mut cat = Catalog::new();
        cat.register(&f.qbic).unwrap();
        let internal_garlic = Garlic::with_options(
            cat,
            PlannerOptions {
                prefer_internal: true,
                ..Default::default()
            },
        );
        let internal = internal_garlic.top_k(&q, 12).unwrap();
        assert!(matches!(
            internal.plan.strategy,
            Strategy::InternalPushdown { .. }
        ));

        // Same objects, but the grades differ: product vs min (Section 8).
        let min_grades = external.answers.grades();
        let prod_grades = internal.answers.grades();
        assert_ne!(min_grades, prod_grades);
    }

    #[test]
    fn paged_batches_equal_one_shot() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );

        let (batches, _) = garlic.top_batches(&q, &[3, 3, 3]).unwrap();
        assert_eq!(batches.len(), 3);
        let oneshot = garlic.top_k(&q, 9).unwrap();
        let mut paged: Vec<Grade> = Vec::new();
        for b in &batches {
            paged.extend(b.grades());
        }
        assert_eq!(paged.len(), 9);
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
    }

    #[test]
    fn paged_batches_work_for_filtered_strategy_too() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("Artist", Target::text("Beatles")),
            GarlicQuery::atom("AlbumColor", Target::text("red")),
        );
        let (batches, _) = garlic.top_batches(&q, &[2, 2]).unwrap();
        let oneshot = garlic.top_k(&q, 4).unwrap();
        let mut paged: Vec<Grade> = Vec::new();
        for b in &batches {
            paged.extend(b.grades());
        }
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
    }

    #[test]
    fn paged_batches_clamp_at_universe() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let (batches, _) = garlic.top_batches(&q, &[10, 10]).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 12); // N = 12
        assert!(garlic.top_batches(&q, &[0]).is_err());
    }

    #[test]
    fn weighted_conjunction_reweights_the_ranking() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let color = AtomicQuery::new("AlbumColor", Target::text("red"));
        let shape = AtomicQuery::new("Shape", Target::text("round"));

        // Equal weights recover the unweighted min conjunction.
        let equal = garlic
            .top_k_weighted(&[(color.clone(), 1.0), (shape.clone(), 1.0)], 12)
            .unwrap();
        let unweighted = garlic
            .top_k(
                &GarlicQuery::and(
                    GarlicQuery::Atom(color.clone()),
                    GarlicQuery::Atom(shape.clone()),
                ),
                12,
            )
            .unwrap();
        assert!(equal.answers.same_grades(&unweighted.answers, 1e-9));

        // "Color twice as important as shape": grades must differ from the
        // unweighted ones, and match the naive FW reference.
        let weighted = garlic
            .top_k_weighted(&[(color.clone(), 2.0), (shape.clone(), 1.0)], 12)
            .unwrap();
        assert_ne!(weighted.answers.grades(), unweighted.answers.grades());

        let sources = vec![
            garlic.catalog().evaluate(&color).unwrap(),
            garlic.catalog().evaluate(&shape).unwrap(),
        ];
        let agg = garlic_agg::weighted::FaginWimmers::new(min_agg(), &[2.0, 1.0]);
        let reference = naive_topk(&sources, &agg, 12).unwrap();
        assert!(weighted.answers.same_grades(&reference, 1e-9));
    }

    #[test]
    fn weighted_conjunction_rejects_bad_weights() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let color = AtomicQuery::new("AlbumColor", Target::text("red"));
        assert!(garlic.top_k_weighted(&[], 1).is_err());
        assert!(garlic.top_k_weighted(&[(color.clone(), -1.0)], 1).is_err());
        assert!(garlic.top_k_weighted(&[(color, 0.0)], 1).is_err());
    }

    #[test]
    fn negation_pushdown_matches_naive_calculus() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::not(GarlicQuery::atom("Shape", Target::text("round"))),
        );

        let naive = f.garlic().top_k(&q, 5).unwrap();
        assert!(matches!(naive.plan.strategy, Strategy::NaiveCalculus));

        let mut cat = Catalog::new();
        cat.register(&f.rel).unwrap();
        cat.register(&f.qbic).unwrap();
        cat.register(&f.text).unwrap();
        let pushdown = Garlic::with_options(
            cat,
            PlannerOptions {
                negation_pushdown: true,
                ..Default::default()
            },
        )
        .top_k(&q, 5)
        .unwrap();
        assert!(matches!(pushdown.plan.strategy, Strategy::FaNnf));
        assert!(pushdown.answers.same_grades(&naive.answers, 1e-12));
    }

    #[test]
    fn hard_query_via_pushdown_still_correct() {
        let f = Fixture::new();
        let red = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let hard = GarlicQuery::and(red.clone(), GarlicQuery::not(red));

        let naive = f.garlic().top_k(&hard, 2).unwrap();

        let mut cat = Catalog::new();
        cat.register(&f.rel).unwrap();
        cat.register(&f.qbic).unwrap();
        cat.register(&f.text).unwrap();
        let pushdown = Garlic::with_options(
            cat,
            PlannerOptions {
                negation_pushdown: true,
                ..Default::default()
            },
        )
        .top_k(&hard, 2)
        .unwrap();
        assert!(pushdown.answers.same_grades(&naive.answers, 1e-12));
        assert!(pushdown.answers.best().unwrap().grade <= Grade::HALF);
    }

    #[test]
    fn explain_without_execution() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::atom("Artist", Target::text("Kinks"));
        let plan = garlic.explain(&q, 2).unwrap();
        let text = format!("{plan}");
        assert!(text.contains("strategy"));
        assert!(text.contains("Kinks"));
    }
}
