//! The executor: runs a [`Plan`] against the catalog's subsystems, through
//! counting sources so every answer comes back with its Section 5
//! middleware cost.
//!
//! Execution is a single [`Strategy::execute`]-style dispatch over the
//! unified core engine: every strategy's one-shot path is a thin call into
//! the engine-backed algorithm shells of `garlic_core::algorithms`, and
//! every strategy's *paged* path is a resumable [`QuerySession`] — there is
//! no per-strategy re-evaluation fallback.
//!
//! Ownership: [`Garlic`] owns its [`Catalog`] and a [`QuerySession`] owns
//! the `Arc` answer handles it streams from, so both are `'static`,
//! `Send + Sync`, and freely movable across threads — the substrate the
//! concurrent [`GarlicService`](crate::service::GarlicService) executes on.

use std::sync::Arc;

use garlic_agg::iterated::min_agg;
use garlic_agg::Aggregation;
use garlic_core::access::{total_stats, CountingSource};
use garlic_core::algorithms::engine::{B0Session, EngineSession};
use garlic_core::algorithms::{
    b0_max::b0_max_topk,
    fa::{fagin_run, FaOptions},
    fa_min::fagin_min_topk,
    filtered::filtered_topk,
    naive::naive_topk,
};
use garlic_core::complement::ComplementSource;
use garlic_core::{AccessStats, GradedEntry, GradedSource, TopK, TopKError};
use garlic_subsys::AtomicQuery;

use crate::catalog::Catalog;
use crate::error::MiddlewareError;
use crate::plan::{plan, Plan, PlannerOptions, Strategy};
use crate::query::{GarlicQuery, NnfAggregation, QueryAggregation};

/// A subsystem answer — an owned `Arc` handle — behind the Section 5
/// metering wrapper.
type Counted = CountingSource<Arc<dyn GradedSource>>;

/// A crisp (set-access) answer behind the metering wrapper.
type CountedCrisp = CountingSource<Arc<dyn garlic_core::SetAccess>>;

/// The aggregation a session carries: thread-safe so the session is.
type SessionAgg = Box<dyn Aggregation + Send + Sync>;

/// The one place execution wraps a source in its metering counter.
fn counted<S: GradedSource>(source: S) -> CountingSource<S> {
    CountingSource::new(source)
}

/// Evaluates each atom through the catalog, metered.
fn counted_atoms(
    catalog: &Catalog,
    atoms: &[AtomicQuery],
) -> Result<Vec<Counted>, MiddlewareError> {
    atoms
        .iter()
        .map(|a| Ok(counted(catalog.evaluate(a)?)))
        .collect()
}

/// One metered source per NNF *literal*: negated literals read the atom's
/// list reversed with complemented grades (the Section 7 observation).
fn nnf_sources(
    catalog: &Catalog,
    query: &GarlicQuery,
) -> Result<(Vec<Counted>, NnfAggregation), MiddlewareError> {
    let nnf = query.to_nnf();
    let sources: Vec<Counted> = nnf
        .literals
        .iter()
        .map(|lit| {
            let base = catalog.evaluate(&lit.atom)?;
            let source: Arc<dyn GradedSource> = if lit.negated {
                Arc::new(ComplementSource::new(base))
            } else {
                base
            };
            Ok(counted(source))
        })
        .collect::<Result<_, MiddlewareError>>()?;
    Ok((sources, NnfAggregation::new(nnf)))
}

impl PlannerOptions {
    /// The A₀ tuning knobs these planner options imply.
    fn fa_options(&self) -> FaOptions {
        FaOptions {
            shrink_depths: self.shrink_depths,
        }
    }
}

/// A query answer with its plan and measured middleware cost.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The top-k answers (objects with their overall grades).
    pub answers: TopK,
    /// Measured access counts across all subsystems.
    pub stats: AccessStats,
    /// The plan that produced the answer.
    pub plan: Plan,
}

/// The Garlic middleware: a catalog plus planner options.
///
/// Owns its catalog, so it is `'static`, `Send + Sync`, and cheaply
/// cloneable (clones share the registered subsystems). All query entry
/// points take `&self`: one `Garlic` — or one `Arc<Garlic>` — serves any
/// number of concurrent callers.
#[derive(Clone)]
pub struct Garlic {
    catalog: Catalog,
    options: PlannerOptions,
}

impl Garlic {
    /// Wraps a catalog with default options.
    pub fn new(catalog: Catalog) -> Self {
        Garlic {
            catalog,
            options: PlannerOptions::default(),
        }
    }

    /// Wraps a catalog with explicit options.
    pub fn with_options(catalog: Catalog, options: PlannerOptions) -> Self {
        Garlic { catalog, options }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Plans without executing (EXPLAIN).
    pub fn explain(&self, query: &GarlicQuery, k: usize) -> Result<Plan, MiddlewareError> {
        plan(&self.catalog, query, k, self.options)
    }

    /// Plans and executes a top-k query.
    pub fn top_k(&self, query: &GarlicQuery, k: usize) -> Result<QueryResult, MiddlewareError> {
        let plan = self.explain(query, k)?;
        let (answers, stats) = self.execute(query, &plan, k)?;
        Ok(QueryResult {
            answers,
            stats,
            plan,
        })
    }

    /// Opens a resumable [`QuerySession`] for a query: every strategy in
    /// the Section 4/8 catalogue pages through its ranked result set batch
    /// by batch, never repeating an object and never re-evaluating.
    /// `k_hint` is the anticipated cumulative result size, used only for
    /// planning estimates.
    pub fn open_session(
        &self,
        query: &GarlicQuery,
        k_hint: usize,
    ) -> Result<QuerySession, MiddlewareError> {
        let plan = self.explain(query, k_hint.max(1))?;
        plan.strategy
            .open_session(&self.catalog, query, &plan.atoms)
    }

    /// Pages through a query's ranked result set: returns one [`TopK`] per
    /// requested batch size, never repeating an object, plus the *total*
    /// middleware cost. Every strategy runs on a resumable engine session
    /// ([`QuerySession`]): the A₀ family "continues where it left off"
    /// (Section 4), so its cumulative sorted cost equals a single
    /// evaluation at the cumulative k; B₀-family paging costs `m·k`
    /// cumulative; the filtered and naive strategies — whose evaluation
    /// cost does not depend on k — materialise their ranking once at
    /// session open and stream it.
    pub fn top_k_paged(
        &self,
        query: &GarlicQuery,
        batches: &[usize],
    ) -> Result<(Vec<TopK>, AccessStats), MiddlewareError> {
        if batches.contains(&0) {
            return Err(MiddlewareError::TopK(TopKError::ZeroK));
        }
        let total: usize = batches.iter().sum();
        let total = total.min(self.catalog.universe_size());

        let mut session = self.open_session(query, total.max(1))?;
        let mut out = Vec::with_capacity(batches.len());
        let mut remaining = total;
        for &b in batches {
            let take = b.min(remaining);
            if take == 0 {
                out.push(TopK::from_entries(Vec::new()));
                continue;
            }
            out.push(session.next_batch(take)?);
            remaining -= take;
        }
        Ok((out, session.stats()))
    }

    /// Alias of [`Garlic::top_k_paged`], kept for existing callers.
    pub fn top_batches(
        &self,
        query: &GarlicQuery,
        batches: &[usize],
    ) -> Result<(Vec<TopK>, AccessStats), MiddlewareError> {
        self.top_k_paged(query, batches)
    }

    /// A *weighted* conjunction of atomic queries (Section 4's pointer to
    /// \[FW97\]: "the user decides that color is twice as important to him
    /// as shape"). Weights are non-negative with a positive sum; the
    /// aggregation is the Fagin–Wimmers weighting of min, which is
    /// monotone, so algorithm A₀ applies unchanged.
    pub fn top_k_weighted(
        &self,
        weighted_atoms: &[(AtomicQuery, f64)],
        k: usize,
    ) -> Result<QueryResult, MiddlewareError> {
        if weighted_atoms.is_empty() {
            return Err(MiddlewareError::Unsupported {
                reason: "weighted conjunction needs at least one conjunct".into(),
            });
        }
        let atoms: Vec<AtomicQuery> = weighted_atoms.iter().map(|(a, _)| a.clone()).collect();
        let weights: Vec<f64> = weighted_atoms.iter().map(|(_, w)| *w).collect();
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) || weights.iter().sum::<f64>() <= 0.0
        {
            return Err(MiddlewareError::Unsupported {
                reason: "weights must be non-negative, finite, with a positive sum".into(),
            });
        }
        let sources = counted_atoms(&self.catalog, &atoms)?;
        let agg = garlic_agg::weighted::FaginWimmers::new(min_agg(), &weights);
        let run = fagin_run(&sources, &agg, k, self.options.fa_options())?;
        let m = atoms.len();
        let n = self.catalog.universe_size();
        let plan = Plan {
            strategy: Strategy::FaGeneric,
            description: format!(
                "weighted conjunction of {m} atoms with weights {weights:?} \
                 under the Fagin-Wimmers rule (FW97); monotone, evaluated by A0"
            ),
            estimated_cost: 2.0
                * m as f64
                * (n as f64).powf((m as f64 - 1.0) / m as f64)
                * (k as f64).powf(1.0 / m as f64),
            atoms,
        };
        Ok(QueryResult {
            answers: run.topk,
            stats: total_stats(&sources),
            plan,
        })
    }

    fn execute(
        &self,
        query: &GarlicQuery,
        plan: &Plan,
        k: usize,
    ) -> Result<(TopK, AccessStats), MiddlewareError> {
        plan.strategy
            .execute(&self.catalog, query, &plan.atoms, self.options, k)
    }
}

/// The crisp match-set source plus the metered graded conjuncts of a
/// filtered plan.
fn filtered_parts(
    catalog: &Catalog,
    atoms: &[AtomicQuery],
    crisp_index: usize,
) -> Result<(CountedCrisp, Vec<Counted>), MiddlewareError> {
    let crisp_atom = &atoms[crisp_index];
    let sub = catalog.resolve(&crisp_atom.attribute)?;
    let crisp = counted(
        sub.evaluate_set(crisp_atom)
            .map_err(MiddlewareError::Subsystem)?,
    );
    let graded_atoms: Vec<AtomicQuery> = atoms
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != crisp_index)
        .map(|(_, a)| a.clone())
        .collect();
    let graded = counted_atoms(catalog, &graded_atoms)?;
    Ok((crisp, graded))
}

/// The single fused internal-conjunction list (Section 8), metered.
fn pushdown_source(catalog: &Catalog, atoms: &[AtomicQuery]) -> Result<Counted, MiddlewareError> {
    let sub = catalog.resolve(&atoms[0].attribute)?;
    Ok(counted(
        sub.evaluate_internal_conjunction(atoms)
            .map_err(MiddlewareError::Subsystem)?,
    ))
}

impl Strategy {
    /// One-shot execution: a single dispatch over the engine-backed
    /// algorithm shells, returning the answers with their measured cost.
    pub(crate) fn execute(
        &self,
        catalog: &Catalog,
        query: &GarlicQuery,
        atoms: &[AtomicQuery],
        options: PlannerOptions,
        k: usize,
    ) -> Result<(TopK, AccessStats), MiddlewareError> {
        match self {
            Strategy::B0Max => {
                let sources = counted_atoms(catalog, atoms)?;
                let answers = b0_max_topk(&sources, k)?;
                Ok((answers, total_stats(&sources)))
            }
            Strategy::FaMin => {
                let sources = counted_atoms(catalog, atoms)?;
                let answers = fagin_min_topk(&sources, k)?;
                Ok((answers, total_stats(&sources)))
            }
            Strategy::Filtered { crisp_index } => {
                let (crisp, graded) = filtered_parts(catalog, atoms, *crisp_index)?;
                let answers = filtered_topk(&crisp, &graded, *crisp_index, &min_agg(), k)?;
                Ok((answers, crisp.stats() + total_stats(&graded)))
            }
            Strategy::FaGeneric => {
                let sources = counted_atoms(catalog, atoms)?;
                let agg = QueryAggregation::new(query, atoms);
                let run = fagin_run(&sources, &agg, k, options.fa_options())?;
                Ok((run.topk, total_stats(&sources)))
            }
            Strategy::NaiveCalculus => {
                let sources = counted_atoms(catalog, atoms)?;
                let agg = QueryAggregation::new(query, atoms);
                let answers = naive_topk(&sources, &agg, k)?;
                Ok((answers, total_stats(&sources)))
            }
            Strategy::InternalPushdown { .. } => {
                // Top k of the single fused list.
                let sources = vec![pushdown_source(catalog, atoms)?];
                let answers = b0_max_topk(&sources, k)?;
                Ok((answers, total_stats(&sources)))
            }
            Strategy::FaNnf => {
                let (sources, agg) = nnf_sources(catalog, query)?;
                let run = fagin_run(&sources, &agg, k, options.fa_options())?;
                Ok((run.topk, total_stats(&sources)))
            }
        }
    }

    /// Opens the strategy's resumable paging session (see [`QuerySession`]).
    ///
    /// Note [`PlannerOptions::shrink_depths`] applies to one-shot
    /// [`Strategy::execute`] only: a resumable session must keep every
    /// seen object's grade vector complete to answer the *next* batch, so
    /// the random-access-saving prefix shrink has nothing to cut.
    pub(crate) fn open_session(
        &self,
        catalog: &Catalog,
        query: &GarlicQuery,
        atoms: &[AtomicQuery],
    ) -> Result<QuerySession, MiddlewareError> {
        let kind = match self {
            Strategy::FaMin => SessionKind::Engine(EngineSession::new(
                counted_atoms(catalog, atoms)?,
                Box::new(min_agg()) as SessionAgg,
            )?),
            Strategy::FaGeneric => SessionKind::Engine(EngineSession::new(
                counted_atoms(catalog, atoms)?,
                Box::new(QueryAggregation::new(query, atoms)) as SessionAgg,
            )?),
            Strategy::FaNnf => {
                let (sources, agg) = nnf_sources(catalog, query)?;
                SessionKind::Engine(EngineSession::new(sources, Box::new(agg) as SessionAgg)?)
            }
            Strategy::B0Max => SessionKind::B0(B0Session::new(counted_atoms(catalog, atoms)?)?),
            Strategy::InternalPushdown { .. } => {
                SessionKind::B0(B0Session::new(vec![pushdown_source(catalog, atoms)?])?)
            }
            Strategy::Filtered { crisp_index } => {
                // The filtered strategy's cost is |S|·m no matter the k
                // (padding objects need no access), so the session can
                // materialise the complete ranking up front at the same
                // cost one evaluation would pay. The match set's grades are
                // completed through the engine's batched random_batch path,
                // so a disk-backed conjunct decodes each block once.
                let (crisp, graded) = filtered_parts(catalog, atoms, *crisp_index)?;
                let n = crisp.len();
                let all = filtered_topk(&crisp, &graded, *crisp_index, &min_agg(), n)?;
                let stats = crisp.stats() + total_stats(&graded);
                SessionKind::Materialized {
                    entries: all.into_entries(),
                    cursor: 0,
                    stats,
                }
            }
            Strategy::NaiveCalculus => {
                // The naive scan always grades everything (m·N), so one
                // materialisation covers every batch.
                let sources = counted_atoms(catalog, atoms)?;
                let agg = QueryAggregation::new(query, atoms);
                let n = sources.first().map(|s| s.len()).unwrap_or(0);
                let all = naive_topk(&sources, &agg, n)?;
                let stats = total_stats(&sources);
                SessionKind::Materialized {
                    entries: all.into_entries(),
                    cursor: 0,
                    stats,
                }
            }
        };
        Ok(QuerySession { kind })
    }
}

/// A resumable, strategy-agnostic paging session over one planned query.
///
/// * A₀-family strategies hold a live
///   [`EngineSession`] — each batch resumes the sorted phase at the stored
///   depth ("continue where we left off", Section 4), so cumulative sorted
///   cost equals one evaluation at the cumulative `k`.
/// * B₀-family strategies (flat disjunctions and Section 8 pushdown) hold a
///   [`B0Session`] — paging deepens the per-list prefixes, `m·k` cumulative
///   cost, no random access.
/// * The filtered and naive strategies — whose evaluation cost is
///   independent of `k` — materialise their full ranking once at open and
///   stream slices of it at zero further access cost.
///
/// A session owns everything it streams from (`Arc` answer handles plus
/// its own bookkeeping), so it is `'static` and `Send`: open it on one
/// thread, store it, hand it to another — the server-side "user session"
/// the paper's multi-user middleware implies.
pub struct QuerySession {
    kind: SessionKind,
}

enum SessionKind {
    Engine(EngineSession<Counted, SessionAgg>),
    B0(B0Session<Counted>),
    Materialized {
        entries: Vec<GradedEntry>,
        cursor: usize,
        stats: AccessStats,
    },
}

impl QuerySession {
    /// Returns the next `k` best answers (fewer once the result set is
    /// exhausted), never repeating an object across batches.
    pub fn next_batch(&mut self, k: usize) -> Result<TopK, MiddlewareError> {
        match &mut self.kind {
            SessionKind::Engine(session) => session.next_batch(k).map_err(MiddlewareError::TopK),
            SessionKind::B0(session) => session.next_batch(k).map_err(MiddlewareError::TopK),
            SessionKind::Materialized {
                entries, cursor, ..
            } => {
                if k == 0 {
                    return Err(MiddlewareError::TopK(TopKError::ZeroK));
                }
                let end = (*cursor + k).min(entries.len());
                // The materialised ranking is already sorted; a page is a
                // plain slice copy, not a re-sort.
                let batch = TopK::from_sorted_entries(entries[*cursor..end].to_vec());
                *cursor = end;
                Ok(batch)
            }
        }
    }

    /// How many answers have been handed out so far.
    pub fn returned(&self) -> usize {
        match &self.kind {
            SessionKind::Engine(session) => session.returned(),
            SessionKind::B0(session) => session.returned(),
            SessionKind::Materialized { cursor, .. } => *cursor,
        }
    }

    /// The cumulative middleware cost of every batch so far (for the
    /// materialised strategies: of the one-time materialisation).
    pub fn stats(&self) -> AccessStats {
        match &self.kind {
            SessionKind::Engine(session) => total_stats(session.sources()),
            SessionKind::B0(session) => total_stats(session.sources()),
            SessionKind::Materialized { stats, .. } => *stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garlic_agg::Grade;
    use garlic_subsys::cd_store::demo_subsystems;
    use garlic_subsys::{Subsystem, Target};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        rel: garlic_subsys::RelationalStore,
        qbic: garlic_subsys::QbicStore,
        text: garlic_subsys::TextStore,
    }

    impl Fixture {
        fn new() -> Self {
            let mut rng = StdRng::seed_from_u64(7);
            let (rel, qbic, text) = demo_subsystems(&mut rng);
            Fixture { rel, qbic, text }
        }

        fn garlic(&self) -> Garlic {
            let mut cat = Catalog::new();
            cat.register(self.rel.clone()).unwrap();
            cat.register(self.qbic.clone()).unwrap();
            cat.register(self.text.clone()).unwrap();
            Garlic::new(cat)
        }
    }

    #[test]
    fn beatles_red_returns_only_beatles_with_colour_ranking() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("Artist", Target::text("Beatles")),
            GarlicQuery::atom("AlbumColor", Target::text("red")),
        );
        let result = garlic.top_k(&q, 2).unwrap();
        // Albums 0 ("Crimson Meadows", red .9) and 3 ("Scarlet Parade",
        // red .6) are the two red-est Beatles albums.
        let ids: Vec<u64> = result.answers.objects().iter().map(|o| o.0).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&0));
        assert!(ids.contains(&3));
        assert!(result.answers.grades()[0] > Grade::ZERO);
        assert!(matches!(result.plan.strategy, Strategy::Filtered { .. }));
        // Cost must be far below a full scan (12 objects × 2 lists = 24).
        assert!(result.stats.unweighted() < 24);
    }

    #[test]
    fn color_shape_conjunction_matches_reference_semantics() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let fast = garlic.top_k(&q, 3).unwrap();

        // Reference: naive evaluation of the same semantics.
        let color = f
            .qbic
            .evaluate(&AtomicQuery::new("AlbumColor", Target::text("red")))
            .unwrap();
        let shape = f
            .qbic
            .evaluate(&AtomicQuery::new("Shape", Target::text("round")))
            .unwrap();
        let slow = naive_topk(&[color, shape], &min_agg(), 3).unwrap();
        assert!(fast.answers.same_grades(&slow, 1e-12));
    }

    #[test]
    fn disjunction_executes_b0_with_mk_cost() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::or(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let result = garlic.top_k(&q, 3).unwrap();
        assert_eq!(result.stats.sorted, 6);
        assert_eq!(result.stats.random, 0);
    }

    #[test]
    fn negated_query_executes_naive_and_matches_semantics() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let a = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let q = GarlicQuery::and(a.clone(), GarlicQuery::not(a));
        let result = garlic.top_k(&q, 1).unwrap();
        // The winner's grade is min(g, 1-g) <= 1/2 (Section 7).
        assert!(result.answers.best().unwrap().grade <= Grade::HALF);
        assert!(matches!(result.plan.strategy, Strategy::NaiveCalculus));
    }

    #[test]
    fn nested_positive_query_via_fa_generic_matches_naive() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::or(
                GarlicQuery::atom("Shape", Target::text("round")),
                GarlicQuery::atom("Review", Target::terms(&["rock"])),
            ),
        );
        let fast = garlic.top_k(&q, 3).unwrap();
        assert!(matches!(fast.plan.strategy, Strategy::FaGeneric));

        // Reference: naive with the same compound aggregation.
        let atoms = q.atoms();
        let sources: Vec<_> = atoms
            .iter()
            .map(|a| garlic.catalog().evaluate(a).unwrap())
            .collect();
        let agg = QueryAggregation::new(&q, &atoms);
        let slow = naive_topk(&sources, &agg, 3).unwrap();
        assert!(fast.answers.same_grades(&slow, 1e-12));
    }

    #[test]
    fn internal_pushdown_differs_from_garlic_semantics() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );

        let external = f.garlic().top_k(&q, 12).unwrap();

        let mut cat = Catalog::new();
        cat.register(f.qbic.clone()).unwrap();
        let internal_garlic = Garlic::with_options(
            cat,
            PlannerOptions {
                prefer_internal: true,
                ..Default::default()
            },
        );
        let internal = internal_garlic.top_k(&q, 12).unwrap();
        assert!(matches!(
            internal.plan.strategy,
            Strategy::InternalPushdown { .. }
        ));

        // Same objects, but the grades differ: product vs min (Section 8).
        let min_grades = external.answers.grades();
        let prod_grades = internal.answers.grades();
        assert_ne!(min_grades, prod_grades);
    }

    #[test]
    fn paged_batches_equal_one_shot() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );

        let (batches, _) = garlic.top_batches(&q, &[3, 3, 3]).unwrap();
        assert_eq!(batches.len(), 3);
        let oneshot = garlic.top_k(&q, 9).unwrap();
        let mut paged: Vec<Grade> = Vec::new();
        for b in &batches {
            paged.extend(b.grades());
        }
        assert_eq!(paged.len(), 9);
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
    }

    #[test]
    fn paged_batches_work_for_filtered_strategy_too() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::and(
            GarlicQuery::atom("Artist", Target::text("Beatles")),
            GarlicQuery::atom("AlbumColor", Target::text("red")),
        );
        let (batches, _) = garlic.top_batches(&q, &[2, 2]).unwrap();
        let oneshot = garlic.top_k(&q, 4).unwrap();
        let mut paged: Vec<Grade> = Vec::new();
        for b in &batches {
            paged.extend(b.grades());
        }
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
    }

    #[test]
    fn a0_family_paging_cost_equals_one_evaluation_at_cumulative_k() {
        // The acceptance property of the resumable engine sessions: paging
        // k1 + k2 + ... costs exactly the sorted accesses of ONE evaluation
        // at the cumulative k ("continue where we left off", Section 4).
        // Random accesses can only be fewer-or-equal in the one-shot run
        // (a batch may complete a grade the one-shot run later observes
        // under sorted access). Each (object, list) pair is fetched at most
        // once per access kind, bounding the paged total by 2·m·N.
        let f = Fixture::new();
        let garlic = f.garlic();
        let n = garlic.catalog().universe_size() as u64;
        for (label, q) in [
            (
                "FaMin",
                GarlicQuery::and(
                    GarlicQuery::atom("AlbumColor", Target::text("red")),
                    GarlicQuery::atom("Shape", Target::text("round")),
                ),
            ),
            (
                "FaGeneric",
                GarlicQuery::and(
                    GarlicQuery::atom("AlbumColor", Target::text("red")),
                    GarlicQuery::or(
                        GarlicQuery::atom("Shape", Target::text("round")),
                        GarlicQuery::atom("Review", Target::terms(&["rock"])),
                    ),
                ),
            ),
        ] {
            let (batches, paged_stats) = garlic.top_k_paged(&q, &[2, 3, 4]).unwrap();
            let oneshot = garlic.top_k(&q, 9).unwrap();
            let m = q.atoms().len() as u64;

            // Same answers at every boundary...
            let paged: Vec<Grade> = batches.iter().flat_map(|b| b.grades()).collect();
            for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
                assert!(got.approx_eq(want, 1e-12), "{label}");
            }
            // ...and the one-shot sorted cost, exactly.
            let mut session = garlic.open_session(&q, 9).unwrap();
            for b in [2usize, 3, 4] {
                session.next_batch(b).unwrap();
            }
            assert_eq!(session.returned(), 9, "{label}");
            assert_eq!(session.stats(), paged_stats, "{label}");
            assert_eq!(paged_stats.sorted, oneshot.stats.sorted, "{label}");
            assert!(paged_stats.random >= oneshot.stats.random, "{label}");
            assert!(paged_stats.unweighted() <= 2 * m * n, "{label}");
        }
    }

    #[test]
    fn paged_batches_work_for_naive_calculus_without_reevaluation() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let a = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let q = GarlicQuery::and(a.clone(), GarlicQuery::not(a));
        assert!(matches!(
            garlic.explain(&q, 6).unwrap().strategy,
            Strategy::NaiveCalculus
        ));

        let (batches, stats) = garlic.top_k_paged(&q, &[3, 3]).unwrap();
        let oneshot = garlic.top_k(&q, 6).unwrap();
        let paged: Vec<Grade> = batches.iter().flat_map(|b| b.grades()).collect();
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
        // The naive scan costs m·N regardless of k: paging pays it once.
        assert_eq!(stats, oneshot.stats);
    }

    #[test]
    fn paged_batches_work_for_b0_at_mk_cumulative_cost() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::or(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let (batches, stats) = garlic.top_k_paged(&q, &[2, 2, 2]).unwrap();
        let oneshot = garlic.top_k(&q, 6).unwrap();
        let paged: Vec<Grade> = batches.iter().flat_map(|b| b.grades()).collect();
        assert_eq!(paged.len(), 6);
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
        // Exactly m·(cumulative k) sorted accesses, no random access — the
        // same cost as the one evaluation at k = 6.
        assert_eq!(stats, oneshot.stats);
        assert_eq!(stats.sorted, 2 * 6);
        assert_eq!(stats.random, 0);
    }

    #[test]
    fn paged_batches_work_for_internal_pushdown() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let mut cat = Catalog::new();
        cat.register(f.qbic.clone()).unwrap();
        let garlic = Garlic::with_options(
            cat,
            PlannerOptions {
                prefer_internal: true,
                ..Default::default()
            },
        );
        assert!(matches!(
            garlic.explain(&q, 4).unwrap().strategy,
            Strategy::InternalPushdown { .. }
        ));
        let (batches, stats) = garlic.top_k_paged(&q, &[2, 2]).unwrap();
        let oneshot = garlic.top_k(&q, 4).unwrap();
        let paged: Vec<Grade> = batches.iter().flat_map(|b| b.grades()).collect();
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
        // One fused list: cumulative k sorted accesses, like the one-shot.
        assert_eq!(stats, oneshot.stats);
        assert_eq!(stats.sorted, 4);
    }

    #[test]
    fn paged_batches_work_for_nnf_pushdown() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::not(GarlicQuery::atom("Shape", Target::text("round"))),
        );
        let mut cat = Catalog::new();
        cat.register(f.rel.clone()).unwrap();
        cat.register(f.qbic.clone()).unwrap();
        cat.register(f.text.clone()).unwrap();
        let garlic = Garlic::with_options(
            cat,
            PlannerOptions {
                negation_pushdown: true,
                ..Default::default()
            },
        );
        assert!(matches!(
            garlic.explain(&q, 6).unwrap().strategy,
            Strategy::FaNnf
        ));
        let (batches, _) = garlic.top_k_paged(&q, &[3, 3]).unwrap();
        let oneshot = garlic.top_k(&q, 6).unwrap();
        let paged: Vec<Grade> = batches.iter().flat_map(|b| b.grades()).collect();
        assert_eq!(paged.len(), 6);
        for (got, want) in paged.iter().zip(oneshot.answers.grades()) {
            assert!(got.approx_eq(want, 1e-12));
        }
    }

    #[test]
    fn session_streams_batches_on_demand() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let mut session = garlic.open_session(&q, 12).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        loop {
            let batch = session.next_batch(5).unwrap();
            if batch.is_empty() {
                break;
            }
            for e in batch.entries() {
                assert!(seen.insert(e.object), "object repeated across batches");
            }
            total += batch.len();
        }
        assert_eq!(total, 12);
        assert_eq!(session.returned(), 12);
        assert!(session.next_batch(0).is_err());
    }

    #[test]
    fn paged_batches_clamp_at_universe() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let (batches, _) = garlic.top_batches(&q, &[10, 10]).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 12); // N = 12
        assert!(garlic.top_batches(&q, &[0]).is_err());
    }

    #[test]
    fn weighted_conjunction_reweights_the_ranking() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let color = AtomicQuery::new("AlbumColor", Target::text("red"));
        let shape = AtomicQuery::new("Shape", Target::text("round"));

        // Equal weights recover the unweighted min conjunction.
        let equal = garlic
            .top_k_weighted(&[(color.clone(), 1.0), (shape.clone(), 1.0)], 12)
            .unwrap();
        let unweighted = garlic
            .top_k(
                &GarlicQuery::and(
                    GarlicQuery::Atom(color.clone()),
                    GarlicQuery::Atom(shape.clone()),
                ),
                12,
            )
            .unwrap();
        assert!(equal.answers.same_grades(&unweighted.answers, 1e-9));

        // "Color twice as important as shape": grades must differ from the
        // unweighted ones, and match the naive FW reference.
        let weighted = garlic
            .top_k_weighted(&[(color.clone(), 2.0), (shape.clone(), 1.0)], 12)
            .unwrap();
        assert_ne!(weighted.answers.grades(), unweighted.answers.grades());

        let sources = vec![
            garlic.catalog().evaluate(&color).unwrap(),
            garlic.catalog().evaluate(&shape).unwrap(),
        ];
        let agg = garlic_agg::weighted::FaginWimmers::new(min_agg(), &[2.0, 1.0]);
        let reference = naive_topk(&sources, &agg, 12).unwrap();
        assert!(weighted.answers.same_grades(&reference, 1e-9));
    }

    #[test]
    fn weighted_conjunction_rejects_bad_weights() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let color = AtomicQuery::new("AlbumColor", Target::text("red"));
        assert!(garlic.top_k_weighted(&[], 1).is_err());
        assert!(garlic.top_k_weighted(&[(color.clone(), -1.0)], 1).is_err());
        assert!(garlic.top_k_weighted(&[(color, 0.0)], 1).is_err());
    }

    #[test]
    fn negation_pushdown_matches_naive_calculus() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::not(GarlicQuery::atom("Shape", Target::text("round"))),
        );

        let naive = f.garlic().top_k(&q, 5).unwrap();
        assert!(matches!(naive.plan.strategy, Strategy::NaiveCalculus));

        let mut cat = Catalog::new();
        cat.register(f.rel.clone()).unwrap();
        cat.register(f.qbic.clone()).unwrap();
        cat.register(f.text.clone()).unwrap();
        let pushdown = Garlic::with_options(
            cat,
            PlannerOptions {
                negation_pushdown: true,
                ..Default::default()
            },
        )
        .top_k(&q, 5)
        .unwrap();
        assert!(matches!(pushdown.plan.strategy, Strategy::FaNnf));
        assert!(pushdown.answers.same_grades(&naive.answers, 1e-12));
    }

    #[test]
    fn hard_query_via_pushdown_still_correct() {
        let f = Fixture::new();
        let red = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let hard = GarlicQuery::and(red.clone(), GarlicQuery::not(red));

        let naive = f.garlic().top_k(&hard, 2).unwrap();

        let mut cat = Catalog::new();
        cat.register(f.rel.clone()).unwrap();
        cat.register(f.qbic.clone()).unwrap();
        cat.register(f.text.clone()).unwrap();
        let pushdown = Garlic::with_options(
            cat,
            PlannerOptions {
                negation_pushdown: true,
                ..Default::default()
            },
        )
        .top_k(&hard, 2)
        .unwrap();
        assert!(pushdown.answers.same_grades(&naive.answers, 1e-12));
        assert!(pushdown.answers.best().unwrap().grade <= Grade::HALF);
    }

    #[test]
    fn explain_without_execution() {
        let f = Fixture::new();
        let garlic = f.garlic();
        let q = GarlicQuery::atom("Artist", Target::text("Kinks"));
        let plan = garlic.explain(&q, 2).unwrap();
        let text = format!("{plan}");
        assert!(text.contains("strategy"));
        assert!(text.contains("Kinks"));
    }
}
