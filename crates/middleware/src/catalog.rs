//! The attribute catalog: which subsystem answers which atomic query.
//!
//! "A single Garlic query can access data in a number of different
//! subsystems" (Section 1); the catalog is the routing table that makes
//! that possible. All registered subsystems must grade the *same* object
//! universe (Section 2's "attributes of a specific set of objects of some
//! fixed type").

use garlic_subsys::{AtomicQuery, Subsystem, SubsystemError};

use crate::error::MiddlewareError;

/// A registry of subsystems keyed by the attributes they serve.
pub struct Catalog<'a> {
    subsystems: Vec<&'a dyn Subsystem>,
    universe: usize,
}

impl<'a> Catalog<'a> {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog {
            subsystems: Vec::new(),
            universe: 0,
        }
    }

    /// Registers a subsystem.
    ///
    /// Returns an error if its universe size disagrees with the already
    /// registered subsystems.
    pub fn register(&mut self, subsystem: &'a dyn Subsystem) -> Result<(), MiddlewareError> {
        if self.subsystems.is_empty() {
            self.universe = subsystem.universe_size();
        } else if subsystem.universe_size() != self.universe {
            return Err(MiddlewareError::UniverseMismatch {
                subsystem: subsystem.name().to_owned(),
                expected: self.universe,
                actual: subsystem.universe_size(),
            });
        }
        self.subsystems.push(subsystem);
        Ok(())
    }

    /// The shared universe size `N`.
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// The registered subsystems.
    pub fn subsystems(&self) -> &[&'a dyn Subsystem] {
        &self.subsystems
    }

    /// Finds the subsystem serving an attribute (first registered wins).
    pub fn resolve(&self, attribute: &str) -> Result<&'a dyn Subsystem, MiddlewareError> {
        self.subsystems
            .iter()
            .find(|s| s.attributes().iter().any(|a| a == attribute))
            .copied()
            .ok_or_else(|| MiddlewareError::UnboundAttribute {
                attribute: attribute.to_owned(),
            })
    }

    /// Evaluates an atomic query through its resolved subsystem.
    pub fn evaluate(
        &self,
        query: &AtomicQuery,
    ) -> Result<Box<dyn garlic_core::GradedSource + 'a>, MiddlewareError> {
        let sub = self.resolve(&query.attribute)?;
        sub.evaluate(query).map_err(MiddlewareError::Subsystem)
    }

    /// Whether the attribute grades crisply (planner input).
    pub fn is_crisp(&self, attribute: &str) -> bool {
        self.resolve(attribute)
            .map(|s| s.is_crisp(attribute))
            .unwrap_or(false)
    }
}

impl Default for Catalog<'_> {
    fn default() -> Self {
        Catalog::new()
    }
}

/// Convenience: lift a subsystem error into a middleware error.
impl From<SubsystemError> for MiddlewareError {
    fn from(e: SubsystemError) -> Self {
        MiddlewareError::Subsystem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garlic_subsys::cd_store::demo_subsystems;
    use garlic_subsys::Target;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resolves_attributes_to_subsystems() {
        let mut rng = StdRng::seed_from_u64(0);
        let (rel, qbic, text) = demo_subsystems(&mut rng);
        let mut cat = Catalog::new();
        cat.register(&rel).unwrap();
        cat.register(&qbic).unwrap();
        cat.register(&text).unwrap();

        assert_eq!(cat.resolve("Artist").unwrap().name(), "cd_relational");
        assert_eq!(cat.resolve("AlbumColor").unwrap().name(), "cd_qbic");
        assert_eq!(cat.resolve("Review").unwrap().name(), "cd_reviews");
        assert!(matches!(
            cat.resolve("Tempo"),
            Err(MiddlewareError::UnboundAttribute { .. })
        ));
    }

    #[test]
    fn crisp_detection() {
        let mut rng = StdRng::seed_from_u64(0);
        let (rel, qbic, _) = demo_subsystems(&mut rng);
        let mut cat = Catalog::new();
        cat.register(&rel).unwrap();
        cat.register(&qbic).unwrap();
        assert!(cat.is_crisp("Artist"));
        assert!(!cat.is_crisp("AlbumColor"));
        assert!(!cat.is_crisp("Nonexistent"));
    }

    #[test]
    fn universe_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let (rel, _, _) = demo_subsystems(&mut rng);
        let small = garlic_subsys::QbicStore::synthetic("tiny", 3, &mut rng);
        let mut cat = Catalog::new();
        cat.register(&rel).unwrap();
        assert!(matches!(
            cat.register(&small),
            Err(MiddlewareError::UniverseMismatch { .. })
        ));
    }

    #[test]
    fn evaluate_routes_through_subsystem() {
        let mut rng = StdRng::seed_from_u64(0);
        let (rel, _, _) = demo_subsystems(&mut rng);
        let mut cat = Catalog::new();
        cat.register(&rel).unwrap();
        let src = cat
            .evaluate(&AtomicQuery::new("Artist", Target::text("Beatles")))
            .unwrap();
        assert_eq!(src.len(), 12);
    }
}
