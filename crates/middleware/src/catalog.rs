//! The attribute catalog: which subsystem answers which atomic query.
//!
//! "A single Garlic query can access data in a number of different
//! subsystems" (Section 1); the catalog is the routing table that makes
//! that possible. All registered subsystems must grade the *same* object
//! universe (Section 2's "attributes of a specific set of objects of some
//! fixed type").
//!
//! The catalog *owns* its subsystems as `Arc<dyn Subsystem>` handles: it is
//! `'static`, `Send + Sync`, and cheaply cloneable, so one registry can be
//! shared by every query thread of a service for the lifetime of the
//! process — the paper's multi-user middleware, not a borrow of somebody's
//! stack frame.

use std::sync::Arc;

use garlic_core::GradedSource;
use garlic_subsys::{AtomicQuery, Subsystem, SubsystemError};

use crate::error::MiddlewareError;

/// An owned registry of subsystems keyed by the attributes they serve.
///
/// Cloning is cheap (one `Arc` clone per subsystem) and the clone shares
/// the registered subsystems.
#[derive(Clone)]
pub struct Catalog {
    subsystems: Vec<Arc<dyn Subsystem>>,
    universe: usize,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog {
            subsystems: Vec::new(),
            universe: 0,
        }
    }

    /// Registers a subsystem, taking ownership.
    ///
    /// Returns an error if its universe size disagrees with the already
    /// registered subsystems.
    pub fn register<S: Subsystem + 'static>(
        &mut self,
        subsystem: S,
    ) -> Result<(), MiddlewareError> {
        self.register_arc(Arc::new(subsystem))
    }

    /// Registers an already-shared subsystem handle (e.g. one also held by
    /// another catalog or by the caller).
    pub fn register_arc(&mut self, subsystem: Arc<dyn Subsystem>) -> Result<(), MiddlewareError> {
        if self.subsystems.is_empty() {
            self.universe = subsystem.universe_size();
        } else if subsystem.universe_size() != self.universe {
            return Err(MiddlewareError::UniverseMismatch {
                subsystem: subsystem.name().to_owned(),
                expected: self.universe,
                actual: subsystem.universe_size(),
            });
        }
        self.subsystems.push(subsystem);
        Ok(())
    }

    /// The shared universe size `N`.
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// The registered subsystems.
    pub fn subsystems(&self) -> &[Arc<dyn Subsystem>] {
        &self.subsystems
    }

    /// The display names of the registered subsystems, in registration
    /// order — what a service operator enumerates to see which data
    /// servers a deployment is actually fused over.
    pub fn names(&self) -> Vec<String> {
        self.subsystems
            .iter()
            .map(|s| s.name().to_owned())
            .collect()
    }

    /// Number of registered subsystems.
    pub fn len(&self) -> usize {
        self.subsystems.len()
    }

    /// Whether no subsystem is registered (such a catalog can answer no
    /// query).
    pub fn is_empty(&self) -> bool {
        self.subsystems.is_empty()
    }

    /// Finds the subsystem serving an attribute (first registered wins).
    pub fn resolve(&self, attribute: &str) -> Result<&Arc<dyn Subsystem>, MiddlewareError> {
        self.subsystems
            .iter()
            .find(|s| s.attributes().iter().any(|a| a == attribute))
            .ok_or_else(|| MiddlewareError::UnboundAttribute {
                attribute: attribute.to_owned(),
            })
    }

    /// Evaluates an atomic query through its resolved subsystem, returning
    /// the owned answer handle.
    pub fn evaluate(&self, query: &AtomicQuery) -> Result<Arc<dyn GradedSource>, MiddlewareError> {
        let sub = self.resolve(&query.attribute)?;
        sub.evaluate(query).map_err(MiddlewareError::Subsystem)
    }

    /// Whether the attribute grades crisply (planner input).
    pub fn is_crisp(&self, attribute: &str) -> bool {
        self.resolve(attribute)
            .map(|s| s.is_crisp(attribute))
            .unwrap_or(false)
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("universe", &self.universe)
            .field(
                "subsystems",
                &self
                    .subsystems
                    .iter()
                    .map(|s| s.name().to_owned())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Convenience: lift a subsystem error into a middleware error.
impl From<SubsystemError> for MiddlewareError {
    fn from(e: SubsystemError) -> Self {
        MiddlewareError::Subsystem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garlic_subsys::cd_store::demo_subsystems;
    use garlic_subsys::Target;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_catalog() -> Catalog {
        let mut rng = StdRng::seed_from_u64(0);
        let (rel, qbic, text) = demo_subsystems(&mut rng);
        let mut cat = Catalog::new();
        cat.register(rel).unwrap();
        cat.register(qbic).unwrap();
        cat.register(text).unwrap();
        cat
    }

    #[test]
    fn resolves_attributes_to_subsystems() {
        let cat = demo_catalog();
        assert_eq!(cat.resolve("Artist").unwrap().name(), "cd_relational");
        assert_eq!(cat.resolve("AlbumColor").unwrap().name(), "cd_qbic");
        assert_eq!(cat.resolve("Review").unwrap().name(), "cd_reviews");
        assert!(matches!(
            cat.resolve("Tempo"),
            Err(MiddlewareError::UnboundAttribute { .. })
        ));
    }

    #[test]
    fn crisp_detection() {
        let cat = demo_catalog();
        assert!(cat.is_crisp("Artist"));
        assert!(!cat.is_crisp("AlbumColor"));
        assert!(!cat.is_crisp("Nonexistent"));
    }

    #[test]
    fn universe_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let (rel, _, _) = demo_subsystems(&mut rng);
        let small = garlic_subsys::QbicStore::synthetic("tiny", 3, &mut rng);
        let mut cat = Catalog::new();
        cat.register(rel).unwrap();
        assert!(matches!(
            cat.register(small),
            Err(MiddlewareError::UniverseMismatch { .. })
        ));
    }

    #[test]
    fn evaluate_routes_through_subsystem() {
        let cat = demo_catalog();
        let src = cat
            .evaluate(&AtomicQuery::new("Artist", Target::text("Beatles")))
            .unwrap();
        assert_eq!(src.len(), 12);
    }

    #[test]
    fn clones_share_the_registered_subsystems() {
        let cat = demo_catalog();
        let clone = cat.clone();
        assert_eq!(clone.universe_size(), cat.universe_size());
        for (a, b) in cat.subsystems().iter().zip(clone.subsystems()) {
            assert!(Arc::ptr_eq(a, b), "clone shares, not copies");
        }
    }

    #[test]
    fn introspection_enumerates_registrations() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        assert_eq!(cat.len(), 0);
        assert_eq!(cat.names(), Vec::<String>::new());

        let mut rng = StdRng::seed_from_u64(0);
        let (rel, qbic, text) = demo_subsystems(&mut rng);
        cat.register(rel).unwrap();
        cat.register(qbic).unwrap();
        cat.register(text).unwrap();

        assert!(!cat.is_empty());
        assert_eq!(cat.len(), 3);
        assert_eq!(
            cat.names(),
            vec![
                "cd_relational".to_owned(),
                "cd_qbic".to_owned(),
                "cd_reviews".to_owned()
            ],
            "registration order is preserved"
        );
    }

    #[test]
    fn register_arc_shares_a_caller_held_handle() {
        let mut rng = StdRng::seed_from_u64(0);
        let (rel, _, _) = demo_subsystems(&mut rng);
        let handle: Arc<dyn Subsystem> = Arc::new(rel);
        let mut a = Catalog::new();
        a.register_arc(Arc::clone(&handle)).unwrap();
        let mut b = Catalog::new();
        b.register_arc(Arc::clone(&handle)).unwrap();
        assert!(Arc::ptr_eq(&a.subsystems()[0], &b.subsystems()[0]));
    }
}
