//! Middleware errors.

use garlic_core::access::SourceError;
use garlic_core::TopKError;
use garlic_subsys::SubsystemError;
use std::fmt;

/// The error type every query entry point returns — an alias making the
/// failure-model vocabulary (`QueryError::SourceFailed`,
/// `QueryError::DeadlineExceeded`, ...) read naturally at call sites.
pub type QueryError = MiddlewareError;

/// Errors surfaced by the Garlic middleware layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MiddlewareError {
    /// No registered subsystem serves the attribute.
    UnboundAttribute {
        /// The attribute requested.
        attribute: String,
    },
    /// A subsystem grades a different universe than the catalog.
    UniverseMismatch {
        /// The offending subsystem.
        subsystem: String,
        /// The catalog's universe size.
        expected: usize,
        /// The subsystem's universe size.
        actual: usize,
    },
    /// A subsystem refused or failed a query.
    Subsystem(SubsystemError),
    /// The evaluation algorithm rejected its inputs.
    TopK(TopKError),
    /// The query shape is unsupported by the requested execution mode.
    Unsupported {
        /// Why.
        reason: String,
    },
    /// A source's runtime read path failed after exhausting its retry
    /// budget (`error.quarantined` tells whether the source is now
    /// fail-fast). The query's partial progress was discarded; a retry
    /// against a recovered source re-runs cleanly.
    SourceFailed(SourceError),
    /// The query's cooperative deadline expired between engine batch
    /// rounds. Paged sessions remain resumable: extend the deadline and
    /// ask for the next page again.
    DeadlineExceeded,
    /// The service's bounded admission queue was full — deliberate load
    /// shedding, retry later.
    Overloaded {
        /// The configured in-flight query limit that was hit.
        limit: usize,
    },
    /// A query evaluation panicked and was isolated by the service; the
    /// shared catalog and the other in-flight queries are unaffected.
    Internal {
        /// The captured panic message.
        reason: String,
    },
}

impl fmt::Display for MiddlewareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiddlewareError::UnboundAttribute { attribute } => {
                write!(f, "no subsystem serves attribute {attribute:?}")
            }
            MiddlewareError::UniverseMismatch {
                subsystem,
                expected,
                actual,
            } => write!(
                f,
                "subsystem {subsystem} grades {actual} objects but the catalog has {expected}"
            ),
            MiddlewareError::Subsystem(e) => write!(f, "subsystem error: {e}"),
            MiddlewareError::TopK(e) => write!(f, "evaluation error: {e}"),
            MiddlewareError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
            MiddlewareError::SourceFailed(e) => write!(f, "query failed: {e}"),
            MiddlewareError::DeadlineExceeded => {
                write!(f, "query deadline exceeded (the session remains resumable)")
            }
            MiddlewareError::Overloaded { limit } => {
                write!(f, "service overloaded: {limit} queries already in flight")
            }
            MiddlewareError::Internal { reason } => {
                write!(f, "internal query failure (isolated): {reason}")
            }
        }
    }
}

impl std::error::Error for MiddlewareError {}

impl From<TopKError> for MiddlewareError {
    fn from(e: TopKError) -> Self {
        // Runtime failure classes get their own middleware variants so
        // callers match on them without digging through the TopK layer.
        match e {
            TopKError::SourceFailed(e) => MiddlewareError::SourceFailed(e),
            TopKError::DeadlineExceeded => MiddlewareError::DeadlineExceeded,
            other => MiddlewareError::TopK(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = MiddlewareError::UnboundAttribute {
            attribute: "Tempo".into(),
        };
        assert!(format!("{e}").contains("Tempo"));
        let e = MiddlewareError::UniverseMismatch {
            subsystem: "qbic".into(),
            expected: 10,
            actual: 3,
        };
        let msg = format!("{e}");
        assert!(msg.contains("10") && msg.contains('3'));
    }
}
