//! Middleware errors.

use garlic_core::TopKError;
use garlic_subsys::SubsystemError;
use std::fmt;

/// Errors surfaced by the Garlic middleware layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MiddlewareError {
    /// No registered subsystem serves the attribute.
    UnboundAttribute {
        /// The attribute requested.
        attribute: String,
    },
    /// A subsystem grades a different universe than the catalog.
    UniverseMismatch {
        /// The offending subsystem.
        subsystem: String,
        /// The catalog's universe size.
        expected: usize,
        /// The subsystem's universe size.
        actual: usize,
    },
    /// A subsystem refused or failed a query.
    Subsystem(SubsystemError),
    /// The evaluation algorithm rejected its inputs.
    TopK(TopKError),
    /// The query shape is unsupported by the requested execution mode.
    Unsupported {
        /// Why.
        reason: String,
    },
}

impl fmt::Display for MiddlewareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiddlewareError::UnboundAttribute { attribute } => {
                write!(f, "no subsystem serves attribute {attribute:?}")
            }
            MiddlewareError::UniverseMismatch {
                subsystem,
                expected,
                actual,
            } => write!(
                f,
                "subsystem {subsystem} grades {actual} objects but the catalog has {expected}"
            ),
            MiddlewareError::Subsystem(e) => write!(f, "subsystem error: {e}"),
            MiddlewareError::TopK(e) => write!(f, "evaluation error: {e}"),
            MiddlewareError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
        }
    }
}

impl std::error::Error for MiddlewareError {}

impl From<TopKError> for MiddlewareError {
    fn from(e: TopKError) -> Self {
        MiddlewareError::TopK(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = MiddlewareError::UnboundAttribute {
            attribute: "Tempo".into(),
        };
        assert!(format!("{e}").contains("Tempo"));
        let e = MiddlewareError::UniverseMismatch {
            subsystem: "qbic".into(),
            expected: 10,
            actual: 3,
        };
        let msg = format!("{e}");
        assert!(msg.contains("10") && msg.contains('3'));
    }
}
