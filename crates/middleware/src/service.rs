//! The concurrent service layer: many independent queries, one shared
//! catalog.
//!
//! Fagin's middleware is explicitly *multi-user* — "a single Garlic query
//! can access data in a number of different subsystems", and many users
//! issue such queries at once. The ownership redesign (owned
//! [`Catalog`](crate::Catalog), `Send + Sync` subsystems, `Arc` answer
//! handles) makes that literal: [`GarlicService`] executes batches of
//! independent queries concurrently on a scoped thread pool over one
//! shared [`Garlic`].
//!
//! # Cost accounting under concurrency
//!
//! Each query evaluation wraps its own fresh
//! [`CountingSource`](garlic_core::access::CountingSource)s around the
//! subsystem answers, so per-query [`AccessStats`](garlic_core::AccessStats)
//! are computed in isolation: running a batch concurrently reports, for
//! every query, exactly the Section 5 access counts a sequential run would
//! (pinned by the `concurrent_service` equivalence suite). Concurrency
//! changes wall-clock time, never measured cost.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use garlic_telemetry::SpanTimer;

use crate::error::MiddlewareError;
use crate::exec::{Explain, Garlic, QueryResult};
use crate::query::GarlicQuery;

/// A top-k request: the query and how many answers to return.
pub type QueryRequest = (GarlicQuery, usize);

/// A thread-safe, cloneable query service over one shared [`Garlic`].
///
/// Cloning the service (or sharing it behind an `Arc`) shares the
/// underlying middleware and catalog; each clone can serve batches from
/// its own thread. Clones also share the admission counter, so a
/// [`GarlicService::with_admission_limit`] bound holds across every
/// clone serving concurrently.
///
/// Every query served through the service is **isolated**: a panicking
/// evaluation is caught ([`MiddlewareError::Internal`]) instead of
/// unwinding into the caller or poisoning shared state, an optional
/// per-query deadline fails runaway queries with
/// [`MiddlewareError::DeadlineExceeded`], and the optional admission
/// limit sheds excess load with [`MiddlewareError::Overloaded`] instead
/// of queueing unboundedly.
#[derive(Clone)]
pub struct GarlicService {
    garlic: Arc<Garlic>,
    threads: usize,
    /// Per-query time budget, applied from the moment a query is admitted.
    deadline: Option<Duration>,
    /// Admission control: `(in-flight counter, limit)`. Shared across
    /// clones so the bound is service-wide.
    admission: Option<(Arc<AtomicUsize>, usize)>,
}

/// RAII admission permit: decrements the in-flight counter however the
/// query ends — success, typed error, or caught panic.
struct Admitted<'a>(&'a AtomicUsize);

impl Drop for Admitted<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl GarlicService {
    /// Wraps a middleware instance, sizing the worker pool from
    /// [`std::thread::available_parallelism`].
    pub fn new(garlic: Garlic) -> Self {
        GarlicService::shared(Arc::new(garlic))
    }

    /// Like [`GarlicService::new`], over an already-shared middleware.
    pub fn shared(garlic: Arc<Garlic>) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        GarlicService {
            garlic,
            threads,
            deadline: None,
            admission: None,
        }
    }

    /// Wraps a middleware instance with an explicit worker count
    /// (`threads == 1` degenerates to sequential in-thread execution,
    /// useful as a baseline).
    pub fn with_threads(garlic: Garlic, threads: usize) -> Self {
        GarlicService {
            garlic: Arc::new(garlic),
            threads: threads.max(1),
            deadline: None,
            admission: None,
        }
    }

    /// Applies a per-query deadline: each served query gets `budget` from
    /// admission, checked cooperatively by the engine between batch
    /// rounds, and fails with [`MiddlewareError::DeadlineExceeded`] once
    /// it passes. Sessions opened directly on the [`Garlic`] are not
    /// affected.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Bounds the number of concurrently admitted queries (across all
    /// clones of this service): the `limit + 1`-th concurrent query is
    /// shed immediately with [`MiddlewareError::Overloaded`] rather than
    /// queued, keeping latency bounded under overload.
    pub fn with_admission_limit(mut self, limit: usize) -> Self {
        self.admission = Some((Arc::new(AtomicUsize::new(0)), limit.max(1)));
        self
    }

    /// The shared middleware.
    pub fn garlic(&self) -> &Garlic {
        &self.garlic
    }

    /// The worker-pool size used for batches.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Serves one query on the calling thread, with the service's full
    /// isolation (admission control, deadline, panic containment).
    pub fn top_k(&self, query: &GarlicQuery, k: usize) -> Result<QueryResult, MiddlewareError> {
        self.serve_isolated(|deadline| self.garlic.top_k_with_deadline(query, k, deadline))
    }

    /// Tries to admit one query, shedding load with a typed error when
    /// the in-flight bound is hit.
    fn admit(&self) -> Result<Option<Admitted<'_>>, MiddlewareError> {
        let Some((inflight, limit)) = &self.admission else {
            return Ok(None);
        };
        let admitted = inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < *limit).then_some(n + 1)
            })
            .is_ok();
        if admitted {
            Ok(Some(Admitted(inflight)))
        } else {
            if let Some(t) = self.garlic.telemetry() {
                t.counter("service.shed_load").inc();
            }
            Err(MiddlewareError::Overloaded { limit: *limit })
        }
    }

    /// The one hardened serve path: admission → deadline → catch_unwind.
    ///
    /// `AssertUnwindSafe` is sound here because a panicking evaluation
    /// only ever touches per-query state (its own sessions and counters);
    /// the shared catalog is read-only during queries and the storage
    /// layer recovers poisoned locks via `PoisonError::into_inner`.
    fn serve_isolated<T>(
        &self,
        serve: impl FnOnce(Option<std::time::Instant>) -> Result<T, MiddlewareError>,
    ) -> Result<T, MiddlewareError> {
        let _permit = self.admit()?;
        let deadline = self.deadline.map(|d| std::time::Instant::now() + d);
        let result = catch_unwind(AssertUnwindSafe(|| serve(deadline)));
        match result {
            Ok(out) => {
                if matches!(out, Err(MiddlewareError::DeadlineExceeded)) {
                    if let Some(t) = self.garlic.telemetry() {
                        t.counter("service.deadline_exceeded").inc();
                    }
                }
                out
            }
            Err(panic) => {
                if let Some(t) = self.garlic.telemetry() {
                    t.counter("service.panics").inc();
                }
                let reason = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                Err(MiddlewareError::Internal { reason })
            }
        }
    }

    /// Executes a batch of independent top-k queries concurrently and
    /// returns one result per request, **in request order**.
    ///
    /// Queries are pulled from a shared work queue by up to
    /// `min(threads, batch len)` scoped worker threads; each evaluation is
    /// fully independent (own metered sources, own engine state), so
    /// results, tie order, and per-query access counts are identical to
    /// serving the batch sequentially.
    ///
    /// When the shared [`Garlic`] has telemetry attached, the batch
    /// records `service.queries`, the `service.query_latency_ns`
    /// histogram, and the `service.queue_depth` gauge (requests not yet
    /// claimed by a worker) — handles resolved once per batch, one update
    /// per query.
    pub fn top_k_batch(
        &self,
        requests: &[QueryRequest],
    ) -> Vec<Result<QueryResult, MiddlewareError>> {
        self.run_batch(requests, |q, k| {
            self.serve_isolated(|deadline| self.garlic.top_k_with_deadline(q, k, deadline))
        })
    }

    /// Like [`GarlicService::top_k_batch`], but serves every request
    /// through [`Garlic::explain`]: one executed answer **with its
    /// per-query trace** per request, in request order.
    pub fn explain_batch(
        &self,
        requests: &[QueryRequest],
    ) -> Vec<Result<Explain, MiddlewareError>> {
        self.run_batch(requests, |q, k| {
            self.serve_isolated(|deadline| self.garlic.explain_with_deadline(q, k, deadline))
        })
    }

    /// The shared batch driver: a work queue drained by scoped workers,
    /// results slotted back in request order, with optional service
    /// metrics around every served query.
    fn run_batch<T, F>(&self, requests: &[QueryRequest], serve: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&GarlicQuery, usize) -> T + Sync,
    {
        // Resolve metric handles once per batch; every per-query update is
        // then a relaxed atomic on an owned handle.
        let metrics = self.garlic.telemetry().map(|t| {
            (
                t.counter("service.queries"),
                t.histogram("service.query_latency_ns"),
                t.gauge("service.queue_depth"),
            )
        });
        let serve_timed = |query: &GarlicQuery, k: usize| {
            if let Some((queries, latency, _)) = &metrics {
                let timer = SpanTimer::start();
                let out = serve(query, k);
                queries.inc();
                latency.record(timer.elapsed_ns());
                out
            } else {
                serve(query, k)
            }
        };
        let note_claimed = |i: usize| {
            if let Some((_, _, depth)) = &metrics {
                depth.set(requests.len().saturating_sub(i + 1) as i64);
            }
        };

        let workers = self.threads.min(requests.len());
        if workers <= 1 {
            return requests
                .iter()
                .enumerate()
                .map(|(i, (q, k))| {
                    note_claimed(i);
                    serve_timed(q, *k)
                })
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = requests.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((query, k)) = requests.get(i) else {
                        break;
                    };
                    note_claimed(i);
                    let result = serve_timed(query, *k);
                    *slots[i].lock().expect("no panics while holding the slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker threads joined")
                    .expect("every request was claimed by exactly one worker")
            })
            .collect()
    }
}

impl std::fmt::Debug for GarlicService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GarlicService")
            .field("threads", &self.threads)
            .field("catalog", self.garlic.catalog())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;
    use garlic_subsys::cd_store::demo_subsystems;
    use garlic_subsys::Target;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_garlic() -> Garlic {
        let mut rng = StdRng::seed_from_u64(7);
        let (rel, qbic, text) = demo_subsystems(&mut rng);
        let mut cat = Catalog::new();
        cat.register(rel).unwrap();
        cat.register(qbic).unwrap();
        cat.register(text).unwrap();
        Garlic::new(cat)
    }

    fn service(threads: usize) -> GarlicService {
        GarlicService::with_threads(demo_garlic(), threads)
    }

    fn requests() -> Vec<QueryRequest> {
        let atoms = [
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
            GarlicQuery::atom("Artist", Target::text("Beatles")),
            GarlicQuery::atom("Review", Target::terms(&["psychedelic", "rock"])),
        ];
        let mut out = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    out.push((
                        GarlicQuery::and(atoms[i].clone(), atoms[j].clone()),
                        1 + (i + j) % 4,
                    ));
                }
            }
        }
        out.push((GarlicQuery::or(atoms[0].clone(), atoms[1].clone()), 5));
        out.push((GarlicQuery::not(atoms[0].clone()), 3));
        out
    }

    #[test]
    fn batch_results_arrive_in_request_order_and_match_sequential() {
        // One shared middleware for both modes: the comparison isolates
        // concurrency, not fixture construction.
        let garlic = demo_garlic();
        let concurrent = GarlicService::with_threads(garlic.clone(), 4);
        let sequential = GarlicService::with_threads(garlic, 1);
        let reqs = requests();
        assert!(reqs.len() >= 8, "a real batch");

        let par = concurrent.top_k_batch(&reqs);
        let seq = sequential.top_k_batch(&reqs);
        assert_eq!(par.len(), reqs.len());
        for ((p, s), (q, _)) in par.iter().zip(&seq).zip(&reqs) {
            let p = p.as_ref().unwrap();
            let s = s.as_ref().unwrap();
            assert_eq!(p.answers.entries(), s.answers.entries(), "{q}");
            assert_eq!(p.stats, s.stats, "{q}");
        }
    }

    #[test]
    fn batch_reports_per_query_errors_in_place() {
        let svc = service(3);
        let reqs = vec![
            (GarlicQuery::atom("AlbumColor", Target::text("red")), 2),
            (GarlicQuery::atom("Tempo", Target::text("fast")), 2),
            (GarlicQuery::atom("Shape", Target::text("round")), 2),
        ];
        let results = svc.top_k_batch(&reqs);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(MiddlewareError::UnboundAttribute { .. })
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn one_service_is_shareable_across_caller_threads() {
        let svc = service(2);
        let q = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let reference = svc.top_k(&q, 3).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let svc = svc.clone();
                let q = q.clone();
                let want = reference.answers.entries().to_vec();
                scope.spawn(move || {
                    let got = svc.top_k(&q, 3).unwrap();
                    assert_eq!(got.answers.entries(), want);
                });
            }
        });
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(service(4).top_k_batch(&[]).is_empty());
    }

    #[test]
    fn batch_records_service_metrics_when_attached() {
        use garlic_telemetry::{MetricValue, Telemetry};
        let telemetry = Telemetry::new();
        let garlic = demo_garlic().with_telemetry(Arc::clone(&telemetry));
        let svc = GarlicService::with_threads(garlic, 4);
        let reqs = requests();
        let results = svc.top_k_batch(&reqs);
        assert!(results.iter().all(|r| r.is_ok()));

        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("service.queries"), reqs.len() as u64);
        match snap.get("service.query_latency_ns") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, reqs.len() as u64),
            other => panic!("expected latency histogram, got {other:?}"),
        }
        // The queue drained: the gauge ends at zero.
        assert!(matches!(
            snap.get("service.queue_depth"),
            Some(MetricValue::Gauge(0))
        ));
    }

    #[test]
    fn zero_deadline_fails_engine_queries_with_a_typed_error() {
        use garlic_telemetry::Telemetry;
        let telemetry = Telemetry::new();
        let garlic = demo_garlic().with_telemetry(Arc::clone(&telemetry));
        let svc = GarlicService::with_threads(garlic, 2).with_deadline(Duration::ZERO);
        // A disjunction runs through the B0 engine, which checks the
        // deadline before its first batch round.
        let q = GarlicQuery::or(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        assert!(matches!(
            svc.top_k(&q, 3),
            Err(MiddlewareError::DeadlineExceeded)
        ));
        assert_eq!(telemetry.snapshot().counter("service.deadline_exceeded"), 1);
        // A generous deadline leaves the same query untouched.
        let relaxed = svc.clone().with_deadline(Duration::from_secs(3600));
        assert_eq!(relaxed.top_k(&q, 3).unwrap().answers.len(), 3);
    }

    #[test]
    fn admission_limit_sheds_excess_load_and_releases_permits() {
        use garlic_telemetry::Telemetry;
        let telemetry = Telemetry::new();
        let garlic = demo_garlic().with_telemetry(Arc::clone(&telemetry));
        let svc = GarlicService::with_threads(garlic, 2).with_admission_limit(1);
        let q = GarlicQuery::atom("AlbumColor", Target::text("red"));

        let gate = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            // Occupy the single admission slot with a query that parks
            // until the main thread has observed the shed.
            scope.spawn(|| {
                let held: Result<(), MiddlewareError> = svc.serve_isolated(|_| {
                    gate.wait(); // slot taken
                    gate.wait(); // shed observed
                    Ok(())
                });
                held.unwrap();
            });
            gate.wait();
            // Clones share the admission counter, so the bound is
            // service-wide.
            assert!(matches!(
                svc.clone().top_k(&q, 2),
                Err(MiddlewareError::Overloaded { limit: 1 })
            ));
            gate.wait();
        });
        assert_eq!(telemetry.snapshot().counter("service.shed_load"), 1);
        // The permit was returned when the held query finished.
        assert!(svc.top_k(&q, 2).is_ok());
    }

    #[test]
    fn a_panicking_evaluation_is_isolated_as_a_typed_error() {
        use garlic_telemetry::Telemetry;
        let telemetry = Telemetry::new();
        let garlic = demo_garlic().with_telemetry(Arc::clone(&telemetry));
        let svc = GarlicService::with_threads(garlic, 2).with_admission_limit(4);
        let caught: Result<(), MiddlewareError> =
            svc.serve_isolated(|_| panic!("sabotaged evaluation"));
        match caught {
            Err(MiddlewareError::Internal { reason }) => {
                assert!(reason.contains("sabotaged evaluation"))
            }
            other => panic!("expected an isolated internal error, got {other:?}"),
        }
        assert_eq!(telemetry.snapshot().counter("service.panics"), 1);
        // The panic released its admission permit and left the shared
        // middleware serviceable.
        let q = GarlicQuery::atom("AlbumColor", Target::text("red"));
        assert!(svc.top_k(&q, 2).is_ok());
    }

    #[test]
    fn explain_batch_returns_traces_matching_top_k_batch() {
        let garlic = demo_garlic();
        let svc = GarlicService::with_threads(garlic, 4);
        let reqs = requests();
        let plain = svc.top_k_batch(&reqs);
        let traced = svc.explain_batch(&reqs);
        assert_eq!(plain.len(), traced.len());
        for ((p, t), (q, _)) in plain.iter().zip(&traced).zip(&reqs) {
            let (p, t) = (p.as_ref().unwrap(), t.as_ref().unwrap());
            assert_eq!(p.answers.entries(), t.answers.entries(), "{q}");
            // Each trace's per-source counts sum to its own billed total.
            let sum = t
                .per_source
                .iter()
                .fold(garlic_core::AccessStats::default(), |acc, (_, s)| acc + *s);
            assert_eq!(sum, t.stats, "{q}");
        }
    }
}
