//! The concurrent service layer: many independent queries, one shared
//! catalog.
//!
//! Fagin's middleware is explicitly *multi-user* — "a single Garlic query
//! can access data in a number of different subsystems", and many users
//! issue such queries at once. The ownership redesign (owned
//! [`Catalog`](crate::Catalog), `Send + Sync` subsystems, `Arc` answer
//! handles) makes that literal: [`GarlicService`] executes batches of
//! independent queries concurrently on a scoped thread pool over one
//! shared [`Garlic`].
//!
//! # Cost accounting under concurrency
//!
//! Each query evaluation wraps its own fresh
//! [`CountingSource`](garlic_core::access::CountingSource)s around the
//! subsystem answers, so per-query [`AccessStats`](garlic_core::AccessStats)
//! are computed in isolation: running a batch concurrently reports, for
//! every query, exactly the Section 5 access counts a sequential run would
//! (pinned by the `concurrent_service` equivalence suite). Concurrency
//! changes wall-clock time, never measured cost.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use garlic_telemetry::SpanTimer;

use crate::error::MiddlewareError;
use crate::exec::{Explain, Garlic, QueryResult};
use crate::query::GarlicQuery;

/// A top-k request: the query and how many answers to return.
pub type QueryRequest = (GarlicQuery, usize);

/// A thread-safe, cloneable query service over one shared [`Garlic`].
///
/// Cloning the service (or sharing it behind an `Arc`) shares the
/// underlying middleware and catalog; each clone can serve batches from
/// its own thread.
#[derive(Clone)]
pub struct GarlicService {
    garlic: Arc<Garlic>,
    threads: usize,
}

impl GarlicService {
    /// Wraps a middleware instance, sizing the worker pool from
    /// [`std::thread::available_parallelism`].
    pub fn new(garlic: Garlic) -> Self {
        GarlicService::shared(Arc::new(garlic))
    }

    /// Like [`GarlicService::new`], over an already-shared middleware.
    pub fn shared(garlic: Arc<Garlic>) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        GarlicService { garlic, threads }
    }

    /// Wraps a middleware instance with an explicit worker count
    /// (`threads == 1` degenerates to sequential in-thread execution,
    /// useful as a baseline).
    pub fn with_threads(garlic: Garlic, threads: usize) -> Self {
        GarlicService {
            garlic: Arc::new(garlic),
            threads: threads.max(1),
        }
    }

    /// The shared middleware.
    pub fn garlic(&self) -> &Garlic {
        &self.garlic
    }

    /// The worker-pool size used for batches.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Serves one query on the calling thread.
    pub fn top_k(&self, query: &GarlicQuery, k: usize) -> Result<QueryResult, MiddlewareError> {
        self.garlic.top_k(query, k)
    }

    /// Executes a batch of independent top-k queries concurrently and
    /// returns one result per request, **in request order**.
    ///
    /// Queries are pulled from a shared work queue by up to
    /// `min(threads, batch len)` scoped worker threads; each evaluation is
    /// fully independent (own metered sources, own engine state), so
    /// results, tie order, and per-query access counts are identical to
    /// serving the batch sequentially.
    ///
    /// When the shared [`Garlic`] has telemetry attached, the batch
    /// records `service.queries`, the `service.query_latency_ns`
    /// histogram, and the `service.queue_depth` gauge (requests not yet
    /// claimed by a worker) — handles resolved once per batch, one update
    /// per query.
    pub fn top_k_batch(
        &self,
        requests: &[QueryRequest],
    ) -> Vec<Result<QueryResult, MiddlewareError>> {
        self.run_batch(requests, |q, k| self.garlic.top_k(q, k))
    }

    /// Like [`GarlicService::top_k_batch`], but serves every request
    /// through [`Garlic::explain`]: one executed answer **with its
    /// per-query trace** per request, in request order.
    pub fn explain_batch(
        &self,
        requests: &[QueryRequest],
    ) -> Vec<Result<Explain, MiddlewareError>> {
        self.run_batch(requests, |q, k| self.garlic.explain(q, k))
    }

    /// The shared batch driver: a work queue drained by scoped workers,
    /// results slotted back in request order, with optional service
    /// metrics around every served query.
    fn run_batch<T, F>(&self, requests: &[QueryRequest], serve: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&GarlicQuery, usize) -> T + Sync,
    {
        // Resolve metric handles once per batch; every per-query update is
        // then a relaxed atomic on an owned handle.
        let metrics = self.garlic.telemetry().map(|t| {
            (
                t.counter("service.queries"),
                t.histogram("service.query_latency_ns"),
                t.gauge("service.queue_depth"),
            )
        });
        let serve_timed = |query: &GarlicQuery, k: usize| {
            if let Some((queries, latency, _)) = &metrics {
                let timer = SpanTimer::start();
                let out = serve(query, k);
                queries.inc();
                latency.record(timer.elapsed_ns());
                out
            } else {
                serve(query, k)
            }
        };
        let note_claimed = |i: usize| {
            if let Some((_, _, depth)) = &metrics {
                depth.set(requests.len().saturating_sub(i + 1) as i64);
            }
        };

        let workers = self.threads.min(requests.len());
        if workers <= 1 {
            return requests
                .iter()
                .enumerate()
                .map(|(i, (q, k))| {
                    note_claimed(i);
                    serve_timed(q, *k)
                })
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = requests.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((query, k)) = requests.get(i) else {
                        break;
                    };
                    note_claimed(i);
                    let result = serve_timed(query, *k);
                    *slots[i].lock().expect("no panics while holding the slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker threads joined")
                    .expect("every request was claimed by exactly one worker")
            })
            .collect()
    }
}

impl std::fmt::Debug for GarlicService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GarlicService")
            .field("threads", &self.threads)
            .field("catalog", self.garlic.catalog())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;
    use garlic_subsys::cd_store::demo_subsystems;
    use garlic_subsys::Target;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_garlic() -> Garlic {
        let mut rng = StdRng::seed_from_u64(7);
        let (rel, qbic, text) = demo_subsystems(&mut rng);
        let mut cat = Catalog::new();
        cat.register(rel).unwrap();
        cat.register(qbic).unwrap();
        cat.register(text).unwrap();
        Garlic::new(cat)
    }

    fn service(threads: usize) -> GarlicService {
        GarlicService::with_threads(demo_garlic(), threads)
    }

    fn requests() -> Vec<QueryRequest> {
        let atoms = [
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
            GarlicQuery::atom("Artist", Target::text("Beatles")),
            GarlicQuery::atom("Review", Target::terms(&["psychedelic", "rock"])),
        ];
        let mut out = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    out.push((
                        GarlicQuery::and(atoms[i].clone(), atoms[j].clone()),
                        1 + (i + j) % 4,
                    ));
                }
            }
        }
        out.push((GarlicQuery::or(atoms[0].clone(), atoms[1].clone()), 5));
        out.push((GarlicQuery::not(atoms[0].clone()), 3));
        out
    }

    #[test]
    fn batch_results_arrive_in_request_order_and_match_sequential() {
        // One shared middleware for both modes: the comparison isolates
        // concurrency, not fixture construction.
        let garlic = demo_garlic();
        let concurrent = GarlicService::with_threads(garlic.clone(), 4);
        let sequential = GarlicService::with_threads(garlic, 1);
        let reqs = requests();
        assert!(reqs.len() >= 8, "a real batch");

        let par = concurrent.top_k_batch(&reqs);
        let seq = sequential.top_k_batch(&reqs);
        assert_eq!(par.len(), reqs.len());
        for ((p, s), (q, _)) in par.iter().zip(&seq).zip(&reqs) {
            let p = p.as_ref().unwrap();
            let s = s.as_ref().unwrap();
            assert_eq!(p.answers.entries(), s.answers.entries(), "{q}");
            assert_eq!(p.stats, s.stats, "{q}");
        }
    }

    #[test]
    fn batch_reports_per_query_errors_in_place() {
        let svc = service(3);
        let reqs = vec![
            (GarlicQuery::atom("AlbumColor", Target::text("red")), 2),
            (GarlicQuery::atom("Tempo", Target::text("fast")), 2),
            (GarlicQuery::atom("Shape", Target::text("round")), 2),
        ];
        let results = svc.top_k_batch(&reqs);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(MiddlewareError::UnboundAttribute { .. })
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn one_service_is_shareable_across_caller_threads() {
        let svc = service(2);
        let q = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let reference = svc.top_k(&q, 3).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let svc = svc.clone();
                let q = q.clone();
                let want = reference.answers.entries().to_vec();
                scope.spawn(move || {
                    let got = svc.top_k(&q, 3).unwrap();
                    assert_eq!(got.answers.entries(), want);
                });
            }
        });
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(service(4).top_k_batch(&[]).is_empty());
    }

    #[test]
    fn batch_records_service_metrics_when_attached() {
        use garlic_telemetry::{MetricValue, Telemetry};
        let telemetry = Telemetry::new();
        let garlic = demo_garlic().with_telemetry(Arc::clone(&telemetry));
        let svc = GarlicService::with_threads(garlic, 4);
        let reqs = requests();
        let results = svc.top_k_batch(&reqs);
        assert!(results.iter().all(|r| r.is_ok()));

        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("service.queries"), reqs.len() as u64);
        match snap.get("service.query_latency_ns") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, reqs.len() as u64),
            other => panic!("expected latency histogram, got {other:?}"),
        }
        // The queue drained: the gauge ends at zero.
        assert!(matches!(
            snap.get("service.queue_depth"),
            Some(MetricValue::Gauge(0))
        ));
    }

    #[test]
    fn explain_batch_returns_traces_matching_top_k_batch() {
        let garlic = demo_garlic();
        let svc = GarlicService::with_threads(garlic, 4);
        let reqs = requests();
        let plain = svc.top_k_batch(&reqs);
        let traced = svc.explain_batch(&reqs);
        assert_eq!(plain.len(), traced.len());
        for ((p, t), (q, _)) in plain.iter().zip(&traced).zip(&reqs) {
            let (p, t) = (p.as_ref().unwrap(), t.as_ref().unwrap());
            assert_eq!(p.answers.entries(), t.answers.entries(), "{q}");
            // Each trace's per-source counts sum to its own billed total.
            let sum = t
                .per_source
                .iter()
                .fold(garlic_core::AccessStats::default(), |acc, (_, s)| acc + *s);
            assert_eq!(sum, t.stats, "{q}");
        }
    }
}
