//! The query planner: choosing the evaluation strategy the paper's Section 4
//! catalogue offers.
//!
//! | Query shape | Strategy | Paper reference |
//! |---|---|---|
//! | flat conjunction, one crisp selective atom | filtered ("Beatles") | §4 opening |
//! | flat conjunction, all atoms on one internal-conjunction subsystem, user opted in | internal pushdown | §8 |
//! | flat conjunction | algorithm A₀′ | Thm 4.4 |
//! | flat disjunction | algorithm B₀ | Thm 4.5 |
//! | any other positive query | algorithm A₀ with the compound-query aggregation | Thm 4.2 |
//! | query with negation | naive scan under the calculus | §4 naive |

use garlic_subsys::AtomicQuery;

use crate::catalog::Catalog;
use crate::error::MiddlewareError;
use crate::query::GarlicQuery;

/// The chosen evaluation strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Algorithm B₀ for a flat disjunction (cost `m·k`).
    B0Max,
    /// Algorithm A₀′ for a flat conjunction under min.
    FaMin,
    /// The filtered strategy: enumerate the crisp atom's match set, random
    /// access the rest. Payload: index of the crisp atom in the atom list.
    Filtered {
        /// Which atom is the crisp filter.
        crisp_index: usize,
    },
    /// Algorithm A₀ with the compound positive query as its monotone
    /// aggregation.
    FaGeneric,
    /// Full scan with per-object grading under the standard calculus
    /// (required for non-monotone queries, e.g. any negation).
    NaiveCalculus,
    /// Section 8 internal conjunction pushed down to one subsystem (its own
    /// semantics!).
    InternalPushdown {
        /// The subsystem that evaluates the whole conjunction.
        subsystem: String,
    },
    /// Negation-normal form: negated atoms become reversed complement
    /// sources (the Section 7 observation), making the query monotone in
    /// its literals so A₀ applies. Correct for *any* Boolean query, but
    /// Theorem 7.1 warns the cost can be inherently linear (e.g. `Q ∧ ¬Q`).
    FaNnf,
}

/// Planner tuning.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannerOptions {
    /// Request Section 8 internal conjunction when one subsystem serves all
    /// atoms (trades Garlic semantics for efficiency — "the user could
    /// request an internal conjunction for the sake of efficiency").
    pub prefer_internal: bool,
    /// Use the per-list depth-shrinking refinement inside A₀.
    pub shrink_depths: bool,
    /// Evaluate negated queries by pushing negations to the sources
    /// (negation-normal form + complement sources) and running A₀, instead
    /// of the naive scan. Same answers; the cost advantage depends on the
    /// query (none for `Q ∧ ¬Q`, per Theorem 7.1, but real for e.g.
    /// `A ∧ ¬B` with independent lists).
    pub negation_pushdown: bool,
}

/// An explainable query plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The strategy to execute.
    pub strategy: Strategy,
    /// The distinct atoms, in evaluation order.
    pub atoms: Vec<AtomicQuery>,
    /// Human-readable explanation (for EXPLAIN output).
    pub description: String,
    /// A middleware-cost estimate (unweighted accesses).
    pub estimated_cost: f64,
}

impl std::fmt::Display for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "strategy: {:?}", self.strategy)?;
        writeln!(f, "atoms ({}):", self.atoms.len())?;
        for (i, a) in self.atoms.iter().enumerate() {
            writeln!(f, "  [{i}] {a}")?;
        }
        writeln!(f, "estimated cost: {:.1}", self.estimated_cost)?;
        write!(f, "{}", self.description)
    }
}

/// The Theorem 5.3 cost scale, used for estimates.
fn fa_cost_estimate(n: usize, m: usize, k: usize) -> f64 {
    let (n, m, k) = (n as f64, m as f64, k as f64);
    // Sorted phase ≈ m·T plus a comparable random phase.
    2.0 * m * n.powf((m - 1.0) / m) * k.powf(1.0 / m)
}

/// Plans a top-k evaluation of `query` against the catalog.
pub fn plan(
    catalog: &Catalog,
    query: &GarlicQuery,
    k: usize,
    options: PlannerOptions,
) -> Result<Plan, MiddlewareError> {
    let atoms = query.atoms();
    let n = catalog.universe_size();
    let m = atoms.len();

    // Verify every atom resolves before committing to a strategy.
    for a in &atoms {
        catalog.resolve(&a.attribute)?;
    }

    // Non-positive queries cannot be evaluated by A₀ over the raw atom
    // lists (monotonicity fails — and Section 7 shows some such queries are
    // inherently linear). Two options: push negations into the sources
    // (NNF + complement lists, opt-in) or fall back to the naive scan.
    if !query.is_positive() {
        if options.negation_pushdown {
            let lits = query.to_nnf().literals.len();
            return Ok(Plan {
                strategy: Strategy::FaNnf,
                description: format!(
                    "query contains negation: rewriting to negation-normal form \
                     with {lits} literal(s); negated literals read their atom's \
                     list in reverse with complemented grades (Section 7's \
                     π_notQ observation), restoring monotonicity so A0 applies"
                ),
                estimated_cost: fa_cost_estimate(n, lits, k),
                atoms,
            });
        }
        return Ok(Plan {
            strategy: Strategy::NaiveCalculus,
            description: format!(
                "query contains negation: not monotone, falling back to the naive \
                 linear scan (Section 7 shows e.g. Q AND NOT Q is Θ(N), so no \
                 sublinear strategy exists in general); scanning {m} list(s) of \
                 {n} objects"
            ),
            estimated_cost: (m * n) as f64,
            atoms,
        });
    }

    if let Some(flat) = query.as_flat_and() {
        // Section 8 internal pushdown, on request.
        if options.prefer_internal && m >= 2 {
            let first = catalog.resolve(&flat[0].attribute)?;
            let all_same = flat.iter().all(|a| {
                catalog
                    .resolve(&a.attribute)
                    .map(|s| std::sync::Arc::ptr_eq(s, first))
                    .unwrap_or(false)
            });
            if all_same && first.supports_internal_conjunction() {
                return Ok(Plan {
                    strategy: Strategy::InternalPushdown {
                        subsystem: first.name().to_owned(),
                    },
                    description: format!(
                        "all {m} conjuncts served by {}, which evaluates the \
                         conjunction internally under ITS OWN semantics \
                         (Section 8): expect rankings to differ from Garlic's \
                         min rule; cost is k sorted accesses on one fused list",
                        first.name()
                    ),
                    estimated_cost: k as f64,
                    atoms,
                });
            }
        }

        // The "Beatles" filtered strategy: a crisp atom whose match set is
        // small enough that probing it beats running A₀′.
        let mut best: Option<(usize, usize)> = None; // (atom index, |S|)
        for (i, a) in flat.iter().enumerate() {
            let sub = catalog.resolve(&a.attribute)?;
            if sub.is_crisp(&a.attribute) {
                if let Some(matches) = sub.estimate_matches(a) {
                    if best.is_none_or(|(_, s)| matches < s) {
                        best = Some((i, matches));
                    }
                }
            }
        }
        if let Some((crisp_index, matches)) = best {
            let filtered_cost = (matches * m) as f64;
            if filtered_cost < fa_cost_estimate(n, m, k) {
                return Ok(Plan {
                    strategy: Strategy::Filtered { crisp_index },
                    description: format!(
                        "conjunct [{crisp_index}] is crisp with only {matches} \
                         matches: enumerate its match set and random-access the \
                         other {} conjunct(s) for just those objects (the \
                         Section 4 'Beatles' strategy)",
                        m - 1
                    ),
                    estimated_cost: filtered_cost,
                    atoms,
                });
            }
        }

        if m >= 1 {
            return Ok(Plan {
                strategy: Strategy::FaMin,
                description: format!(
                    "flat conjunction of {m} atoms under min: algorithm A0' \
                     (sorted access to the k-match depth, random access only for \
                     the pivot list's candidates, Theorem 4.4); expected cost \
                     O(N^(({m}-1)/{m}) k^(1/{m})) for independent lists"
                ),
                estimated_cost: fa_cost_estimate(n, m, k),
                atoms,
            });
        }
    }

    if let Some(flat) = query.as_flat_or() {
        let m = flat.len();
        return Ok(Plan {
            strategy: Strategy::B0Max,
            description: format!(
                "flat disjunction of {m} atoms under max: algorithm B0 \
                 (top k of each list, no random access, Theorem 4.5); cost \
                 m*k = {} independent of N",
                m * k
            ),
            estimated_cost: (m * k) as f64,
            atoms,
        });
    }

    // General positive query: A₀ with the compound aggregation.
    Ok(Plan {
        strategy: Strategy::FaGeneric,
        description: format!(
            "positive compound query over {m} atoms: monotone under the \
             standard calculus, so algorithm A0 applies (Theorem 4.2) with \
             the query itself as the aggregation function"
        ),
        estimated_cost: fa_cost_estimate(n, m, k),
        atoms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use garlic_subsys::cd_store::demo_subsystems;
    use garlic_subsys::Target;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        rel: garlic_subsys::RelationalStore,
        qbic: garlic_subsys::QbicStore,
        text: garlic_subsys::TextStore,
    }

    impl Fixture {
        fn new() -> Self {
            let mut rng = StdRng::seed_from_u64(0);
            let (rel, qbic, text) = demo_subsystems(&mut rng);
            Fixture { rel, qbic, text }
        }

        fn catalog(&self) -> Catalog {
            let mut cat = Catalog::new();
            cat.register(self.rel.clone()).unwrap();
            cat.register(self.qbic.clone()).unwrap();
            cat.register(self.text.clone()).unwrap();
            cat
        }
    }

    fn beatles_red() -> GarlicQuery {
        GarlicQuery::and(
            GarlicQuery::atom("Artist", Target::text("Beatles")),
            GarlicQuery::atom("AlbumColor", Target::text("red")),
        )
    }

    #[test]
    fn beatles_query_plans_filtered() {
        let f = Fixture::new();
        let p = plan(&f.catalog(), &beatles_red(), 3, PlannerOptions::default()).unwrap();
        assert_eq!(p.strategy, Strategy::Filtered { crisp_index: 0 });
        assert!(p.description.contains("Beatles") || p.description.contains("crisp"));
    }

    #[test]
    fn fuzzy_conjunction_plans_fa_min() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let p = plan(&f.catalog(), &q, 3, PlannerOptions::default()).unwrap();
        assert_eq!(p.strategy, Strategy::FaMin);
    }

    #[test]
    fn disjunction_plans_b0() {
        let f = Fixture::new();
        let q = GarlicQuery::or(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let p = plan(&f.catalog(), &q, 3, PlannerOptions::default()).unwrap();
        assert_eq!(p.strategy, Strategy::B0Max);
        assert_eq!(p.estimated_cost, 6.0);
    }

    #[test]
    fn negation_plans_naive() {
        let f = Fixture::new();
        let a = GarlicQuery::atom("AlbumColor", Target::text("red"));
        let q = GarlicQuery::and(a.clone(), GarlicQuery::not(a));
        let p = plan(&f.catalog(), &q, 1, PlannerOptions::default()).unwrap();
        assert_eq!(p.strategy, Strategy::NaiveCalculus);
    }

    #[test]
    fn nested_positive_plans_fa_generic() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::or(
                GarlicQuery::atom("Shape", Target::text("round")),
                GarlicQuery::atom("Review", Target::terms(&["rock"])),
            ),
        );
        let p = plan(&f.catalog(), &q, 2, PlannerOptions::default()).unwrap();
        assert_eq!(p.strategy, Strategy::FaGeneric);
    }

    #[test]
    fn internal_pushdown_when_requested_and_colocated() {
        let f = Fixture::new();
        let q = GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        );
        let opts = PlannerOptions {
            prefer_internal: true,
            ..Default::default()
        };
        let p = plan(&f.catalog(), &q, 3, opts).unwrap();
        assert_eq!(
            p.strategy,
            Strategy::InternalPushdown {
                subsystem: "cd_qbic".into()
            }
        );
    }

    #[test]
    fn internal_pushdown_not_possible_across_subsystems() {
        let f = Fixture::new();
        let opts = PlannerOptions {
            prefer_internal: true,
            ..Default::default()
        };
        // Artist lives in the relational store: cannot push down.
        let p = plan(&f.catalog(), &beatles_red(), 3, opts).unwrap();
        assert_ne!(
            std::mem::discriminant(&p.strategy),
            std::mem::discriminant(&Strategy::InternalPushdown {
                subsystem: String::new()
            })
        );
    }

    #[test]
    fn unknown_attribute_fails_planning() {
        let f = Fixture::new();
        let q = GarlicQuery::atom("Tempo", Target::text("fast"));
        assert!(matches!(
            plan(&f.catalog(), &q, 1, PlannerOptions::default()),
            Err(MiddlewareError::UnboundAttribute { .. })
        ));
    }
}
