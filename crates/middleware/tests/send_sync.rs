//! Compile-time assertions that the service API stays thread-safe.
//!
//! The ownership redesign makes every layer of the stack `Send + Sync`:
//! sources, subsystems, the catalog, the middleware, live query sessions,
//! and the concurrent service. These checks are *compile-time* — if a
//! future change smuggles a `Cell`, `Rc`, or borrowed lifetime back into
//! any of these types, this file stops building, which is the point.

use std::sync::Arc;

use garlic_core::access::{CountingSource, MemorySource, SortedCursor};
use garlic_core::algorithms::engine::{B0Session, Engine, EngineSession};
use garlic_core::complement::ComplementSource;
use garlic_core::{GradedSource, SetAccess};
use garlic_middleware::{Catalog, Garlic, GarlicService, QueryResult, QuerySession};
use garlic_subsys::{
    CrispSource, QbicStore, RelationalStore, Subsystem, TextStore, VectorSubsystem,
};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_static<T: 'static>() {}

#[test]
fn core_source_types_are_send_sync() {
    assert_send_sync::<MemorySource>();
    assert_send_sync::<CrispSource>();
    assert_send_sync::<ComplementSource<MemorySource>>();
    assert_send_sync::<CountingSource<MemorySource>>();
    assert_send_sync::<CountingSource<Arc<dyn GradedSource>>>();
    assert_send_sync::<Arc<dyn GradedSource>>();
    assert_send_sync::<Arc<dyn SetAccess>>();
    assert_send_sync::<Box<dyn GradedSource>>();
    assert_send_sync::<SortedCursor<'_, dyn GradedSource>>();
}

#[test]
fn engine_and_sessions_are_send_sync() {
    assert_send_sync::<Engine<Arc<dyn GradedSource>>>();
    assert_send_sync::<B0Session<CountingSource<Arc<dyn GradedSource>>>>();
    // The session aggregation slot used by the middleware is Send + Sync.
    assert_send_sync::<
        EngineSession<
            CountingSource<Arc<dyn GradedSource>>,
            Box<dyn garlic_agg::Aggregation + Send + Sync>,
        >,
    >();
}

#[test]
fn all_subsystem_types_are_send_sync() {
    assert_send_sync::<RelationalStore>();
    assert_send_sync::<QbicStore>();
    assert_send_sync::<TextStore>();
    assert_send_sync::<VectorSubsystem>();
    assert_send_sync::<Arc<dyn Subsystem>>();
    assert_send_sync::<Box<dyn Subsystem>>();
}

#[test]
fn middleware_service_types_are_send_sync_and_static() {
    assert_send_sync::<Catalog>();
    assert_send_sync::<Garlic>();
    assert_send_sync::<QuerySession>();
    assert_send_sync::<GarlicService>();
    assert_send_sync::<QueryResult>();

    // Sessions and services are 'static: storable in server state, movable
    // across threads, no borrow of a subsystem's stack frame.
    assert_static::<Catalog>();
    assert_static::<Garlic>();
    assert_static::<QuerySession>();
    assert_static::<GarlicService>();
}

#[test]
fn a_live_session_actually_moves_across_threads() {
    // The dynamic counterpart of the static checks: open a session on this
    // thread, page it on another, bring it back, page again.
    let mut rng = garlic_workload::seeded_rng(11);
    let (rel, qbic, text) = garlic_subsys::cd_store::demo_subsystems(&mut rng);
    let mut cat = Catalog::new();
    cat.register(rel).unwrap();
    cat.register(qbic).unwrap();
    cat.register(text).unwrap();
    let garlic = Garlic::new(cat);

    let q = garlic_middleware::parse_query("AlbumColor = red AND Shape = round").unwrap();
    let mut session = garlic.open_session(&q, 6).unwrap();
    let first = session.next_batch(3).unwrap();

    let (session, second) = std::thread::spawn(move || {
        let batch = session.next_batch(3).unwrap();
        (session, batch)
    })
    .join()
    .unwrap();
    assert_eq!(session.returned(), 6);

    // Identical to a single-threaded paged run over the same catalog.
    let (batches, stats) = garlic.top_k_paged(&q, &[3, 3]).unwrap();
    assert_eq!(first.entries(), batches[0].entries());
    assert_eq!(second.entries(), batches[1].entries());
    assert_eq!(session.stats(), stats);
}
