//! # garlic-storage — persistent segment storage for graded lists
//!
//! The paper's middleware model assumes subsystems that *own durable
//! collections* (QBIC's image store, the CD store's relations); everything
//! in this workspace so far served graded lists out of RAM. This crate is
//! the durable substrate: an immutable on-disk **segment** format for one
//! graded list, a [`SegmentWriter`] that builds segments atomically, and a
//! [`SegmentSource`] that serves the Section 4 sorted/random access
//! contract straight off disk through a shared LRU [`BlockCache`].
//!
//! * [`format`] — the version-1 file layout: checksummed fixed-size
//!   blocks holding the grade-descending sorted run, a mirrored
//!   object-ordered table region for random access, and a self-checksummed
//!   footer with the block index;
//! * [`writer`] — [`SegmentWriter`]: tmp-file + fsync + rename atomic
//!   publication;
//! * [`segment`] — [`SegmentSource`]: full integrity verification at
//!   open (typed [`StorageError`]s for corrupted/truncated files), then
//!   `GradedSource + SetAccess` served block-by-block;
//! * [`cache`] — [`BlockCache`]: the shared, `Send + Sync`, `Arc`-able
//!   LRU cache with hit/miss/eviction counters ([`CacheStats`]).
//!
//! Segments are immutable after publication, which is what keeps the
//! shared cache coherent with almost no invalidation machinery: a block,
//! once read and checksum-verified, is correct for the life of the
//! process (compaction retires a replaced segment's namespace with
//! [`BlockCache::retire`], the one targeted invalidation).
//!
//! ## The write path
//!
//! Immutability is for *published* data; live collections also take
//! writes. The write subsystem layers a durable, snapshot-consistent
//! mutable store on top of the segment substrate:
//!
//! * [`wal`] — the checksummed, fsynced write-ahead log ([`wal::Wal`])
//!   with torn-tail crash recovery;
//! * [`memtable`] — the in-memory sorted buffer ([`memtable::Memtable`])
//!   mirroring the segment's two region orders;
//! * [`manifest`] — the versioned, atomically swapped store manifest
//!   ([`manifest::Manifest`]) naming the live segment and WALs;
//! * [`live`] — [`LiveSource`]: upserts and tombstone deletes with
//!   epoch-pinned [`LiveSnapshot`] reads serving the exact
//!   `GradedSource + SetAccess` contract;
//! * [`compact`] — the background compactor flushing frozen memtables
//!   into fresh segments through [`SegmentWriter`].
//!
//! ```
//! use std::sync::Arc;
//! use garlic_agg::Grade;
//! use garlic_core::access::GradedSource;
//! use garlic_storage::{BlockCache, SegmentSource, SegmentWriter};
//!
//! let dir = std::env::temp_dir().join(format!("garlic-storage-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("color.seg");
//!
//! let grades: Vec<Grade> = [0.9, 0.3, 0.7].iter().map(|&v| Grade::new(v).unwrap()).collect();
//! SegmentWriter::new().write_grades(&path, &grades).unwrap();
//!
//! let cache = Arc::new(BlockCache::new(1024)); // 1024 × 4 KiB budget
//! let source = SegmentSource::open(&path, cache).unwrap();
//! assert_eq!(source.len(), 3);
//! assert_eq!(source.sorted_access(0).unwrap().object.0, 0); // 0.9 ranks first
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod compact;
pub mod error;
pub mod format;
pub mod live;
pub mod manifest;
pub mod memtable;
pub mod segment;
pub mod vfs;
pub mod wal;
pub mod writer;

pub use cache::{BlockCache, CacheStats};
pub use error::StorageError;
pub use format::DEFAULT_BLOCK_SIZE;
pub use live::{LiveOptions, LiveSnapshot, LiveSource};
pub use manifest::Manifest;
pub use memtable::Memtable;
pub use segment::{FenceStats, RetryPolicy, SegmentSource};
pub use vfs::{std_vfs, FaultKind, FaultOp, FaultRule, FaultVfs, StdVfs, Vfs, VfsFile, VfsRead};
pub use wal::{Wal, WalOp};
pub use writer::{SegmentInfo, SegmentWriter, ShardInfo};
