//! The shared LRU block cache.
//!
//! Disk-backed sources decouple corpus size from RAM only if hot blocks
//! stay resident; [`BlockCache`] is the one RAM budget every
//! [`crate::SegmentSource`] draws from. It is `Send + Sync` and meant to
//! be shared as an `Arc` — one cache per process (or per `DiskSubsystem`)
//! serving every open segment, so the working sets of many attributes
//! compete for the same fixed number of block slots instead of each
//! segment hoarding its own.
//!
//! Blocks are immutable (segments never change after publish), so the
//! cache needs no invalidation protocol: a cached block is correct
//! forever, and concurrent readers share one `Arc<[u8]>` per block.
//! Capacity is counted in blocks; hits, misses, and evictions are metered
//! with atomic counters and surfaced through [`BlockCache::stats`] the same
//! way the Section 5 access counters are — operators tune cache size by
//! watching the hit rate, not by guessing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use garlic_core::FxHashMap;

use crate::error::StorageError;

/// Identifies one block of one open segment. Segment ids are assigned from
/// a process-wide counter at open time, so any number of segments can share
/// one cache without key collisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BlockKey {
    /// The opened segment's unique id.
    pub segment: u64,
    /// The file-wide block number within that segment.
    pub block: u64,
}

struct CachedBlock {
    bytes: Arc<[u8]>,
    /// The tick of this block's most recent access. Strict LRU order is
    /// the tick order (ticks are unique).
    tick: u64,
}

/// The guarded state. The per-block `tick` stamp is the authoritative
/// recency; `stale_recency` is a *lazily repaired* tick → key index that
/// hits never touch: a **hit** — the per-block cost of every warm stream —
/// is one fast-hash lookup plus a tick store, leaving its index entry
/// stale. **Eviction** pops the index's oldest entry and, if the block's
/// stamp has moved on since, re-files the entry under the current stamp
/// and tries again — every re-file is prepaid by the hit that staled it,
/// so eviction stays amortised O(log n) even when the cache thrashes
/// (each resident block holds exactly one index entry). Strict LRU order
/// is preserved exactly; only *when* the index learns about a hit moved.
struct CacheState {
    /// Resident blocks, keyed by the fast [`garlic_core::fx`] hash —
    /// block keys are process-internal, and this lookup sits on every
    /// streamed block of every segment read.
    blocks: FxHashMap<BlockKey, CachedBlock>,
    /// Possibly-stale recency index: one entry per resident block, keyed
    /// by the tick its last *index repair* (insert or evict-time re-file)
    /// saw. Ticks are unique, so iteration order is a candidate LRU order.
    stale_recency: BTreeMap<u64, BlockKey>,
    next_tick: u64,
    /// Single-flight table: one entry per block currently being read from
    /// its file. Concurrent misses on the same key wait on the leader's
    /// [`Flight`] instead of issuing duplicate reads.
    in_flight: FxHashMap<BlockKey, Arc<Flight>>,
}

/// The rendezvous a miss's followers wait on while the leader reads the
/// block. Completed exactly once, by the leader (or its unwind guard).
struct Flight {
    state: Mutex<FlightState>,
    ready: Condvar,
}

enum FlightState {
    /// The leader is still reading.
    Pending,
    /// The leader finished; the bytes every waiter shares.
    Done(Arc<[u8]>),
    /// The leader's read failed (or the leader unwound): waiters must
    /// retry — the next one in becomes the new leader.
    Failed,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            ready: Condvar::new(),
        }
    }

    fn complete(&self, outcome: FlightState) {
        let mut state = self.state.lock().expect("flight lock");
        *state = outcome;
        self.ready.notify_all();
    }

    /// Blocks until the leader completes; `Some(bytes)` on success, `None`
    /// when the flight failed and the caller should retry.
    fn wait(&self) -> Option<Arc<[u8]>> {
        let mut state = self.state.lock().expect("flight lock");
        loop {
            match &*state {
                FlightState::Pending => state = self.ready.wait(state).expect("flight lock"),
                FlightState::Done(bytes) => return Some(Arc::clone(bytes)),
                FlightState::Failed => return None,
            }
        }
    }
}

/// A snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Block requests served from memory.
    pub hits: u64,
    /// Block requests that had to read the file.
    pub misses: u64,
    /// Blocks dropped to make room.
    pub evictions: u64,
    /// Blocks currently resident.
    pub resident: usize,
    /// Maximum resident blocks.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of requests served from memory (0 when nothing was asked).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} blocks resident, {} hits / {} misses ({:.1}% hit rate), {} evictions",
            self.resident,
            self.capacity,
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.evictions
        )
    }
}

/// A shared, thread-safe LRU cache over segment blocks.
///
/// Every counter a stats read needs — hits, misses, evictions, and the
/// resident-block count — is an atomic maintained alongside the guarded
/// state, so [`BlockCache::stats`] never takes the recency lock: operators
/// (and benches) can poll hit rates at any frequency without contending
/// with readers.
pub struct BlockCache {
    capacity: usize,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    resident: AtomicUsize,
}

impl BlockCache {
    /// A cache holding at most `capacity_blocks` blocks (at the default
    /// 4 KiB block size, `capacity_blocks = 1024` is a 4 MiB budget).
    /// Capacity 0 disables residency: every request is a miss, which is
    /// how the cold-cache benchmarks run.
    pub fn new(capacity_blocks: usize) -> Self {
        BlockCache {
            capacity: capacity_blocks,
            state: Mutex::new(CacheState {
                blocks: FxHashMap::default(),
                stale_recency: BTreeMap::new(),
                next_tick: 0,
                in_flight: FxHashMap::default(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
        }
    }

    /// Maximum number of resident blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot — all atomics, no lock taken (see the type docs).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: self.resident.load(Ordering::Relaxed),
            capacity: self.capacity,
        }
    }

    /// Drops every resident block (counters are preserved). Turns a warm
    /// cache cold — for tests and cold-path benchmarks.
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("cache lock");
        state.blocks.clear();
        state.stale_recency.clear();
        self.resident.store(0, Ordering::Relaxed);
    }

    /// Looks `key` up, calling `load` on a miss. The lock is **not** held
    /// across `load`, so concurrent misses on *different* blocks read the
    /// file in parallel — but misses on the *same* block **single-flight**:
    /// exactly one caller (the leader) reads the file and bills one miss;
    /// every racer waits on the leader's [`Flight`] and is billed a hit,
    /// because it was served from memory. If the leader's read fails (or
    /// unwinds), waiters retry and the next one in leads.
    ///
    /// Capacity 0 disables residency *and* deduplication: the documented
    /// cold-cache contract is that every request reads the file, which is
    /// what the cold-path benchmarks measure.
    pub(crate) fn get_or_load(
        &self,
        key: BlockKey,
        load: impl FnOnce() -> Result<Arc<[u8]>, StorageError>,
    ) -> Result<Arc<[u8]>, StorageError> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return load();
        }
        // The leader consumes `load` at most once across loop iterations
        // (a failed follower may loop back and *become* the leader).
        let mut load = Some(load);
        loop {
            let role = {
                let mut state = self.state.lock().expect("cache lock");
                if let Some(bytes) = state.touch(key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(bytes);
                }
                match state.in_flight.get(&key) {
                    Some(flight) => Role::Follower(Arc::clone(flight)),
                    None => {
                        let flight = Arc::new(Flight::new());
                        state.in_flight.insert(key, Arc::clone(&flight));
                        Role::Leader(flight)
                    }
                }
            };
            match role {
                Role::Leader(flight) => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    // The guard keeps a panicking `load` from stranding
                    // followers: on unwind it marks the flight failed so
                    // they retry instead of waiting forever.
                    let guard = FlightGuard {
                        cache: self,
                        key,
                        flight: &flight,
                        armed: true,
                    };
                    let result = (load.take().expect("the leader loads at most once"))();
                    guard.publish(&result);
                    return result;
                }
                Role::Follower(flight) => {
                    if let Some(bytes) = flight.wait() {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(bytes);
                    }
                    // Leader failed: loop and contend for leadership.
                }
            }
        }
    }
}

/// What a miss turned into once the single-flight table was consulted.
enum Role {
    /// First miss on the key: this caller reads the file.
    Leader(Arc<Flight>),
    /// A read is already in flight: this caller waits for it.
    Follower(Arc<Flight>),
}

/// Completion/unwind guard for a single-flight leader: guarantees the
/// in-flight entry is removed and the flight completed exactly once, even
/// if the load panics mid-read.
struct FlightGuard<'a> {
    cache: &'a BlockCache,
    key: BlockKey,
    flight: &'a Arc<Flight>,
    armed: bool,
}

impl FlightGuard<'_> {
    /// Publishes the leader's result: caches the bytes on success, then
    /// wakes every follower with the outcome.
    fn publish(mut self, result: &Result<Arc<[u8]>, StorageError>) {
        self.armed = false;
        let mut state = self.cache.state.lock().expect("cache lock");
        state.in_flight.remove(&self.key);
        match result {
            Ok(bytes) => {
                if state.touch(self.key).is_none() {
                    let evicted = state.insert(self.key, Arc::clone(bytes), self.cache.capacity);
                    self.cache.evictions.fetch_add(evicted, Ordering::Relaxed);
                    self.cache
                        .resident
                        .store(state.blocks.len(), Ordering::Relaxed);
                }
                drop(state);
                self.flight.complete(FlightState::Done(Arc::clone(bytes)));
            }
            Err(_) => {
                drop(state);
                self.flight.complete(FlightState::Failed);
            }
        }
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // The leader unwound without publishing: fail the flight so
        // followers retry rather than wait forever.
        let mut state = self.cache.state.lock().expect("cache lock");
        state.in_flight.remove(&self.key);
        drop(state);
        self.flight.complete(FlightState::Failed);
    }
}

impl CacheState {
    /// Returns the resident block and refreshes its recency stamp — the
    /// warm hot path: one hash lookup, one store, one increment. The
    /// block's index entry goes stale; eviction repairs it lazily.
    fn touch(&mut self, key: BlockKey) -> Option<Arc<[u8]>> {
        let slot = self.blocks.get_mut(&key)?;
        slot.tick = self.next_tick;
        self.next_tick += 1;
        Some(Arc::clone(&slot.bytes))
    }

    /// Inserts a block, evicting least-recently-used blocks down to
    /// `capacity`. Returns how many were evicted.
    fn insert(&mut self, key: BlockKey, bytes: Arc<[u8]>, capacity: usize) -> u64 {
        let tick = self.next_tick;
        self.next_tick += 1;
        self.blocks.insert(key, CachedBlock { bytes, tick });
        self.stale_recency.insert(tick, key);
        let mut evicted = 0;
        while self.blocks.len() > capacity {
            let (&oldest, &candidate) = self
                .stale_recency
                .iter()
                .next()
                .expect("every resident block has an index entry");
            self.stale_recency.remove(&oldest);
            match self.blocks.get(&candidate) {
                // Stale entry: the block was touched since the index last
                // saw it. Re-file under its current stamp and keep looking
                // — this work is prepaid by the touch that staled it.
                Some(block) if block.tick != oldest => {
                    self.stale_recency.insert(block.tick, candidate);
                }
                // Fresh entry: this really is the least-recently-used.
                Some(_) => {
                    self.blocks.remove(&candidate);
                    evicted += 1;
                }
                None => unreachable!("index entries track resident blocks"),
            }
        }
        evicted
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(block: u64) -> BlockKey {
        BlockKey { segment: 1, block }
    }

    fn bytes(fill: u8) -> Arc<[u8]> {
        Arc::from(vec![fill; 8].into_boxed_slice())
    }

    #[test]
    fn hit_after_miss() {
        let cache = BlockCache::new(4);
        let a = cache.get_or_load(key(0), || Ok(bytes(7))).unwrap();
        let b = cache
            .get_or_load(key(0), || panic!("must not reload"))
            .unwrap();
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_block() {
        let cache = BlockCache::new(2);
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        cache.get_or_load(key(1), || Ok(bytes(1))).unwrap();
        // Touch block 0 so block 1 is now the coldest.
        cache.get_or_load(key(0), || panic!("hit")).unwrap();
        cache.get_or_load(key(2), || Ok(bytes(2))).unwrap();
        // Block 1 was evicted; block 0 survived.
        cache.get_or_load(key(0), || panic!("hit")).unwrap();
        let reloaded = std::cell::Cell::new(false);
        cache
            .get_or_load(key(1), || {
                reloaded.set(true);
                Ok(bytes(1))
            })
            .unwrap();
        assert!(reloaded.get(), "evicted block must reload");
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn capacity_zero_never_retains() {
        let cache = BlockCache::new(0);
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (0, 2, 0));
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = BlockCache::new(4);
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        cache.clear();
        assert_eq!(cache.stats().resident, 0);
        assert_eq!(cache.stats().misses, 1);
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        assert_eq!(cache.stats().misses, 2, "cleared block reloads");
    }

    #[test]
    fn load_errors_propagate_and_cache_nothing() {
        let cache = BlockCache::new(4);
        let err = cache.get_or_load(key(0), || Err(StorageError::BadMagic));
        assert!(matches!(err, Err(StorageError::BadMagic)));
        assert_eq!(cache.stats().resident, 0);
    }

    #[test]
    fn distinct_segments_do_not_collide() {
        let cache = BlockCache::new(4);
        cache
            .get_or_load(
                BlockKey {
                    segment: 1,
                    block: 0,
                },
                || Ok(bytes(1)),
            )
            .unwrap();
        let other = cache
            .get_or_load(
                BlockKey {
                    segment: 2,
                    block: 0,
                },
                || Ok(bytes(2)),
            )
            .unwrap();
        assert_eq!(other[0], 2);
        assert_eq!(cache.stats().resident, 2);
    }

    #[test]
    fn concurrent_readers_share_blocks() {
        let cache = Arc::new(BlockCache::new(8));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for b in 0..8 {
                        let got = cache.get_or_load(key(b), || Ok(bytes(b as u8))).unwrap();
                        assert_eq!(got[0], b as u8);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 32);
        assert_eq!(stats.misses, 8, "single-flight: each block loaded once");
        assert_eq!(stats.resident, 8);
        assert!(format!("{stats}").contains("hit rate"));
    }

    #[test]
    fn racing_misses_on_one_cold_block_single_flight() {
        // Regression: the lock is dropped across file reads, so before the
        // in-flight table, 8 threads missing the same cold block would all
        // read and decode it — duplicate I/O and 8 counted misses. Now the
        // leader loads once; everyone else waits and is billed a hit.
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;
        let cache = Arc::new(BlockCache::new(4));
        let loads = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    let got = cache
                        .get_or_load(key(0), || {
                            loads.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough that the
                            // racers genuinely overlap the read.
                            std::thread::sleep(std::time::Duration::from_millis(25));
                            Ok(bytes(42))
                        })
                        .unwrap();
                    assert_eq!(got[0], 42);
                });
            }
        });
        assert_eq!(loads.load(Ordering::SeqCst), 1, "exactly one file read");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one miss");
        assert_eq!(stats.hits, 7, "every racer was served from memory");
        assert_eq!(stats.resident, 1);
    }

    #[test]
    fn failed_leader_wakes_followers_and_the_next_caller_retries() {
        use std::sync::Barrier;
        let cache = Arc::new(BlockCache::new(4));
        let barrier = Barrier::new(4);
        // Every racer's load fails: all must get an error (no deadlock,
        // no stranded in-flight entry).
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    barrier.wait();
                    let result = cache.get_or_load(key(0), || {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        Err(StorageError::BadMagic)
                    });
                    assert!(result.is_err());
                });
            }
        });
        assert_eq!(cache.stats().resident, 0);
        // The key is not stuck in flight: a fresh call loads and caches.
        let got = cache.get_or_load(key(0), || Ok(bytes(7))).unwrap();
        assert_eq!(got[0], 7);
        assert_eq!(cache.stats().resident, 1);
    }

    #[test]
    fn capacity_zero_does_not_single_flight() {
        // The cold-bench contract: with no residency, every request reads
        // the file — racing requests included.
        use std::sync::Barrier;
        let cache = Arc::new(BlockCache::new(0));
        let barrier = Barrier::new(4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    barrier.wait();
                    cache.get_or_load(key(0), || Ok(bytes(1))).unwrap();
                });
            }
        });
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (0, 4, 0));
    }
}
