//! The shared block cache: segmented LRU with scan-resistant admission.
//!
//! Disk-backed sources decouple corpus size from RAM only if hot blocks
//! stay resident; [`BlockCache`] is the one RAM budget every
//! [`crate::SegmentSource`] draws from. It is `Send + Sync` and meant to
//! be shared as an `Arc` — one cache per process (or per `DiskSubsystem`)
//! serving every open segment, so the working sets of many attributes
//! compete for the same fixed number of block slots instead of each
//! segment hoarding its own.
//!
//! Blocks are immutable (segments never change after publish), so the
//! cache needs no invalidation protocol: a cached block is correct
//! forever, and concurrent readers share one `Arc<[u8]>` per block.
//! Capacity is counted in blocks; hits, misses, evictions, and admission
//! decisions are metered with atomic counters and surfaced through
//! [`BlockCache::stats`] the same way the Section 5 access counters are —
//! operators tune cache size by watching the hit rate, not by guessing.
//!
//! # Scan resistance
//!
//! A strict LRU has a well-known failure mode for this workload: one cold
//! sequential scan (a deep sorted stream over a large segment) floods the
//! cache with blocks that will never be touched again, evicting the hot
//! working set that random access keeps returning to. The default policy
//! defends against that two ways:
//!
//! - **Segmented LRU.** Resident blocks start *on probation*; a second
//!   access promotes them to the *protected* segment (up to ~4/5 of
//!   capacity; the protected LRU is demoted back to probation when the
//!   segment overflows). A scan's blocks are touched once, so they live
//!   and die in probation — eviction always prefers the probation LRU and
//!   cannot reach the protected set while probation is non-empty.
//! - **TinyLFU admission.** Every request increments a tiny count-min
//!   sketch (4-bit-equivalent saturating counters, periodically halved so
//!   the history ages). When the cache is full, a new block must beat the
//!   would-be victim's frequency estimate to get in; one-touch scan blocks
//!   lose to anything warmer and are *rejected* — returned to the caller
//!   but never made resident, so they cannot displace even probation
//!   residents with a history.
//!
//! [`BlockCache::strict_lru`] builds the old strict-LRU cache for
//! comparison (the `bench_compress` hit-rate gate measures exactly this
//! difference).

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use garlic_core::{fx::FxHasher, FxHashMap};
use garlic_telemetry::{MetricEntry, MetricValue, Telemetry};

use crate::error::StorageError;

/// Identifies one block of one open segment. Segment ids are assigned from
/// a process-wide counter at open time, so any number of segments can share
/// one cache without key collisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BlockKey {
    /// The opened segment's unique id.
    pub segment: u64,
    /// The file-wide block number within that segment.
    pub block: u64,
}

struct CachedBlock {
    bytes: Arc<[u8]>,
    /// The tick of this block's most recent access. Within a segment,
    /// LRU order is the tick order (ticks are unique).
    tick: u64,
    /// Which segment the block belongs to: `false` = probation (touched
    /// once since admission/demotion), `true` = protected.
    protected: bool,
}

/// The guarded state. The per-block `tick` stamp is the authoritative
/// recency; the two segment indexes are *lazily repaired* tick → key maps
/// that hits never touch: a **hit** — the per-block cost of every warm
/// stream — is one fast-hash lookup plus a tick store (plus, once per
/// residency, a promotion), leaving its index entry stale. **Eviction**
/// (and protected-overflow demotion) pops a map's oldest entry and, if
/// the block's stamp or segment has moved on since, re-files or drops the
/// entry and tries again — every repair is prepaid by the touch that
/// staled it, so eviction stays amortised O(log n) even when the cache
/// thrashes. LRU order within each segment is preserved exactly; only
/// *when* the index learns about a hit moved.
struct CacheState {
    /// Resident blocks, keyed by the fast [`garlic_core::fx`] hash —
    /// block keys are process-internal, and this lookup sits on every
    /// streamed block of every segment read.
    blocks: FxHashMap<BlockKey, CachedBlock>,
    /// Possibly-stale recency index of the probation segment.
    probation: BTreeMap<u64, BlockKey>,
    /// Possibly-stale recency index of the protected segment. Promotion
    /// files a fresh entry here eagerly (it happens once per residency,
    /// not per hit), so every protected block always has a live entry;
    /// the entry left behind in `probation` is dropped lazily.
    protected: BTreeMap<u64, BlockKey>,
    /// How many resident blocks are currently protected.
    protected_members: usize,
    /// TinyLFU frequency sketch gating admission (`None` under
    /// [`BlockCache::strict_lru`]).
    sketch: Option<FrequencySketch>,
    next_tick: u64,
    /// Single-flight table: one entry per block currently being read from
    /// its file. Concurrent misses on the same key wait on the leader's
    /// [`Flight`] instead of issuing duplicate reads.
    in_flight: FxHashMap<BlockKey, Arc<Flight>>,
}

/// A count-min sketch of recent request frequencies — the TinyLFU
/// doorkeeper. Four saturating byte counters per key (indexed by mixes of
/// one fx hash); the minimum over the four is the frequency estimate.
/// After `sample_limit` recordings every counter is halved, so the
/// history decays and a formerly-hot block cannot squat forever.
struct FrequencySketch {
    counters: Vec<u8>,
    /// `counters.len() - 1`; the length is a power of two.
    mask: usize,
    recordings: u64,
    sample_limit: u64,
}

/// Counters saturate here; halving keeps relative order while aging.
const SKETCH_CEILING: u8 = 15;

impl FrequencySketch {
    fn new(capacity_blocks: usize) -> Self {
        // ~8 counters per cache slot keeps collision noise low at a few
        // bytes per block of budget; the sample window of 10× capacity is
        // the classic TinyLFU choice (long enough to learn the working
        // set, short enough to forget it when it shifts).
        let width = (capacity_blocks.saturating_mul(8))
            .next_power_of_two()
            .max(64);
        FrequencySketch {
            counters: vec![0; width],
            mask: width - 1,
            recordings: 0,
            sample_limit: (capacity_blocks as u64).saturating_mul(10).max(64),
        }
    }

    fn spread(key: BlockKey) -> u64 {
        let mut hasher = FxHasher::default();
        key.hash(&mut hasher);
        hasher.finish()
    }

    /// Four derived indexes from one hash: odd-constant multiplies keep
    /// the rows independent enough for a min-estimate.
    fn indexes(&self, key: BlockKey) -> [usize; 4] {
        let h = Self::spread(key);
        [
            h as usize & self.mask,
            (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 21) as usize & self.mask,
            (h.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 29) as usize & self.mask,
            (h.rotate_left(32).wrapping_mul(0x1656_67B1_9E37_79F9) >> 17) as usize & self.mask,
        ]
    }

    fn record(&mut self, key: BlockKey) {
        for i in self.indexes(key) {
            let c = &mut self.counters[i];
            *c = (*c + 1).min(SKETCH_CEILING);
        }
        self.recordings += 1;
        if self.recordings >= self.sample_limit {
            for c in &mut self.counters {
                *c /= 2;
            }
            self.recordings = 0;
        }
    }

    fn estimate(&self, key: BlockKey) -> u8 {
        self.indexes(key)
            .into_iter()
            .map(|i| self.counters[i])
            .min()
            .unwrap_or(0)
    }
}

/// The rendezvous a miss's followers wait on while the leader reads the
/// block. Completed exactly once, by the leader (or its unwind guard).
struct Flight {
    state: Mutex<FlightState>,
    ready: Condvar,
}

enum FlightState {
    /// The leader is still reading.
    Pending,
    /// The leader finished; the bytes every waiter shares.
    Done(Arc<[u8]>),
    /// The leader's read failed (or the leader unwound): waiters must
    /// retry — the next one in becomes the new leader.
    Failed,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            ready: Condvar::new(),
        }
    }

    fn complete(&self, outcome: FlightState) {
        let mut state = self.state.lock().expect("flight lock");
        *state = outcome;
        self.ready.notify_all();
    }

    /// Blocks until the leader completes; `Some(bytes)` on success, `None`
    /// when the flight failed and the caller should retry.
    fn wait(&self) -> Option<Arc<[u8]>> {
        let mut state = self.state.lock().expect("flight lock");
        loop {
            match &*state {
                FlightState::Pending => state = self.ready.wait(state).expect("flight lock"),
                FlightState::Done(bytes) => return Some(Arc::clone(bytes)),
                FlightState::Failed => return None,
            }
        }
    }
}

/// A snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Block requests served from memory.
    pub hits: u64,
    /// Block requests that had to read the file.
    pub misses: u64,
    /// Blocks dropped to make room.
    pub evictions: u64,
    /// Loaded blocks the admission policy made resident.
    pub admitted: u64,
    /// Loaded blocks the admission policy turned away (served to the
    /// caller but never cached — a one-touch scan block losing the
    /// frequency duel against the would-be victim).
    pub rejected: u64,
    /// Blocks dropped by targeted segment invalidation
    /// ([`BlockCache::retire`]) — compaction replacing a segment, not
    /// capacity pressure (those are `evictions`).
    pub retired: u64,
    /// Blocks currently resident.
    pub resident: usize,
    /// Maximum resident blocks.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of requests served from memory (0 when nothing was asked).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of loaded blocks the admission policy let in (1 when no
    /// admission decision was ever made). A low rate during a cold scan is
    /// the policy working: the scan is being kept out of the cache.
    pub fn admission_rate(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            1.0
        } else {
            self.admitted as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} blocks resident, {} hits / {} misses ({:.1}% hit rate), {} evictions, \
             {} admitted / {} rejected ({:.1}% admission rate), {} retired",
            self.resident,
            self.capacity,
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.evictions,
            self.admitted,
            self.rejected,
            100.0 * self.admission_rate(),
            self.retired,
        )
    }
}

/// A shared, thread-safe block cache: segmented LRU with TinyLFU
/// admission by default (see the module docs), strict LRU via
/// [`BlockCache::strict_lru`].
///
/// Every counter a stats read needs — hits, misses, evictions, admission
/// decisions, and the resident-block count — is an atomic maintained
/// alongside the guarded state, so [`BlockCache::stats`] never takes the
/// recency lock: operators (and benches) can poll hit rates at any
/// frequency without contending with readers.
pub struct BlockCache {
    capacity: usize,
    /// Target size of the protected segment (0 disables promotion — which
    /// is exactly the strict-LRU recency structure).
    protected_cap: usize,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    retired: AtomicU64,
    resident: AtomicUsize,
}

impl BlockCache {
    /// A scan-resistant cache holding at most `capacity_blocks` blocks
    /// (at the default 4 KiB block size, `capacity_blocks = 1024` is a
    /// 4 MiB budget). Capacity 0 disables residency: every request is a
    /// miss, which is how the cold-cache benchmarks run.
    pub fn new(capacity_blocks: usize) -> Self {
        // ~4/5 protected is the classic SLRU split: enough probation room
        // to observe second touches, most of the budget for the proven
        // working set.
        Self::with_policy(capacity_blocks, capacity_blocks * 4 / 5, true)
    }

    /// A strict-LRU cache — no segmentation, no admission filter; every
    /// loaded block is cached and the coldest resident is always the
    /// victim. This is the pre-v2 behaviour, kept for comparison: the
    /// scan-resistance benchmarks measure the default policy against it.
    pub fn strict_lru(capacity_blocks: usize) -> Self {
        Self::with_policy(capacity_blocks, 0, false)
    }

    fn with_policy(capacity_blocks: usize, protected_cap: usize, tiny_lfu: bool) -> Self {
        BlockCache {
            capacity: capacity_blocks,
            protected_cap,
            state: Mutex::new(CacheState {
                blocks: FxHashMap::default(),
                probation: BTreeMap::new(),
                protected: BTreeMap::new(),
                protected_members: 0,
                sketch: (tiny_lfu && capacity_blocks > 0)
                    .then(|| FrequencySketch::new(capacity_blocks)),
                next_tick: 0,
                in_flight: FxHashMap::default(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
        }
    }

    /// Maximum number of resident blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registers this cache's counters with `telemetry` as a pull
    /// collector: every [`TelemetrySnapshot`](garlic_telemetry::TelemetrySnapshot)
    /// includes `<prefix>.hits`, `.misses`, `.evictions`, `.admitted`,
    /// `.rejected`, `.retired` (counters) and `.resident`, `.capacity`
    /// (gauges), read from the same atomics [`BlockCache::stats`] reads.
    /// Pull-based, so the cache's hot path pays nothing for being
    /// observable; the collector holds a `Weak` handle and goes quiet when
    /// the cache is dropped.
    pub fn register_telemetry(self: &Arc<Self>, telemetry: &Telemetry, prefix: &str) {
        let weak = Arc::downgrade(self);
        let prefix = prefix.to_string();
        telemetry.register_collector(move |out| {
            let Some(cache) = weak.upgrade() else { return };
            let stats = cache.stats();
            for (name, value) in [
                ("hits", stats.hits),
                ("misses", stats.misses),
                ("evictions", stats.evictions),
                ("admitted", stats.admitted),
                ("rejected", stats.rejected),
                ("retired", stats.retired),
            ] {
                out.push(MetricEntry {
                    name: format!("{prefix}.{name}"),
                    value: MetricValue::Counter(value),
                });
            }
            for (name, value) in [("resident", stats.resident), ("capacity", stats.capacity)] {
                out.push(MetricEntry {
                    name: format!("{prefix}.{name}"),
                    value: MetricValue::Gauge(value as i64),
                });
            }
        });
    }

    /// Counter snapshot — all atomics, no lock taken (see the type docs).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            retired: self.retired.load(Ordering::Relaxed),
            resident: self.resident.load(Ordering::Relaxed),
            capacity: self.capacity,
        }
    }

    /// Drops every resident block and resets the admission state — the
    /// frequency sketch, segment membership, and the admitted/rejected
    /// counters — in one critical section, so no concurrent request can
    /// observe cleared residency with pre-clear admission history.
    /// Request counters (hits/misses/evictions) are preserved. Turns a
    /// warm cache cold — for tests and cold-path benchmarks.
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("cache lock");
        state.blocks.clear();
        state.probation.clear();
        state.protected.clear();
        state.protected_members = 0;
        if let Some(sketch) = &mut state.sketch {
            *sketch = FrequencySketch::new(self.capacity);
        }
        // Stored while the state lock pins every writer of these counters
        // (admission decisions happen under the lock), making the combined
        // reset atomic.
        self.admitted.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.resident.store(0, Ordering::Relaxed);
    }

    /// Drops every resident block belonging to `segment` — the targeted
    /// invalidation compaction uses when it replaces a segment: the
    /// retired segment's dead blocks stop occupying residency *without*
    /// punishing the survivors. Blocks of every other segment keep their
    /// residency, recency, and protected status; the frequency sketch and
    /// all request/admission counters (hits, misses, evictions, admitted,
    /// rejected) are preserved, so the cache's learned history outlives
    /// the swap. The retired keys' index entries go stale and are
    /// discarded by the same lazy repair that serves hits.
    pub fn retire(&self, segment: u64) {
        let mut state = self.state.lock().expect("cache lock");
        let mut demoted = 0usize;
        let before = state.blocks.len();
        state.blocks.retain(|key, block| {
            let keep = key.segment != segment;
            if !keep && block.protected {
                demoted += 1;
            }
            keep
        });
        self.retired
            .fetch_add((before - state.blocks.len()) as u64, Ordering::Relaxed);
        state.protected_members -= demoted;
        // Stored under the state lock, like `clear`, so residency and the
        // block table never disagree for an observer.
        self.resident.store(state.blocks.len(), Ordering::Relaxed);
    }

    /// Looks `key` up, calling `load` on a miss. The lock is **not** held
    /// across `load`, so concurrent misses on *different* blocks read the
    /// file in parallel — but misses on the *same* block **single-flight**:
    /// exactly one caller (the leader) reads the file and bills one miss;
    /// every racer waits on the leader's [`Flight`] and is billed a hit,
    /// because it was served from memory. If the leader's read fails (or
    /// unwinds), waiters retry and the next one in leads.
    ///
    /// Capacity 0 disables residency *and* deduplication: the documented
    /// cold-cache contract is that every request reads the file, which is
    /// what the cold-path benchmarks measure.
    pub(crate) fn get_or_load(
        &self,
        key: BlockKey,
        load: impl FnOnce() -> Result<Arc<[u8]>, StorageError>,
    ) -> Result<Arc<[u8]>, StorageError> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return load();
        }
        // The leader consumes `load` at most once across loop iterations
        // (a failed follower may loop back and *become* the leader).
        let mut load = Some(load);
        loop {
            let role = {
                let mut state = self.state.lock().expect("cache lock");
                if let Some(bytes) = state.touch(key, self.protected_cap) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(bytes);
                }
                match state.in_flight.get(&key) {
                    Some(flight) => Role::Follower(Arc::clone(flight)),
                    None => {
                        let flight = Arc::new(Flight::new());
                        state.in_flight.insert(key, Arc::clone(&flight));
                        Role::Leader(flight)
                    }
                }
            };
            match role {
                Role::Leader(flight) => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    // The guard keeps a panicking `load` from stranding
                    // followers: on unwind it marks the flight failed so
                    // they retry instead of waiting forever.
                    let guard = FlightGuard {
                        cache: self,
                        key,
                        flight: &flight,
                        armed: true,
                    };
                    let result = (load.take().expect("the leader loads at most once"))();
                    guard.publish(&result);
                    return result;
                }
                Role::Follower(flight) => {
                    if let Some(bytes) = flight.wait() {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(bytes);
                    }
                    // Leader failed: loop and contend for leadership.
                }
            }
        }
    }
}

/// What a miss turned into once the single-flight table was consulted.
enum Role {
    /// First miss on the key: this caller reads the file.
    Leader(Arc<Flight>),
    /// A read is already in flight: this caller waits for it.
    Follower(Arc<Flight>),
}

/// Completion/unwind guard for a single-flight leader: guarantees the
/// in-flight entry is removed and the flight completed exactly once, even
/// if the load panics mid-read.
struct FlightGuard<'a> {
    cache: &'a BlockCache,
    key: BlockKey,
    flight: &'a Arc<Flight>,
    armed: bool,
}

impl FlightGuard<'_> {
    /// Publishes the leader's result: caches the bytes on success, then
    /// wakes every follower with the outcome.
    fn publish(mut self, result: &Result<Arc<[u8]>, StorageError>) {
        self.armed = false;
        let mut state = self.cache.state.lock().expect("cache lock");
        state.in_flight.remove(&self.key);
        match result {
            Ok(bytes) => {
                if state.touch(self.key, self.cache.protected_cap).is_none() {
                    let outcome = state.insert(self.key, Arc::clone(bytes), self.cache.capacity);
                    self.cache
                        .evictions
                        .fetch_add(outcome.evicted, Ordering::Relaxed);
                    if outcome.rejected {
                        self.cache.rejected.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.cache.admitted.fetch_add(1, Ordering::Relaxed);
                    }
                    self.cache
                        .resident
                        .store(state.blocks.len(), Ordering::Relaxed);
                }
                drop(state);
                self.flight.complete(FlightState::Done(Arc::clone(bytes)));
            }
            Err(_) => {
                drop(state);
                self.flight.complete(FlightState::Failed);
            }
        }
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // The leader unwound without publishing: fail the flight so
        // followers retry rather than wait forever.
        let mut state = self.cache.state.lock().expect("cache lock");
        state.in_flight.remove(&self.key);
        drop(state);
        self.flight.complete(FlightState::Failed);
    }
}

/// What [`CacheState::insert`] did with the loaded block.
struct InsertOutcome {
    /// Resident blocks dropped to make room.
    evicted: u64,
    /// True when the admission filter turned the block away (nothing was
    /// inserted and nothing evicted).
    rejected: bool,
}

impl CacheState {
    /// Returns the resident block, refreshes its recency stamp, and
    /// records the request in the frequency sketch — the warm hot path:
    /// one hash lookup, a tick store, and four sketch increments. A first
    /// re-touch also promotes the block to the protected segment (once
    /// per residency, demoting the protected LRU if the segment
    /// overflows). The block's old index entry goes stale; eviction
    /// repairs it lazily.
    fn touch(&mut self, key: BlockKey, protected_cap: usize) -> Option<Arc<[u8]>> {
        if !self.blocks.contains_key(&key) {
            return None;
        }
        if let Some(sketch) = &mut self.sketch {
            sketch.record(key);
        }
        let slot = self.blocks.get_mut(&key).expect("checked above");
        slot.tick = self.next_tick;
        self.next_tick += 1;
        let bytes = Arc::clone(&slot.bytes);
        if !slot.protected && protected_cap > 0 {
            slot.protected = true;
            let tick = slot.tick;
            self.protected.insert(tick, key);
            self.protected_members += 1;
            if self.protected_members > protected_cap {
                self.demote_protected_lru();
            }
        }
        Some(bytes)
    }

    /// Pops the live least-recently-used entry of one segment index,
    /// repairing stale entries (re-file under the block's current tick)
    /// and discarding orphans (blocks evicted or moved to the other
    /// segment) along the way. Returns `None` when the index holds no
    /// live entries. The returned key's index entry has been removed —
    /// the caller either evicts/demotes the block or re-files the entry.
    fn pop_lru(&mut self, from_protected: bool) -> Option<BlockKey> {
        loop {
            let index = if from_protected {
                &mut self.protected
            } else {
                &mut self.probation
            };
            let (&oldest, &candidate) = index.iter().next()?;
            index.remove(&oldest);
            match self.blocks.get(&candidate) {
                None => continue,
                Some(block) if block.protected != from_protected => continue,
                Some(block) if block.tick != oldest => {
                    // Stale: re-file under the current stamp and keep
                    // looking — prepaid by the touch that staled it. The
                    // current tick is always newer than the popped one, so
                    // the scan makes strict forward progress.
                    let (tick, key) = (block.tick, candidate);
                    if from_protected {
                        self.protected.insert(tick, key);
                    } else {
                        self.probation.insert(tick, key);
                    }
                }
                Some(_) => return Some(candidate),
            }
        }
    }

    /// Moves the protected LRU back to probation (as its most recent
    /// entry) when the protected segment outgrows its target.
    fn demote_protected_lru(&mut self) {
        if let Some(key) = self.pop_lru(true) {
            let block = self.blocks.get_mut(&key).expect("popped key is resident");
            block.protected = false;
            block.tick = self.next_tick;
            self.next_tick += 1;
            self.probation.insert(block.tick, key);
            self.protected_members -= 1;
        }
    }

    /// Evicts exactly one block: the probation LRU when probation has any
    /// live member, else the protected LRU.
    fn evict_one(&mut self) -> bool {
        let Some(victim) = self.pop_lru(false).or_else(|| self.pop_lru(true)) else {
            return false;
        };
        let block = self.blocks.remove(&victim).expect("popped key is resident");
        if block.protected {
            self.protected_members -= 1;
        }
        true
    }

    /// Inserts a loaded block (on probation), evicting down to `capacity`
    /// — unless the TinyLFU filter is active and the block loses the
    /// frequency duel against the would-be victim, in which case nothing
    /// changes and the block is only handed to the caller.
    fn insert(&mut self, key: BlockKey, bytes: Arc<[u8]>, capacity: usize) -> InsertOutcome {
        if let Some(sketch) = &mut self.sketch {
            sketch.record(key);
            if self.blocks.len() >= capacity {
                if let Some(victim) = self.pop_lru(false).or_else(|| self.pop_lru(true)) {
                    let sketch = self.sketch.as_ref().expect("checked above");
                    if sketch.estimate(key) < sketch.estimate(victim) {
                        // The victim has the warmer history: keep it (its
                        // index entry goes back untouched — it was live)
                        // and turn the newcomer away.
                        let block = &self.blocks[&victim];
                        let (tick, protected) = (block.tick, block.protected);
                        if protected {
                            self.protected.insert(tick, victim);
                        } else {
                            self.probation.insert(tick, victim);
                        }
                        return InsertOutcome {
                            evicted: 0,
                            rejected: true,
                        };
                    }
                    let block = self.blocks.remove(&victim).expect("popped key is resident");
                    if block.protected {
                        self.protected_members -= 1;
                    }
                    let mut outcome = self.insert_unchecked(key, bytes, capacity);
                    outcome.evicted += 1;
                    return outcome;
                }
            }
        }
        self.insert_unchecked(key, bytes, capacity)
    }

    /// The unconditional tail of an admission: make the block resident on
    /// probation and trim to `capacity`.
    fn insert_unchecked(
        &mut self,
        key: BlockKey,
        bytes: Arc<[u8]>,
        capacity: usize,
    ) -> InsertOutcome {
        let tick = self.next_tick;
        self.next_tick += 1;
        self.blocks.insert(
            key,
            CachedBlock {
                bytes,
                tick,
                protected: false,
            },
        );
        self.probation.insert(tick, key);
        let mut evicted = 0;
        while self.blocks.len() > capacity {
            assert!(self.evict_one(), "a full cache always has a victim");
            evicted += 1;
        }
        InsertOutcome {
            evicted,
            rejected: false,
        }
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(block: u64) -> BlockKey {
        BlockKey { segment: 1, block }
    }

    fn bytes(fill: u8) -> Arc<[u8]> {
        Arc::from(vec![fill; 8].into_boxed_slice())
    }

    #[test]
    fn hit_after_miss() {
        let cache = BlockCache::new(4);
        let a = cache.get_or_load(key(0), || Ok(bytes(7))).unwrap();
        let b = cache
            .get_or_load(key(0), || panic!("must not reload"))
            .unwrap();
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_block() {
        let cache = BlockCache::new(2);
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        cache.get_or_load(key(1), || Ok(bytes(1))).unwrap();
        // Touch block 0 so block 1 is now the coldest.
        cache.get_or_load(key(0), || panic!("hit")).unwrap();
        cache.get_or_load(key(2), || Ok(bytes(2))).unwrap();
        // Block 1 was evicted; block 0 survived.
        cache.get_or_load(key(0), || panic!("hit")).unwrap();
        let reloaded = std::cell::Cell::new(false);
        cache
            .get_or_load(key(1), || {
                reloaded.set(true);
                Ok(bytes(1))
            })
            .unwrap();
        assert!(reloaded.get(), "evicted block must reload");
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn capacity_zero_never_retains() {
        let cache = BlockCache::new(0);
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (0, 2, 0));
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = BlockCache::new(4);
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        cache.clear();
        assert_eq!(cache.stats().resident, 0);
        assert_eq!(cache.stats().misses, 1);
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        assert_eq!(cache.stats().misses, 2, "cleared block reloads");
    }

    #[test]
    fn retire_drops_one_segment_and_spares_the_hot_set() {
        let seg = |segment: u64, block: u64| BlockKey { segment, block };
        let cache = BlockCache::new(8);
        // A hot set on segment 1 (each block touched twice, so some are
        // protected) interleaved with segment 2 residents.
        for block in 0..3 {
            cache.get_or_load(seg(1, block), || Ok(bytes(1))).unwrap();
            cache.get_or_load(seg(1, block), || panic!("hit")).unwrap();
            cache.get_or_load(seg(2, block), || Ok(bytes(2))).unwrap();
        }
        let before = cache.stats();
        assert_eq!(before.resident, 6);

        cache.retire(2);

        // Residency shrinks by exactly the retired segment's blocks; the
        // request and admission history survives untouched.
        let after = cache.stats();
        assert_eq!(after.resident, 3);
        assert_eq!((after.hits, after.misses), (before.hits, before.misses));
        assert_eq!(after.admitted, before.admitted);
        assert_eq!(after.rejected, before.rejected);
        // The surviving hot set still hits without reloading...
        for block in 0..3 {
            cache.get_or_load(seg(1, block), || panic!("hit")).unwrap();
        }
        // ...and the retired blocks genuinely reload.
        for block in 0..3 {
            let reloaded = std::cell::Cell::new(false);
            cache
                .get_or_load(seg(2, block), || {
                    reloaded.set(true);
                    Ok(bytes(2))
                })
                .unwrap();
            assert!(reloaded.get(), "retired block must reload");
        }
        assert_eq!(cache.stats().resident, 6);
    }

    #[test]
    fn retire_of_protected_blocks_keeps_the_ledger_consistent() {
        let seg = |segment: u64, block: u64| BlockKey { segment, block };
        let cache = BlockCache::new(8);
        // Promote segment 2's blocks to protected, then retire them: the
        // protected-member count must follow, or later promotions would
        // demote survivors against a phantom population.
        for block in 0..2 {
            cache.get_or_load(seg(2, block), || Ok(bytes(2))).unwrap();
            cache.get_or_load(seg(2, block), || panic!("hit")).unwrap();
        }
        cache.retire(2);
        assert_eq!(cache.stats().resident, 0);
        // The cache keeps working: fill and promote a fresh hot set.
        for block in 0..4 {
            cache.get_or_load(seg(1, block), || Ok(bytes(1))).unwrap();
            cache.get_or_load(seg(1, block), || panic!("hit")).unwrap();
        }
        for block in 0..4 {
            cache.get_or_load(seg(1, block), || panic!("hit")).unwrap();
        }
        assert_eq!(cache.stats().resident, 4);
    }

    #[test]
    fn load_errors_propagate_and_cache_nothing() {
        let cache = BlockCache::new(4);
        let err = cache.get_or_load(key(0), || Err(StorageError::BadMagic));
        assert!(matches!(err, Err(StorageError::BadMagic)));
        assert_eq!(cache.stats().resident, 0);
    }

    #[test]
    fn distinct_segments_do_not_collide() {
        let cache = BlockCache::new(4);
        cache
            .get_or_load(
                BlockKey {
                    segment: 1,
                    block: 0,
                },
                || Ok(bytes(1)),
            )
            .unwrap();
        let other = cache
            .get_or_load(
                BlockKey {
                    segment: 2,
                    block: 0,
                },
                || Ok(bytes(2)),
            )
            .unwrap();
        assert_eq!(other[0], 2);
        assert_eq!(cache.stats().resident, 2);
    }

    #[test]
    fn concurrent_readers_share_blocks() {
        let cache = Arc::new(BlockCache::new(8));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for b in 0..8 {
                        let got = cache.get_or_load(key(b), || Ok(bytes(b as u8))).unwrap();
                        assert_eq!(got[0], b as u8);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 32);
        assert_eq!(stats.misses, 8, "single-flight: each block loaded once");
        assert_eq!(stats.resident, 8);
        assert!(format!("{stats}").contains("hit rate"));
    }

    #[test]
    fn racing_misses_on_one_cold_block_single_flight() {
        // Regression: the lock is dropped across file reads, so before the
        // in-flight table, 8 threads missing the same cold block would all
        // read and decode it — duplicate I/O and 8 counted misses. Now the
        // leader loads once; everyone else waits and is billed a hit.
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;
        let cache = Arc::new(BlockCache::new(4));
        let loads = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    let got = cache
                        .get_or_load(key(0), || {
                            loads.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough that the
                            // racers genuinely overlap the read.
                            std::thread::sleep(std::time::Duration::from_millis(25));
                            Ok(bytes(42))
                        })
                        .unwrap();
                    assert_eq!(got[0], 42);
                });
            }
        });
        assert_eq!(loads.load(Ordering::SeqCst), 1, "exactly one file read");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one miss");
        assert_eq!(stats.hits, 7, "every racer was served from memory");
        assert_eq!(stats.resident, 1);
    }

    #[test]
    fn failed_leader_wakes_followers_and_the_next_caller_retries() {
        use std::sync::Barrier;
        let cache = Arc::new(BlockCache::new(4));
        let barrier = Barrier::new(4);
        // Every racer's load fails: all must get an error (no deadlock,
        // no stranded in-flight entry).
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    barrier.wait();
                    let result = cache.get_or_load(key(0), || {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        Err(StorageError::BadMagic)
                    });
                    assert!(result.is_err());
                });
            }
        });
        assert_eq!(cache.stats().resident, 0);
        // The key is not stuck in flight: a fresh call loads and caches.
        let got = cache.get_or_load(key(0), || Ok(bytes(7))).unwrap();
        assert_eq!(got[0], 7);
        assert_eq!(cache.stats().resident, 1);
    }

    #[test]
    fn second_touch_promotes_and_scans_cannot_evict_the_protected_set() {
        // Hot set: blocks 0..4, each touched twice (resident + protected).
        // Then a one-touch scan of 100 cold blocks floods past. Under
        // strict LRU the hot set would be annihilated; under SLRU +
        // TinyLFU every hot block must still be resident.
        let cache = BlockCache::new(8);
        for round in 0..2 {
            for b in 0..4 {
                let loaded = std::cell::Cell::new(false);
                cache
                    .get_or_load(key(b), || {
                        loaded.set(true);
                        Ok(bytes(b as u8))
                    })
                    .unwrap();
                assert_eq!(loaded.get(), round == 0);
            }
        }
        for b in 100..200 {
            cache.get_or_load(key(b), || Ok(bytes(0))).unwrap();
        }
        for b in 0..4 {
            cache
                .get_or_load(key(b), || panic!("hot block {b} was evicted by the scan"))
                .unwrap();
        }
    }

    #[test]
    fn strict_lru_is_not_scan_resistant() {
        // The comparison cache keeps the old failure mode on purpose.
        let cache = BlockCache::strict_lru(8);
        for _ in 0..2 {
            for b in 0..4 {
                cache.get_or_load(key(b), || Ok(bytes(b as u8))).unwrap();
            }
        }
        for b in 100..200 {
            cache.get_or_load(key(b), || Ok(bytes(0))).unwrap();
        }
        let reloaded = std::cell::Cell::new(0);
        for b in 0..4 {
            cache
                .get_or_load(key(b), || {
                    reloaded.set(reloaded.get() + 1);
                    Ok(bytes(b as u8))
                })
                .unwrap();
        }
        assert_eq!(reloaded.get(), 4, "strict LRU loses the whole hot set");
        assert_eq!(cache.stats().rejected, 0, "strict LRU never rejects");
    }

    #[test]
    fn clear_resets_admission_state_but_keeps_request_counters() {
        let cache = BlockCache::new(2);
        for b in 0..8 {
            cache.get_or_load(key(b), || Ok(bytes(b as u8))).unwrap();
        }
        let before = cache.stats();
        assert_eq!(
            before.admitted + before.rejected,
            8,
            "every load is an admission decision: {before}"
        );
        cache.clear();
        let after = cache.stats();
        assert_eq!((after.admitted, after.rejected, after.resident), (0, 0, 0));
        assert_eq!(after.misses, before.misses, "request history survives");
        assert_eq!(after.hits, before.hits);
        // The sketch was reset too: a fresh insert duel starts from zero
        // history, so the first loads after clear are all admitted.
        for b in 100..102 {
            cache.get_or_load(key(b), || Ok(bytes(0))).unwrap();
        }
        assert_eq!(cache.stats().admitted, 2);
        assert_eq!(cache.stats().resident, 2);
    }

    #[test]
    fn rejected_blocks_are_still_served_and_reload_next_time() {
        // Make block 0 frequent, fill the cache, then request a brand-new
        // block repeatedly: while its frequency trails the victims', it is
        // served but not cached (every request loads).
        let cache = BlockCache::new(1);
        for _ in 0..6 {
            cache.get_or_load(key(0), || Ok(bytes(7))).unwrap();
        }
        let loads = std::cell::Cell::new(0);
        for _ in 0..2 {
            let got = cache
                .get_or_load(key(1), || {
                    loads.set(loads.get() + 1);
                    Ok(bytes(9))
                })
                .unwrap();
            assert_eq!(got[0], 9, "rejected blocks still serve their bytes");
        }
        assert_eq!(loads.get(), 2, "a rejected block is not resident");
        let stats = cache.stats();
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.evictions, 0, "the incumbent was never displaced");
        cache.get_or_load(key(0), || panic!("hit")).unwrap();
    }

    #[test]
    fn capacity_zero_does_not_single_flight() {
        // The cold-bench contract: with no residency, every request reads
        // the file — racing requests included.
        use std::sync::Barrier;
        let cache = Arc::new(BlockCache::new(0));
        let barrier = Barrier::new(4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    barrier.wait();
                    cache.get_or_load(key(0), || Ok(bytes(1))).unwrap();
                });
            }
        });
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (0, 4, 0));
    }
}
