//! The shared LRU block cache.
//!
//! Disk-backed sources decouple corpus size from RAM only if hot blocks
//! stay resident; [`BlockCache`] is the one RAM budget every
//! [`crate::SegmentSource`] draws from. It is `Send + Sync` and meant to
//! be shared as an `Arc` — one cache per process (or per `DiskSubsystem`)
//! serving every open segment, so the working sets of many attributes
//! compete for the same fixed number of block slots instead of each
//! segment hoarding its own.
//!
//! Blocks are immutable (segments never change after publish), so the
//! cache needs no invalidation protocol: a cached block is correct
//! forever, and concurrent readers share one `Arc<[u8]>` per block.
//! Capacity is counted in blocks; hits, misses, and evictions are metered
//! with atomic counters and surfaced through [`BlockCache::stats`] the same
//! way the Section 5 access counters are — operators tune cache size by
//! watching the hit rate, not by guessing.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::StorageError;

/// Identifies one block of one open segment. Segment ids are assigned from
/// a process-wide counter at open time, so any number of segments can share
/// one cache without key collisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BlockKey {
    /// The opened segment's unique id.
    pub segment: u64,
    /// The file-wide block number within that segment.
    pub block: u64,
}

struct CachedBlock {
    bytes: Arc<[u8]>,
    /// The recency tick under which this block is indexed in `recency`.
    tick: u64,
}

struct CacheState {
    blocks: HashMap<BlockKey, CachedBlock>,
    /// Recency index: tick → key, oldest first. Ticks are unique, so this
    /// is a strict LRU order.
    recency: BTreeMap<u64, BlockKey>,
    next_tick: u64,
}

/// A snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Block requests served from memory.
    pub hits: u64,
    /// Block requests that had to read the file.
    pub misses: u64,
    /// Blocks dropped to make room.
    pub evictions: u64,
    /// Blocks currently resident.
    pub resident: usize,
    /// Maximum resident blocks.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of requests served from memory (0 when nothing was asked).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} blocks resident, {} hits / {} misses ({:.1}% hit rate), {} evictions",
            self.resident,
            self.capacity,
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.evictions
        )
    }
}

/// A shared, thread-safe LRU cache over segment blocks.
pub struct BlockCache {
    capacity: usize,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BlockCache {
    /// A cache holding at most `capacity_blocks` blocks (at the default
    /// 4 KiB block size, `capacity_blocks = 1024` is a 4 MiB budget).
    /// Capacity 0 disables residency: every request is a miss, which is
    /// how the cold-cache benchmarks run.
    pub fn new(capacity_blocks: usize) -> Self {
        BlockCache {
            capacity: capacity_blocks,
            state: Mutex::new(CacheState {
                blocks: HashMap::new(),
                recency: BTreeMap::new(),
                next_tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of resident blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let resident = self.state.lock().expect("cache lock").blocks.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident,
            capacity: self.capacity,
        }
    }

    /// Drops every resident block (counters are preserved). Turns a warm
    /// cache cold — for tests and cold-path benchmarks.
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("cache lock");
        state.blocks.clear();
        state.recency.clear();
    }

    /// Looks `key` up, calling `load` on a miss. The lock is **not** held
    /// across `load`, so concurrent misses on different blocks read the
    /// file in parallel; racing misses on the same block may both load, and
    /// the first insert wins.
    pub(crate) fn get_or_load(
        &self,
        key: BlockKey,
        load: impl FnOnce() -> Result<Arc<[u8]>, StorageError>,
    ) -> Result<Arc<[u8]>, StorageError> {
        {
            let mut state = self.state.lock().expect("cache lock");
            if let Some(bytes) = state.touch(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(bytes);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let bytes = load()?;
        if self.capacity > 0 {
            let mut state = self.state.lock().expect("cache lock");
            if state.touch(key).is_none() {
                let evicted = state.insert(key, Arc::clone(&bytes), self.capacity);
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
        Ok(bytes)
    }
}

impl CacheState {
    /// Returns the resident block and refreshes its recency.
    fn touch(&mut self, key: BlockKey) -> Option<Arc<[u8]>> {
        let slot = self.blocks.get_mut(&key)?;
        let old_tick = slot.tick;
        slot.tick = self.next_tick;
        let bytes = Arc::clone(&slot.bytes);
        self.recency.remove(&old_tick);
        self.recency.insert(self.next_tick, key);
        self.next_tick += 1;
        Some(bytes)
    }

    /// Inserts a block, evicting least-recently-used blocks down to
    /// `capacity`. Returns how many were evicted.
    fn insert(&mut self, key: BlockKey, bytes: Arc<[u8]>, capacity: usize) -> u64 {
        let tick = self.next_tick;
        self.next_tick += 1;
        self.blocks.insert(key, CachedBlock { bytes, tick });
        self.recency.insert(tick, key);
        let mut evicted = 0;
        while self.blocks.len() > capacity {
            let (&oldest, &victim) = self.recency.iter().next().expect("recency tracks blocks");
            self.recency.remove(&oldest);
            self.blocks.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(block: u64) -> BlockKey {
        BlockKey { segment: 1, block }
    }

    fn bytes(fill: u8) -> Arc<[u8]> {
        Arc::from(vec![fill; 8].into_boxed_slice())
    }

    #[test]
    fn hit_after_miss() {
        let cache = BlockCache::new(4);
        let a = cache.get_or_load(key(0), || Ok(bytes(7))).unwrap();
        let b = cache
            .get_or_load(key(0), || panic!("must not reload"))
            .unwrap();
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_block() {
        let cache = BlockCache::new(2);
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        cache.get_or_load(key(1), || Ok(bytes(1))).unwrap();
        // Touch block 0 so block 1 is now the coldest.
        cache.get_or_load(key(0), || panic!("hit")).unwrap();
        cache.get_or_load(key(2), || Ok(bytes(2))).unwrap();
        // Block 1 was evicted; block 0 survived.
        cache.get_or_load(key(0), || panic!("hit")).unwrap();
        let reloaded = std::cell::Cell::new(false);
        cache
            .get_or_load(key(1), || {
                reloaded.set(true);
                Ok(bytes(1))
            })
            .unwrap();
        assert!(reloaded.get(), "evicted block must reload");
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn capacity_zero_never_retains() {
        let cache = BlockCache::new(0);
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (0, 2, 0));
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = BlockCache::new(4);
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        cache.clear();
        assert_eq!(cache.stats().resident, 0);
        assert_eq!(cache.stats().misses, 1);
        cache.get_or_load(key(0), || Ok(bytes(0))).unwrap();
        assert_eq!(cache.stats().misses, 2, "cleared block reloads");
    }

    #[test]
    fn load_errors_propagate_and_cache_nothing() {
        let cache = BlockCache::new(4);
        let err = cache.get_or_load(key(0), || Err(StorageError::BadMagic));
        assert!(matches!(err, Err(StorageError::BadMagic)));
        assert_eq!(cache.stats().resident, 0);
    }

    #[test]
    fn distinct_segments_do_not_collide() {
        let cache = BlockCache::new(4);
        cache
            .get_or_load(
                BlockKey {
                    segment: 1,
                    block: 0,
                },
                || Ok(bytes(1)),
            )
            .unwrap();
        let other = cache
            .get_or_load(
                BlockKey {
                    segment: 2,
                    block: 0,
                },
                || Ok(bytes(2)),
            )
            .unwrap();
        assert_eq!(other[0], 2);
        assert_eq!(cache.stats().resident, 2);
    }

    #[test]
    fn concurrent_readers_share_blocks() {
        let cache = Arc::new(BlockCache::new(8));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for b in 0..8 {
                        let got = cache.get_or_load(key(b), || Ok(bytes(b as u8))).unwrap();
                        assert_eq!(got[0], b as u8);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 32);
        assert!(stats.misses >= 8, "each block loaded at least once");
        assert_eq!(stats.resident, 8);
        assert!(format!("{stats}").contains("hit rate"));
    }
}
