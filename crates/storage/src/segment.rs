//! Reading segments: [`SegmentSource`], a disk-backed [`GradedSource`].
//!
//! `SegmentSource::open` is where durability is enforced: it parses the
//! header, dispatches on the format version (v1 fixed-slot or v2
//! compressed — see [`crate::format`]), then makes one streaming pass
//! over the whole file verifying every block checksum, every grade, both
//! sort orders, and (v2) every varint frame and footer fence, so a
//! corrupted or truncated segment fails with a typed [`StorageError`]
//! *before* it can serve a single wrong entry. After a successful open
//! the source is an ordinary `Send + Sync` graded source: sorted access
//! streams data blocks through the shared [`BlockCache`], random access
//! routes through the footer's fence index to exactly one table block,
//! and `SetAccess` enumerates the grade-1 prefix — bit-identical
//! behaviour to a [`MemorySource`] over the same pairs, in either
//! version (the round-trip property suite holds it to that).
//!
//! On v2 segments the per-block grade fences additionally power
//! [`GradedSource::sorted_batch_bounded`]: a threshold-hinted scan stops
//! *before loading* the first block whose `grade_max` falls below the
//! bound, skipping the cache, the I/O, and the decode for the entire
//! remaining region.
//!
//! [`MemorySource`]: garlic_core::access::MemorySource

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use garlic_agg::Grade;
use garlic_core::access::{BoundedBatch, GradedSource, SetAccess, SourceError};
use garlic_core::{GradedEntry, ObjectId};

use crate::cache::{BlockCache, BlockKey};
use crate::error::StorageError;
use crate::format::{
    decode_block_v2, decode_raw, encode_entry, fnv1a64, read_u64, walk_block_v2, Footer, FooterV2,
    RegionKind, ENTRY_LEN, FLAG_CRISP, FLAG_GRADE_DICT, FORMAT_V1, FORMAT_VERSION, HEADER_LEN,
    HEADER_MAGIC, TRAILER_LEN, TRAILER_MAGIC,
};
use crate::vfs::{std_vfs, Vfs, VfsRead};

/// Process-wide id well for opened segments, so any number of segments can
/// share one [`BlockCache`] without key collisions.
static NEXT_SEGMENT_ID: AtomicU64 = AtomicU64::new(0);

/// How a [`SegmentSource`] reacts to a failing block read: how many
/// attempts before giving up, and how the exponential backoff between
/// them is shaped. The delay before attempt `n + 1` is
/// `min(base_delay_us << n, max_delay_us)` plus a deterministic jitter of
/// up to half that value, so retrying readers of one struggling disk do
/// not stampede in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per block read, the first included. `1` disables
    /// retries.
    pub attempts: u32,
    /// Backoff before the first retry, in microseconds.
    pub base_delay_us: u64,
    /// Backoff ceiling, in microseconds.
    pub max_delay_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay_us: 100,
            max_delay_us: 5_000,
        }
    }
}

/// An immutable on-disk graded list, verified at open, read through a
/// shared block cache.
///
/// # Runtime failures
///
/// `open` verifies the entire file, so a file that is left alone never
/// fails afterwards. If the *medium* fails later (dying disk, segment
/// deleted or rewritten underneath the source), the fallible
/// [`GradedSource::try_sorted_batch`]-family methods retry transiently
/// failing block loads per the [`RetryPolicy`], then — once the budget is
/// exhausted — **quarantine** the source: the failure surfaces as a typed
/// [`SourceError`] with `quarantined` set and every later read fails fast
/// with [`StorageError::Quarantined`]. Only the legacy *infallible* trait
/// methods still panic on such a failure, and nothing in the query
/// execution path uses them against disk-backed sources.
pub struct SegmentSource {
    file: Box<dyn VfsRead>,
    path: PathBuf,
    cache: Arc<BlockCache>,
    segment_id: u64,
    version: u32,
    /// See [`RetryPolicy`]; applied inside the cache's single-flight load,
    /// so concurrent readers of one failing block share one retry loop.
    retry: RetryPolicy,
    /// Transiently failed block reads that a retry then served.
    io_retries: AtomicU64,
    /// Block reads that exhausted the whole retry budget.
    io_gave_up: AtomicU64,
    /// Set once a block read exhausts its retry budget; every later read
    /// fails fast with [`StorageError::Quarantined`].
    poisoned: AtomicBool,
    /// xorshift state feeding the backoff jitter.
    jitter: AtomicU64,
    /// Data blocks decoded by threshold-hinted scans.
    fence_loaded: AtomicU64,
    /// Data blocks a threshold-hinted scan proved irrelevant and never
    /// loaded (grade fence below the bound, or past a decoded block that
    /// ended below it).
    fence_skipped: AtomicU64,
    footer: Footer,
    /// Present for v2 segments: block addressing, grade dictionary, and
    /// the data-region skip fences. `None` means the fixed-slot v1 layout.
    layout: Option<V2Layout>,
    entries_per_block: usize,
    max_object: Option<ObjectId>,
}

/// Cumulative block outcomes of a segment's threshold-hinted scans — see
/// [`SegmentSource::fence_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FenceStats {
    /// Data blocks decoded by bounded scans.
    pub blocks_loaded: u64,
    /// Data blocks bounded scans proved irrelevant before loading them.
    pub blocks_skipped: u64,
}

impl FenceStats {
    /// Fraction of fence-checked blocks the scans never had to load
    /// (0 when no bounded scan ran).
    pub fn skip_rate(&self) -> f64 {
        let total = self.blocks_loaded + self.blocks_skipped;
        if total == 0 {
            0.0
        } else {
            self.blocks_skipped as f64 / total as f64
        }
    }
}

/// The extra reader state a v2 segment carries beyond the shared footer
/// geometry.
struct V2Layout {
    /// `(absolute file offset, encoded byte length)` of every file-wide
    /// block, data region first then table region — v2 blocks are
    /// variable-length, so offsets are prefix sums of the footer's
    /// per-block lengths.
    locs: Vec<(u64, u32)>,
    /// The sorted grade-bit dictionary (dictionary mode), else `None`
    /// (per-block bit-delta mode).
    dict: Option<Vec<u64>>,
    /// Each data block's greatest grade — the fence consulted before a
    /// threshold-hinted scan loads the block.
    grade_max: Vec<Grade>,
}

impl SegmentSource {
    /// Opens and fully verifies the segment at `path` on the real
    /// filesystem; see [`open_with`](Self::open_with).
    pub fn open(path: impl AsRef<Path>, cache: Arc<BlockCache>) -> Result<Self, StorageError> {
        Self::open_with(path, cache, &std_vfs())
    }

    /// Opens and fully verifies the segment at `path` through `vfs`,
    /// attaching it to `cache`. The verification pass streams the file
    /// once without populating the cache, so a freshly opened segment is
    /// *cold*.
    pub fn open_with(
        path: impl AsRef<Path>,
        cache: Arc<BlockCache>,
        vfs: &Arc<dyn Vfs>,
    ) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        let file = vfs.open_read(&path)?;
        let file_len = file.len()?;
        if file_len < HEADER_LEN + TRAILER_LEN {
            return Err(StorageError::Truncated {
                expected: HEADER_LEN + TRAILER_LEN,
                actual: file_len,
            });
        }

        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact_at(&mut header, 0)?;
        if header[..4] != HEADER_MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4-byte field"));
        if !(FORMAT_V1..=FORMAT_VERSION).contains(&version) {
            return Err(StorageError::UnsupportedVersion {
                found: version,
                oldest_supported: FORMAT_V1,
                newest_supported: FORMAT_VERSION,
            });
        }

        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.read_exact_at(&mut trailer, file_len - TRAILER_LEN)?;
        if trailer[16..24] != TRAILER_MAGIC {
            return Err(StorageError::FooterCorrupt {
                detail: "trailer magic missing (interrupted or truncated write?)".to_owned(),
            });
        }
        let footer_offset = read_u64(&trailer, 0);
        let footer_len = read_u64(&trailer, 8);
        let expected_len = footer_offset
            .checked_add(footer_len)
            .and_then(|v| v.checked_add(TRAILER_LEN))
            .ok_or_else(|| StorageError::FooterCorrupt {
                detail: "footer offset/length overflow".to_owned(),
            })?;
        if footer_offset < HEADER_LEN || expected_len != file_len {
            return Err(StorageError::Truncated {
                expected: expected_len,
                actual: file_len,
            });
        }

        let mut footer_bytes = vec![0u8; footer_len as usize];
        file.read_exact_at(&mut footer_bytes, footer_offset)?;
        let (footer, layout, stats) = if version == FORMAT_V1 {
            let footer = Footer::parse(&footer_bytes)?;
            // All footer geometry is untrusted until it survives these
            // checks: overflow in a forged footer must be an error, not a
            // wrap/panic.
            let region_end = footer
                .data_blocks
                .checked_add(footer.table_blocks)
                .and_then(|blocks| blocks.checked_mul(footer.block_size as u64))
                .and_then(|bytes| bytes.checked_add(HEADER_LEN))
                .ok_or_else(|| StorageError::FooterCorrupt {
                    detail: "region geometry overflows".to_owned(),
                })?;
            if region_end != footer_offset {
                return Err(StorageError::FooterCorrupt {
                    detail: format!(
                        "blocks end at {region_end} but footer starts at {footer_offset}"
                    ),
                });
            }
            let stats = verify_blocks(file.as_ref(), &footer)?;
            (footer, None, stats)
        } else {
            let v2 = FooterV2::parse(&footer_bytes)?;
            // v2 blocks are variable-length: their file offsets are prefix
            // sums of the footer's (already sanity-bounded) byte lengths,
            // and the regions must end exactly where the footer starts.
            let mut locs =
                Vec::with_capacity((v2.data_blocks + v2.table_blocks).min(1 << 32) as usize);
            let mut offset = HEADER_LEN;
            for &len in v2.data_block_lens.iter().chain(&v2.table_block_lens) {
                locs.push((offset, len as u32));
                offset = offset
                    .checked_add(len)
                    .ok_or_else(|| StorageError::FooterCorrupt {
                        detail: "region geometry overflows".to_owned(),
                    })?;
            }
            if offset != footer_offset {
                return Err(StorageError::FooterCorrupt {
                    detail: format!("blocks end at {offset} but footer starts at {footer_offset}"),
                });
            }
            let stats = verify_blocks_v2(file.as_ref(), &v2)?;
            let layout = V2Layout {
                locs,
                dict: (v2.flags & FLAG_GRADE_DICT != 0).then(|| v2.grade_dict.clone()),
                grade_max: v2
                    .grade_max_bits
                    .iter()
                    .map(|&bits| Grade::clamped(f64::from_bits(bits)))
                    .collect(),
            };
            let footer = Footer {
                flags: v2.flags,
                block_size: v2.block_size,
                num_entries: v2.num_entries,
                ones: v2.ones,
                data_blocks: v2.data_blocks,
                table_blocks: v2.table_blocks,
                data_checksums: v2.data_checksums,
                table_checksums: v2.table_checksums,
                table_first_ids: v2.table_first_ids,
            };
            (footer, Some(layout), stats)
        };

        let segment_id = NEXT_SEGMENT_ID.fetch_add(1, Ordering::Relaxed);
        Ok(SegmentSource {
            file,
            path,
            cache,
            segment_id,
            version,
            retry: RetryPolicy::default(),
            io_retries: AtomicU64::new(0),
            io_gave_up: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            jitter: AtomicU64::new(segment_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            fence_loaded: AtomicU64::new(0),
            fence_skipped: AtomicU64::new(0),
            entries_per_block: footer.block_size / ENTRY_LEN,
            footer,
            layout,
            max_object: stats.max_object,
        })
    }

    /// Replaces the block-read [`RetryPolicy`] (do this before sharing the
    /// source across threads).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The active block-read retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Transiently failed block reads that a retry then served.
    pub fn io_retries(&self) -> u64 {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// Block reads that exhausted the whole retry budget (each also
    /// quarantined the source).
    pub fn io_gave_up(&self) -> u64 {
        self.io_gave_up.load(Ordering::Relaxed)
    }

    /// Whether the source has been quarantined by an exhausted retry
    /// budget — every read now fails fast.
    pub fn is_quarantined(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// The on-disk format version this segment was written in.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The file this source reads.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether every grade is exactly 0 or 1 (recorded by the writer and
    /// re-verified at open) — the segment then supports set access.
    pub fn is_crisp(&self) -> bool {
        self.footer.flags & FLAG_CRISP != 0
    }

    /// Number of grade-1 entries — the exact-match count, free selectivity
    /// information for the planner.
    pub fn exact_match_count(&self) -> u64 {
        self.footer.ones
    }

    /// The largest object id graded (`None` for an empty segment), learned
    /// during the open-time scan. Together with [`len`](GradedSource::len)
    /// and the verified id uniqueness this pins the universe: `len == N`
    /// and `max_object < N` imply the segment grades exactly `0..N`.
    pub fn max_object(&self) -> Option<ObjectId> {
        self.max_object
    }

    /// The smallest object id graded (`None` for an empty segment) — the
    /// first fence of the footer's block index, since the table region is
    /// id-ascending. This is a shard's range fence when segments are
    /// opened as an id-range partition of one logical list.
    pub fn min_object(&self) -> Option<ObjectId> {
        self.footer.table_first_ids.first().map(|&id| ObjectId(id))
    }

    /// The segment's block size in bytes.
    pub fn block_size(&self) -> usize {
        self.footer.block_size
    }

    /// Blocks per region (sorted-order data and object-order table regions
    /// are the same size).
    pub fn blocks_per_region(&self) -> u64 {
        self.footer.data_blocks
    }

    /// The cache this source reads through.
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// Cumulative block outcomes of every threshold-hinted scan
    /// ([`sorted_batch_bounded`](GradedSource::sorted_batch_bounded)) this
    /// source served: blocks decoded vs blocks the grade fence (or a
    /// decoded block ending below the bound) let the scan skip. Plain
    /// relaxed counters, bumped once per *block*, never per entry.
    pub fn fence_stats(&self) -> FenceStats {
        FenceStats {
            blocks_loaded: self.fence_loaded.load(Ordering::Relaxed),
            blocks_skipped: self.fence_skipped.load(Ordering::Relaxed),
        }
    }

    /// This source's process-unique cache namespace: the `segment` half of
    /// every [`BlockKey`](crate::cache::BlockKey) it inserts. Pass it to
    /// [`BlockCache::retire`](crate::BlockCache::retire) once the segment
    /// is replaced (compaction does) so its dead blocks stop occupying
    /// residency.
    pub fn segment_id(&self) -> u64 {
        self.segment_id
    }

    /// Number of entries in block `index` of a region (`blocks` total over
    /// `self.len()` entries): full except possibly the last.
    fn entries_in_block(&self, index: u64) -> usize {
        let n = self.footer.num_entries as usize;
        let start = index as usize * self.entries_per_block;
        (n - start).min(self.entries_per_block)
    }

    /// Draws the next deterministic jitter value (xorshift64*, seeded per
    /// segment) so retry delays desynchronize across concurrent readers
    /// without any global randomness source.
    fn next_jitter(&self) -> u64 {
        let mut x = self.jitter.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter.store(x, Ordering::Relaxed);
        x
    }

    fn fetch(&self, file_block: u64, checksum: u64) -> Result<Arc<[u8]>, StorageError> {
        if self.poisoned.load(Ordering::Acquire) {
            // Fail fast: a quarantined segment never re-enters its retry
            // loop, so one dead disk cannot stall every query on it.
            return Err(StorageError::Quarantined {
                path: self.path.clone(),
            });
        }
        let key = BlockKey {
            segment: self.segment_id,
            block: file_block,
        };
        let result = self.cache.get_or_load(key, || {
            // v1 blocks are fixed slots; v2 blocks live wherever the
            // footer's prefix sums put them.
            let (offset, len) = match &self.layout {
                None => (
                    HEADER_LEN + file_block * self.footer.block_size as u64,
                    self.footer.block_size,
                ),
                Some(layout) => {
                    let (offset, len) = layout.locs[file_block as usize];
                    (offset, len as usize)
                }
            };
            // Retry inside the single-flight closure so concurrent readers
            // of the same block share one retry budget, and a block that
            // eventually loads is billed as one miss.
            let mut attempt = 0u32;
            loop {
                attempt += 1;
                let mut buf = vec![0u8; len];
                let outcome = self
                    .file
                    .read_exact_at(&mut buf, offset)
                    .map_err(StorageError::Io)
                    .and_then(|()| {
                        if fnv1a64(&buf) != checksum {
                            Err(StorageError::ChecksumMismatch { block: file_block })
                        } else {
                            Ok(())
                        }
                    });
                match outcome {
                    Ok(()) => {
                        return Ok(Arc::from(buf.into_boxed_slice()));
                    }
                    Err(e) if attempt < self.retry.attempts => {
                        // Transient-looking failure (I/O error or a read
                        // that raced a torn write): back off and retry.
                        self.io_retries.fetch_add(1, Ordering::Relaxed);
                        let shift = (attempt - 1).min(20);
                        let base = self
                            .retry
                            .base_delay_us
                            .checked_shl(shift)
                            .unwrap_or(u64::MAX)
                            .min(self.retry.max_delay_us);
                        let jitter = self.next_jitter() % (base / 2 + 1);
                        std::thread::sleep(std::time::Duration::from_micros(base + jitter));
                        let _ = e;
                    }
                    Err(e) => return Err(e),
                }
            }
        });
        if let Err(e) = &result {
            if !matches!(e, StorageError::Quarantined { .. })
                && !self.poisoned.swap(true, Ordering::AcqRel)
            {
                // The full retry budget is gone: quarantine the segment so
                // later reads fail fast with a typed error.
                self.io_gave_up.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    /// Fetches data block `index` through the retry loop; a typed error
    /// means the retry budget is exhausted (segment now quarantined) or
    /// the segment was already quarantined.
    fn try_data_block(&self, index: u64) -> Result<Arc<[u8]>, StorageError> {
        self.fetch(index, self.footer.data_checksums[index as usize])
    }

    /// Fetches table block `index` (same policy).
    fn try_table_block(&self, index: u64) -> Result<Arc<[u8]>, StorageError> {
        self.fetch(
            self.footer.data_blocks + index,
            self.footer.table_checksums[index as usize],
        )
    }

    /// The infallible trait methods' escape hatch: a read failure that a
    /// caller did not opt into handling (via the `try_*` accessors) has no
    /// channel left but a panic.
    fn infallible_panic(&self, e: StorageError) -> ! {
        panic!(
            "segment {} failed on the infallible read path (callers wanting typed \
             errors use the try_* accessors): {e}",
            self.path.display()
        )
    }

    /// Lifts a storage failure into the access layer's typed error,
    /// flagging it quarantined when the segment has poisoned itself.
    fn source_error(&self, e: StorageError) -> SourceError {
        SourceError {
            source: self.path.display().to_string(),
            detail: e.to_string(),
            quarantined: matches!(e, StorageError::Quarantined { .. })
                || self.poisoned.load(Ordering::Acquire),
        }
    }

    /// Appends slots `[from, to)` of data block `index` to `out`,
    /// dispatching on the block encoding.
    fn decode_data_range(
        &self,
        block: &[u8],
        index: u64,
        from: usize,
        to: usize,
        out: &mut Vec<GradedEntry>,
    ) {
        match &self.layout {
            None => crate::format::decode_entries(block, from, to, out),
            Some(layout) => crate::format::decode_entries_v2(
                block,
                self.entries_in_block(index),
                from,
                to,
                RegionKind::Data,
                layout.dict.as_deref(),
                out,
            ),
        }
    }

    /// Binary search (v1) or early-exit walk (v2) for `object` in table
    /// block `index`. A decode failure (a block mutated after open) is a
    /// typed error, not a panic.
    fn lookup_in_table(
        &self,
        block: &[u8],
        index: u64,
        object: ObjectId,
    ) -> Result<Option<Grade>, StorageError> {
        let count = self.entries_in_block(index);
        match &self.layout {
            None => Ok(lookup_in_table_block(block, count, object)),
            Some(layout) => {
                // Ids are ascending, so the walk can stop at the first id
                // past the probe. Grade bits are trusted for the same
                // reason the v1 path trusts them: the block came through a
                // checksum-verified load of bytes `open` validated.
                let mut hit = None;
                walk_block_v2(
                    block,
                    count,
                    RegionKind::Table,
                    layout.dict.as_deref(),
                    |_, id, bits| {
                        if id == object.0 {
                            hit = Some(Grade::clamped(f64::from_bits(bits)));
                        }
                        id < object.0
                    },
                )
                .map_err(|detail| StorageError::CorruptBlock {
                    block: self.footer.data_blocks + index,
                    detail,
                })?;
                Ok(hit)
            }
        }
    }

    /// Fallible core of [`GradedSource::sorted_access`].
    fn sorted_access_impl(&self, rank: usize) -> Result<Option<GradedEntry>, StorageError> {
        if rank >= self.footer.num_entries as usize {
            return Ok(None);
        }
        let index = (rank / self.entries_per_block) as u64;
        let block = self.try_data_block(index)?;
        let slot = rank % self.entries_per_block;
        match &self.layout {
            None => Ok(Some(crate::format::decode_entry(&block, slot))),
            Some(layout) => {
                // v2 blocks are delta chains: walk up to the slot, no
                // allocation, stop as soon as it is decoded.
                let mut hit = None;
                walk_block_v2(
                    &block,
                    self.entries_in_block(index),
                    RegionKind::Data,
                    layout.dict.as_deref(),
                    |i, id, bits| {
                        if i == slot {
                            hit = Some(GradedEntry::new(
                                ObjectId(id),
                                Grade::clamped(f64::from_bits(bits)),
                            ));
                        }
                        i < slot
                    },
                )
                .map_err(|detail| StorageError::CorruptBlock {
                    block: index,
                    detail,
                })?;
                Ok(hit)
            }
        }
    }

    /// Fallible core of [`GradedSource::random_batch`]: on error the slice
    /// `out[base..]` may hold partial answers — the caller truncates.
    fn random_batch_impl(
        &self,
        objects: &[ObjectId],
        out: &mut Vec<Option<Grade>>,
    ) -> Result<(), StorageError> {
        let base = out.len();
        out.resize(base + objects.len(), None);
        let fences = &self.footer.table_first_ids;
        // Pair each probe with its candidate table block; probes below the
        // first fence have no candidate and stay `None`.
        let mut probes: Vec<(u64, u32)> = Vec::with_capacity(objects.len());
        for (position, object) in objects.iter().enumerate() {
            let candidate = fences.partition_point(|&first| first <= object.0);
            if candidate > 0 {
                probes.push(((candidate - 1) as u64, position as u32));
            }
        }
        // Group by block (stable within a block by input position).
        probes.sort_unstable();
        let mut index = 0usize;
        while index < probes.len() {
            let block_index = probes[index].0;
            let block = self.try_table_block(block_index)?;
            while index < probes.len() && probes[index].0 == block_index {
                let position = probes[index].1 as usize;
                out[base + position] =
                    self.lookup_in_table(&block, block_index, objects[position])?;
                index += 1;
            }
        }
        Ok(())
    }

    /// Fallible core of [`GradedSource::sorted_batch`]: on error `out` may
    /// hold a partial append — the caller truncates.
    fn sorted_batch_impl(
        &self,
        start: usize,
        count: usize,
        out: &mut Vec<GradedEntry>,
    ) -> Result<usize, StorageError> {
        let n = self.footer.num_entries as usize;
        let start = start.min(n);
        let end = start.saturating_add(count).min(n);
        out.reserve(end - start);
        let mut rank = start;
        while rank < end {
            let block_index = (rank / self.entries_per_block) as u64;
            let block = self.try_data_block(block_index)?;
            let in_block = rank % self.entries_per_block;
            let take = (end - rank).min(self.entries_per_block - in_block);
            self.decode_data_range(&block, block_index, in_block, in_block + take, out);
            rank += take;
        }
        Ok(end - start)
    }

    /// Fallible core of [`GradedSource::sorted_batch_bounded`] — the
    /// grade-fence skipping logic lives here; see the trait method's docs.
    fn sorted_batch_bounded_impl(
        &self,
        start: usize,
        count: usize,
        bound: Grade,
        out: &mut Vec<GradedEntry>,
    ) -> Result<BoundedBatch, StorageError> {
        let n = self.footer.num_entries as usize;
        let start = start.min(n);
        let end = start.saturating_add(count).min(n);
        let base = out.len();
        let mut rank = start;
        let mut truncated = false;
        // Last block the unbounded scan would touch — the denominator for
        // the loaded-vs-skipped fence accounting.
        let last_block = if end > start {
            ((end - 1) / self.entries_per_block) as u64
        } else {
            0
        };
        while rank < end {
            let block_index = (rank / self.entries_per_block) as u64;
            if let Some(layout) = &self.layout {
                if layout.grade_max[block_index as usize] < bound {
                    truncated = true;
                    self.fence_skipped
                        .fetch_add(last_block - block_index + 1, Ordering::Relaxed);
                    break;
                }
            }
            let block = self.try_data_block(block_index)?;
            self.fence_loaded.fetch_add(1, Ordering::Relaxed);
            let in_block = rank % self.entries_per_block;
            let take = (end - rank).min(self.entries_per_block - in_block);
            self.decode_data_range(&block, block_index, in_block, in_block + take, out);
            rank += take;
            if out.last().is_some_and(|entry| entry.grade < bound) {
                truncated = true;
                self.fence_skipped
                    .fetch_add(last_block - block_index, Ordering::Relaxed);
                break;
            }
        }
        Ok(BoundedBatch {
            appended: out.len() - base,
            truncated,
        })
    }

    /// Fallible core of [`SetAccess::matching_set`].
    fn matching_set_impl(&self) -> Result<Vec<ObjectId>, StorageError> {
        let mut out = Vec::with_capacity(self.footer.ones as usize);
        let mut batch = Vec::new();
        let mut rank = 0usize;
        'scan: while self.sorted_batch_impl(rank, self.entries_per_block.max(1), &mut batch)? > 0 {
            rank += batch.len();
            for entry in batch.drain(..) {
                if entry.grade != Grade::ONE {
                    break 'scan;
                }
                out.push(entry.object);
            }
        }
        Ok(out)
    }
}

impl GradedSource for SegmentSource {
    fn len(&self) -> usize {
        self.footer.num_entries as usize
    }

    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        self.sorted_access_impl(rank)
            .unwrap_or_else(|e| self.infallible_panic(e))
    }

    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        let fences = &self.footer.table_first_ids;
        // The fence index names each table block's smallest id; the object,
        // if present, can only live in the last block whose fence is <= it.
        let candidate = fences.partition_point(|&first| first <= object.0);
        if candidate == 0 {
            return None;
        }
        let index = (candidate - 1) as u64;
        self.try_table_block(index)
            .and_then(|block| self.lookup_in_table(&block, index, object))
            .unwrap_or_else(|e| self.infallible_panic(e))
    }

    /// Native batched probing: probes are grouped by table block (sorted
    /// by the footer's fence index), so each touched block is fetched from
    /// the shared cache — and its checksum re-verified on a miss — **once
    /// per batch**, not once per probe. Results land positionally aligned
    /// with `objects`, and misses/duplicates behave exactly like the
    /// per-object loop.
    fn random_batch(&self, objects: &[ObjectId], out: &mut Vec<Option<Grade>>) {
        self.random_batch_impl(objects, out)
            .unwrap_or_else(|e| self.infallible_panic(e))
    }

    /// Native batched streaming: decodes each touched data block once,
    /// straight into `out`.
    fn sorted_batch(&self, start: usize, count: usize, out: &mut Vec<GradedEntry>) -> usize {
        self.sorted_batch_impl(start, count, out)
            .unwrap_or_else(|e| self.infallible_panic(e))
    }

    /// Threshold-hinted streaming. On a v2 segment the footer's
    /// `grade_max` fences answer "can this block still matter?" *before*
    /// the block is loaded: the scan stops at the first block whose fence
    /// falls below `bound`, skipping its cache request, its I/O, and its
    /// decode — and everything after it, since blocks are grade-descending.
    /// On v1 the fence check is unavailable, but the scan still stops at
    /// block granularity once a decoded block ends below the bound. Either
    /// way the emitted entries are an exact prefix of the unbounded
    /// stream, and `truncated` is only reported when every remaining entry
    /// provably grades below `bound`.
    fn sorted_batch_bounded(
        &self,
        start: usize,
        count: usize,
        bound: Grade,
        out: &mut Vec<GradedEntry>,
    ) -> BoundedBatch {
        self.sorted_batch_bounded_impl(start, count, bound, out)
            .unwrap_or_else(|e| self.infallible_panic(e))
    }

    /// Typed-error streaming: `out` is restored to its pre-call length on
    /// failure, so a caller can retry (or fail over) without double-billed
    /// or duplicated entries.
    fn try_sorted_batch(
        &self,
        start: usize,
        count: usize,
        out: &mut Vec<GradedEntry>,
    ) -> Result<usize, SourceError> {
        let base = out.len();
        self.sorted_batch_impl(start, count, out).map_err(|e| {
            out.truncate(base);
            self.source_error(e)
        })
    }

    fn try_random_batch(
        &self,
        objects: &[ObjectId],
        out: &mut Vec<Option<Grade>>,
    ) -> Result<(), SourceError> {
        let base = out.len();
        self.random_batch_impl(objects, out).map_err(|e| {
            out.truncate(base);
            self.source_error(e)
        })
    }

    fn try_sorted_batch_bounded(
        &self,
        start: usize,
        count: usize,
        bound: Grade,
        out: &mut Vec<GradedEntry>,
    ) -> Result<BoundedBatch, SourceError> {
        let base = out.len();
        self.sorted_batch_bounded_impl(start, count, bound, out)
            .map_err(|e| {
                out.truncate(base);
                self.source_error(e)
            })
    }
}

impl SetAccess for SegmentSource {
    /// The grade-1 prefix of the sorted order — identical semantics to
    /// [`MemorySource::matching_set`](garlic_core::access::MemorySource).
    fn matching_set(&self) -> Vec<ObjectId> {
        self.matching_set_impl()
            .unwrap_or_else(|e| self.infallible_panic(e))
    }

    fn try_matching_set(&self) -> Result<Vec<ObjectId>, SourceError> {
        self.matching_set_impl().map_err(|e| self.source_error(e))
    }
}

impl std::fmt::Debug for SegmentSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentSource")
            .field("path", &self.path)
            .field("entries", &self.footer.num_entries)
            .field("block_size", &self.footer.block_size)
            .field("blocks_per_region", &self.footer.data_blocks)
            .field("crisp", &self.is_crisp())
            .finish()
    }
}

/// Binary search for `object` among the first `count` object-ordered slots
/// of a table block. Grade bits are trusted for the same reason
/// [`crate::format::decode_entries`] trusts them — the block came through
/// a checksum-verified load of bytes the open-time scan validated — so
/// both access paths behave identically on any block the cache can serve.
fn lookup_in_table_block(block: &[u8], count: usize, object: ObjectId) -> Option<Grade> {
    let mut lo = 0usize;
    let mut hi = count;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (id, value) = decode_raw(block, mid);
        match id.cmp(&object.0) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Some(Grade::clamped(value)),
        }
    }
    None
}

/// What the integrity scan learned beyond "the file is sound".
struct VerifiedStats {
    /// The largest object id graded, `None` for an empty segment.
    max_object: Option<ObjectId>,
}

/// The open-time integrity scan: one sequential pass over both regions,
/// checking every block checksum, every grade, both sort orders, the
/// footer's derived statistics (crisp flag, match count, fence ids), and —
/// via an order-independent digest of the entry slots — that the two
/// regions hold the *same* entries, so sorted access and random access can
/// never disagree on a file that passed.
fn verify_blocks(file: &dyn VfsRead, footer: &Footer) -> Result<VerifiedStats, StorageError> {
    let entries_per_block = footer.block_size / ENTRY_LEN;
    let mut buf = vec![0u8; footer.block_size];
    let mut pos = HEADER_LEN;

    let mut prev: Option<GradedEntry> = None;
    let mut ones = 0u64;
    let mut crisp = true;
    let mut data_digest = 0u64;
    for (i, &expected) in footer.data_checksums.iter().enumerate() {
        file.read_exact_at(&mut buf, pos)?;
        pos += buf.len() as u64;
        if fnv1a64(&buf) != expected {
            return Err(StorageError::ChecksumMismatch { block: i as u64 });
        }
        let count = (footer.num_entries as usize - i * entries_per_block).min(entries_per_block);
        for slot in 0..count {
            let (object, value) = decode_raw(&buf, slot);
            let grade = Grade::new(value).map_err(|e| StorageError::CorruptBlock {
                block: i as u64,
                detail: format!("entry {slot}: {e}"),
            })?;
            let entry = GradedEntry::new(object, grade);
            if let Some(p) = prev {
                if (entry.grade, std::cmp::Reverse(entry.object))
                    > (p.grade, std::cmp::Reverse(p.object))
                {
                    return Err(StorageError::CorruptBlock {
                        block: i as u64,
                        detail: format!("entry {slot} breaks the descending skeleton order"),
                    });
                }
            }
            prev = Some(entry);
            if grade == Grade::ONE {
                ones += 1;
            }
            crisp &= grade.is_crisp();
            data_digest ^= fnv1a64(&buf[slot * ENTRY_LEN..(slot + 1) * ENTRY_LEN]);
        }
    }
    if ones != footer.ones {
        return Err(StorageError::FooterCorrupt {
            detail: format!("footer says {} exact matches, data has {ones}", footer.ones),
        });
    }
    if crisp != (footer.flags & FLAG_CRISP != 0) {
        return Err(StorageError::FooterCorrupt {
            detail: "crisp flag disagrees with the data region".to_owned(),
        });
    }

    let mut prev_id: Option<u64> = None;
    let mut table_digest = 0u64;
    for (i, &expected) in footer.table_checksums.iter().enumerate() {
        file.read_exact_at(&mut buf, pos)?;
        pos += buf.len() as u64;
        let file_block = footer.data_blocks + i as u64;
        if fnv1a64(&buf) != expected {
            return Err(StorageError::ChecksumMismatch { block: file_block });
        }
        let count = (footer.num_entries as usize - i * entries_per_block).min(entries_per_block);
        for slot in 0..count {
            let (object, value) = decode_raw(&buf, slot);
            Grade::new(value).map_err(|e| StorageError::CorruptBlock {
                block: file_block,
                detail: format!("entry {slot}: {e}"),
            })?;
            if slot == 0 && object != footer.table_first_ids[i] {
                return Err(StorageError::FooterCorrupt {
                    detail: format!(
                        "table block {i} starts at object {object}, fence says {}",
                        footer.table_first_ids[i]
                    ),
                });
            }
            if let Some(p) = prev_id {
                if object <= p {
                    return Err(StorageError::CorruptBlock {
                        block: file_block,
                        detail: format!("entry {slot} breaks the ascending object order"),
                    });
                }
            }
            prev_id = Some(object);
            table_digest ^= fnv1a64(&buf[slot * ENTRY_LEN..(slot + 1) * ENTRY_LEN]);
        }
    }
    // Both regions are internally consistent; now they must agree with
    // each other. XOR of per-entry hashes is order-independent, so equal
    // digests ⇔ (up to hash collisions) equal entry sets.
    if data_digest != table_digest {
        return Err(StorageError::RegionMismatch);
    }
    Ok(VerifiedStats {
        max_object: prev_id.map(ObjectId),
    })
}

/// The v2 integrity scan: everything [`verify_blocks`] checks, plus full
/// varint-frame decoding of every block and validation of the footer's
/// per-block grade fences against the actual first/last entries. The two
/// regions use different encodings, so the cross-region digest hashes each
/// entry's *canonical* 16-byte slot rather than its encoded bytes.
fn verify_blocks_v2(file: &dyn VfsRead, footer: &FooterV2) -> Result<VerifiedStats, StorageError> {
    let entries_per_block = footer.block_size / ENTRY_LEN;
    let dict = (footer.flags & FLAG_GRADE_DICT != 0).then_some(footer.grade_dict.as_slice());
    let mut buf = Vec::new();
    let mut slot = [0u8; ENTRY_LEN];
    let mut pos = HEADER_LEN;

    let mut prev: Option<GradedEntry> = None;
    let mut ones = 0u64;
    let mut crisp = true;
    let mut data_digest = 0u64;
    let checks = footer.data_checksums.iter().zip(&footer.data_block_lens);
    for (i, (&expected, &len)) in checks.enumerate() {
        buf.clear();
        buf.resize(len as usize, 0);
        file.read_exact_at(&mut buf, pos)?;
        pos += buf.len() as u64;
        if fnv1a64(&buf) != expected {
            return Err(StorageError::ChecksumMismatch { block: i as u64 });
        }
        let count = (footer.num_entries as usize - i * entries_per_block).min(entries_per_block);
        let pairs = decode_block_v2(&buf, count, RegionKind::Data, dict).map_err(|detail| {
            StorageError::CorruptBlock {
                block: i as u64,
                detail,
            }
        })?;
        for (index, &(object, bits)) in pairs.iter().enumerate() {
            let grade =
                Grade::new(f64::from_bits(bits)).map_err(|e| StorageError::CorruptBlock {
                    block: i as u64,
                    detail: format!("entry {index}: {e}"),
                })?;
            let entry = GradedEntry::new(object, grade);
            if let Some(p) = prev {
                if (entry.grade, std::cmp::Reverse(entry.object))
                    > (p.grade, std::cmp::Reverse(p.object))
                {
                    return Err(StorageError::CorruptBlock {
                        block: i as u64,
                        detail: format!("entry {index} breaks the descending skeleton order"),
                    });
                }
            }
            prev = Some(entry);
            if index == 0 && bits != footer.grade_max_bits[i] {
                return Err(StorageError::FooterCorrupt {
                    detail: format!("data block {i} grade_max fence disagrees with the block"),
                });
            }
            if index == count - 1 && bits != footer.grade_min_bits[i] {
                return Err(StorageError::FooterCorrupt {
                    detail: format!("data block {i} grade_min fence disagrees with the block"),
                });
            }
            if grade == Grade::ONE {
                ones += 1;
            }
            crisp &= grade.is_crisp();
            encode_entry(&mut slot, entry);
            data_digest ^= fnv1a64(&slot);
        }
    }
    if ones != footer.ones {
        return Err(StorageError::FooterCorrupt {
            detail: format!("footer says {} exact matches, data has {ones}", footer.ones),
        });
    }
    if crisp != (footer.flags & FLAG_CRISP != 0) {
        return Err(StorageError::FooterCorrupt {
            detail: "crisp flag disagrees with the data region".to_owned(),
        });
    }

    let mut prev_id: Option<u64> = None;
    let mut table_digest = 0u64;
    let checks = footer.table_checksums.iter().zip(&footer.table_block_lens);
    for (i, (&expected, &len)) in checks.enumerate() {
        buf.clear();
        buf.resize(len as usize, 0);
        file.read_exact_at(&mut buf, pos)?;
        pos += buf.len() as u64;
        let file_block = footer.data_blocks + i as u64;
        if fnv1a64(&buf) != expected {
            return Err(StorageError::ChecksumMismatch { block: file_block });
        }
        let count = (footer.num_entries as usize - i * entries_per_block).min(entries_per_block);
        let pairs = decode_block_v2(&buf, count, RegionKind::Table, dict).map_err(|detail| {
            StorageError::CorruptBlock {
                block: file_block,
                detail,
            }
        })?;
        for (index, &(object, bits)) in pairs.iter().enumerate() {
            let grade =
                Grade::new(f64::from_bits(bits)).map_err(|e| StorageError::CorruptBlock {
                    block: file_block,
                    detail: format!("entry {index}: {e}"),
                })?;
            if index == 0 && object != footer.table_first_ids[i] {
                return Err(StorageError::FooterCorrupt {
                    detail: format!(
                        "table block {i} starts at object {object}, fence says {}",
                        footer.table_first_ids[i]
                    ),
                });
            }
            // The table encoding already rejects non-increasing deltas, so
            // this only guards the first entry of each block against its
            // predecessor block.
            if let Some(p) = prev_id {
                if object <= p {
                    return Err(StorageError::CorruptBlock {
                        block: file_block,
                        detail: format!("entry {index} breaks the ascending object order"),
                    });
                }
            }
            prev_id = Some(object);
            encode_entry(&mut slot, GradedEntry::new(object, grade));
            table_digest ^= fnv1a64(&slot);
        }
    }
    if data_digest != table_digest {
        return Err(StorageError::RegionMismatch);
    }
    Ok(VerifiedStats {
        max_object: prev_id.map(ObjectId),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultKind, FaultOp, FaultRule, FaultVfs};
    use crate::writer::SegmentWriter;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("garlic-storage-segment-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_and_open(name: &str, grades: &[Grade], block_size: usize) -> SegmentSource {
        let path = temp_path(name);
        SegmentWriter::with_block_size(block_size)
            .unwrap()
            .write_grades(&path, grades)
            .unwrap();
        SegmentSource::open(&path, Arc::new(BlockCache::new(64))).unwrap()
    }

    #[test]
    fn round_trips_the_sorted_order() {
        let grades = [0.2, 0.9, 0.5, 1.0, 0.5].map(g);
        let seg = write_and_open("sorted.seg", &grades, 48);
        let mem = garlic_core::access::MemorySource::from_grades(&grades);
        assert_eq!(seg.len(), 5);
        for rank in 0..6 {
            assert_eq!(
                seg.sorted_access(rank),
                mem.sorted_access(rank),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn random_access_matches_memory() {
        let grades = [0.2, 0.9, 0.5, 1.0, 0.5].map(g);
        let seg = write_and_open("random.seg", &grades, 48);
        for (i, &grade) in grades.iter().enumerate() {
            assert_eq!(seg.random_access(ObjectId(i as u64)), Some(grade));
        }
        assert_eq!(seg.random_access(ObjectId(99)), None);
    }

    #[test]
    fn sparse_ids_route_through_the_fence_index() {
        let path = temp_path("sparse.seg");
        let pairs: Vec<(ObjectId, Grade)> = (0..40u64)
            .map(|i| (ObjectId(i * 1000 + 7), Grade::clamped(i as f64 / 40.0)))
            .collect();
        SegmentWriter::with_block_size(48)
            .unwrap()
            .write_pairs(&path, pairs.clone())
            .unwrap();
        let seg = SegmentSource::open(&path, Arc::new(BlockCache::new(64))).unwrap();
        for &(object, grade) in &pairs {
            assert_eq!(seg.random_access(object), Some(grade));
        }
        // Misses on every side of every fence.
        assert_eq!(seg.random_access(ObjectId(0)), None);
        assert_eq!(seg.random_access(ObjectId(1006)), None);
        assert_eq!(seg.random_access(ObjectId(1008)), None);
        assert_eq!(seg.random_access(ObjectId(u64::MAX)), None);
    }

    #[test]
    fn random_batch_agrees_with_per_object_probes() {
        let path = temp_path("batch.seg");
        let pairs: Vec<(ObjectId, Grade)> = (0..60u64)
            .map(|i| (ObjectId(i * 17 + 3), Grade::clamped((i % 9) as f64 / 8.0)))
            .collect();
        SegmentWriter::with_block_size(48)
            .unwrap()
            .write_pairs(&path, pairs)
            .unwrap();
        let seg = SegmentSource::open(&path, Arc::new(BlockCache::new(64))).unwrap();
        // Scattered probes: hits, misses on every side of the fences, a
        // below-first-fence miss, and duplicates — out of id order.
        let probes: Vec<ObjectId> = vec![
            ObjectId(3 + 17 * 40),
            ObjectId(0),
            ObjectId(3),
            ObjectId(4),
            ObjectId(3 + 17 * 59),
            ObjectId(3),
            ObjectId(u64::MAX),
            ObjectId(3 + 17 * 12),
        ];
        let mut batched = Vec::new();
        seg.random_batch(&probes, &mut batched);
        let looped: Vec<Option<Grade>> = probes.iter().map(|&p| seg.random_access(p)).collect();
        assert_eq!(batched, looped);
    }

    #[test]
    fn random_batch_fetches_each_block_once() {
        let cache = Arc::new(BlockCache::new(64));
        let path = temp_path("batch-blocks.seg");
        let grades: Vec<Grade> = (0..90).map(|i| Grade::clamped(i as f64 / 90.0)).collect();
        SegmentWriter::with_block_size(48) // 3 entries per block
            .unwrap()
            .write_grades(&path, &grades)
            .unwrap();
        let seg = SegmentSource::open(&path, Arc::clone(&cache)).unwrap();
        // 30 probes spread over exactly 10 of the 30 table blocks.
        let probes: Vec<ObjectId> = (0..30u64)
            .map(|i| ObjectId((i % 10) * 9 + i / 10))
            .collect();
        let before = cache.stats();
        let mut out = Vec::new();
        seg.random_batch(&probes, &mut out);
        assert!(out.iter().all(Option::is_some));
        let after = cache.stats();
        assert_eq!(
            (after.hits + after.misses) - (before.hits + before.misses),
            10,
            "one cache request per distinct touched block, not per probe"
        );
    }

    #[test]
    fn matching_set_is_the_grade_one_prefix() {
        let seg = write_and_open("matching.seg", &[1.0, 0.0, 1.0, 0.5].map(g), 48);
        assert_eq!(seg.matching_set(), vec![ObjectId(0), ObjectId(2)]);
        assert!(!seg.is_crisp());
        assert_eq!(seg.exact_match_count(), 2);
    }

    #[test]
    fn crisp_segments_report_crisp() {
        let seg = write_and_open("crisp.seg", &[1.0, 0.0, 1.0].map(g), 48);
        assert!(seg.is_crisp());
        assert_eq!(seg.matching_set(), vec![ObjectId(0), ObjectId(2)]);
    }

    #[test]
    fn empty_segment_is_valid_and_empty() {
        let seg = write_and_open("empty.seg", &[], 48);
        assert_eq!(seg.len(), 0);
        assert!(seg.is_empty());
        assert_eq!(seg.sorted_access(0), None);
        assert_eq!(seg.random_access(ObjectId(0)), None);
        assert_eq!(seg.matching_set(), Vec::<ObjectId>::new());
    }

    #[test]
    fn open_leaves_the_cache_cold_then_reads_warm_it() {
        let cache = Arc::new(BlockCache::new(64));
        let path = temp_path("warmth.seg");
        SegmentWriter::with_block_size(48)
            .unwrap()
            .write_grades(
                &path,
                &(0..30)
                    .map(|i| Grade::clamped(i as f64 / 30.0))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        let seg = SegmentSource::open(&path, Arc::clone(&cache)).unwrap();
        assert_eq!(
            cache.stats().resident,
            0,
            "verification must not warm the cache"
        );
        let mut out = Vec::new();
        seg.sorted_batch(0, 30, &mut out);
        let after_scan = cache.stats();
        assert_eq!(after_scan.misses as usize, after_scan.resident);
        assert!(after_scan.resident > 0);
        out.clear();
        seg.sorted_batch(0, 30, &mut out);
        assert!(
            cache.stats().hits >= after_scan.resident as u64,
            "second scan hits"
        );
    }

    #[test]
    fn two_segments_share_one_cache_without_collisions() {
        let cache = Arc::new(BlockCache::new(64));
        let a_path = temp_path("share-a.seg");
        let b_path = temp_path("share-b.seg");
        SegmentWriter::with_block_size(48)
            .unwrap()
            .write_grades(&a_path, &[g(0.1), g(0.2), g(0.3)])
            .unwrap();
        SegmentWriter::with_block_size(48)
            .unwrap()
            .write_grades(&b_path, &[g(0.9), g(0.8), g(0.7)])
            .unwrap();
        let a = SegmentSource::open(&a_path, Arc::clone(&cache)).unwrap();
        let b = SegmentSource::open(&b_path, Arc::clone(&cache)).unwrap();
        assert_eq!(a.sorted_access(0).unwrap().grade, g(0.3));
        assert_eq!(b.sorted_access(0).unwrap().grade, g(0.9));
        assert_eq!(
            a.sorted_access(0).unwrap().grade,
            g(0.3),
            "still a's data after b"
        );
    }

    #[test]
    fn default_writer_produces_v2_and_reader_reports_it() {
        let seg = write_and_open("version.seg", &[0.5, 0.25].map(g), 48);
        assert_eq!(seg.version(), FORMAT_VERSION);
    }

    #[test]
    fn v1_and_v2_segments_serve_bit_identical_entries() {
        let grades: Vec<Grade> = (0..120)
            .map(|i| Grade::clamped((i % 11) as f64 / 10.0))
            .collect();
        let v1_path = temp_path("equiv-v1.seg");
        let v2_path = temp_path("equiv-v2.seg");
        SegmentWriter::with_block_size(48)
            .unwrap()
            .with_version(crate::format::FORMAT_V1)
            .unwrap()
            .write_grades(&v1_path, &grades)
            .unwrap();
        SegmentWriter::with_block_size(48)
            .unwrap()
            .write_grades(&v2_path, &grades)
            .unwrap();
        let v1 = SegmentSource::open(&v1_path, Arc::new(BlockCache::new(64))).unwrap();
        let v2 = SegmentSource::open(&v2_path, Arc::new(BlockCache::new(64))).unwrap();
        assert_eq!(v1.version(), crate::format::FORMAT_V1);
        for rank in 0..=grades.len() {
            assert_eq!(
                v1.sorted_access(rank),
                v2.sorted_access(rank),
                "rank {rank}"
            );
        }
        for id in 0..grades.len() as u64 + 2 {
            assert_eq!(
                v1.random_access(ObjectId(id)),
                v2.random_access(ObjectId(id)),
                "object {id}"
            );
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        v1.sorted_batch(7, 100, &mut a);
        v2.sorted_batch(7, 100, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn bounded_scan_skips_loading_fenced_out_blocks() {
        // 30 entries, 3 per block: grades descend from 1.0, so a bound of
        // 0.7 fences out every data block past the first ~third.
        let cache = Arc::new(BlockCache::new(64));
        let path = temp_path("fence-skip.seg");
        let grades: Vec<Grade> = (0..30)
            .map(|i| Grade::clamped((30 - i) as f64 / 30.0))
            .collect();
        SegmentWriter::with_block_size(48)
            .unwrap()
            .write_grades(&path, &grades)
            .unwrap();
        let seg = SegmentSource::open(&path, Arc::clone(&cache)).unwrap();
        let before = cache.stats();
        let mut bounded = Vec::new();
        let result = seg.sorted_batch_bounded(0, 30, g(0.7), &mut bounded);
        assert!(result.truncated);
        assert_eq!(result.appended, bounded.len());
        let after = cache.stats();
        let touched = (after.hits + after.misses) - (before.hits + before.misses);
        assert!(
            touched < 10,
            "fences must stop the scan before loading all 10 data blocks (touched {touched})"
        );
        // The emitted entries are an exact prefix of the unbounded stream.
        let mut full = Vec::new();
        seg.sorted_batch(0, 30, &mut full);
        assert_eq!(bounded, full[..bounded.len()]);
        // Everything withheld really does grade below the bound.
        assert!(full[bounded.len()..].iter().all(|e| e.grade < g(0.7)));
    }

    #[test]
    fn bounded_scan_without_a_binding_bound_is_the_full_stream() {
        let seg = write_and_open("fence-nobound.seg", &[0.9, 0.8, 0.7, 0.6].map(g), 48);
        let mut bounded = Vec::new();
        let result = seg.sorted_batch_bounded(0, 10, Grade::ZERO, &mut bounded);
        assert_eq!(result.appended, 4);
        assert!(!result.truncated);
        let mut full = Vec::new();
        seg.sorted_batch(0, 10, &mut full);
        assert_eq!(bounded, full);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = SegmentSource::open(
            temp_path("does-not-exist.seg"),
            Arc::new(BlockCache::new(4)),
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
    }

    /// Writes through the std VFS, then reopens through a [`FaultVfs`] so a
    /// test can inject read faults after the (fault-free) open has verified
    /// the checksums.
    fn open_with_faults(name: &str, grades: &[Grade]) -> (SegmentSource, Arc<FaultVfs>) {
        let path = temp_path(name);
        SegmentWriter::with_block_size(48)
            .unwrap()
            .write_grades(&path, grades)
            .unwrap();
        let fault = Arc::new(FaultVfs::new());
        let vfs: Arc<dyn Vfs> = Arc::clone(&fault) as Arc<dyn Vfs>;
        let seg = SegmentSource::open_with(&path, Arc::new(BlockCache::new(64)), &vfs).unwrap();
        (seg, fault)
    }

    #[test]
    fn transient_read_faults_are_retried_and_counted() {
        let grades = [0.2, 0.9, 0.5, 1.0, 0.5].map(g);
        let (seg, fault) = open_with_faults("retry.seg", &grades);
        // Fail the next 2 reads, then recover: well inside the 4-attempt
        // retry budget.
        fault.push_rule(FaultRule {
            path_contains: "retry.seg".to_owned(),
            op: FaultOp::Read,
            nth: 0,
            kind: FaultKind::Transient { times: 2 },
        });
        assert!(seg.sorted_access(0).is_some());
        assert_eq!(seg.io_retries(), 2);
        assert_eq!(seg.io_gave_up(), 0);
        assert!(!seg.is_quarantined());
    }

    #[test]
    fn permanent_read_faults_quarantine_the_segment() {
        let grades = [0.2, 0.9, 0.5, 1.0, 0.5].map(g);
        let (mut seg, fault) = open_with_faults("quarantine.seg", &grades);
        seg.set_retry_policy(RetryPolicy {
            attempts: 3,
            base_delay_us: 0,
            max_delay_us: 0,
        });
        fault.push_rule(FaultRule {
            path_contains: "quarantine.seg".to_owned(),
            op: FaultOp::Read,
            nth: 0,
            kind: FaultKind::Permanent,
        });
        let mut out = Vec::new();
        let err = seg.try_sorted_batch(0, 5, &mut out).unwrap_err();
        assert!(err.quarantined, "exhausted retries must quarantine: {err}");
        assert!(out.is_empty(), "out must be unchanged on error");
        assert!(seg.is_quarantined());
        assert_eq!(seg.io_gave_up(), 1);
        assert_eq!(seg.io_retries(), 2, "attempts - 1 retries before giving up");
        // Fail-fast: later reads return the typed quarantine error without
        // touching the disk again.
        let before = fault.injected();
        let err = seg.try_sorted_batch(0, 5, &mut out).unwrap_err();
        assert!(err.quarantined);
        assert_eq!(fault.injected(), before, "quarantined probe hit the disk");
        // The infallible random path still answers misses from the fence
        // index without I/O, and cached state stays coherent.
        assert!(seg.try_matching_set().is_err());
    }

    #[test]
    fn recovered_transient_fault_leaves_identical_answers() {
        let grades = [0.2, 0.9, 0.5, 1.0, 0.5].map(g);
        let (seg, fault) = open_with_faults("identical.seg", &grades);
        fault.push_rule(FaultRule {
            path_contains: "identical.seg".to_owned(),
            op: FaultOp::Read,
            nth: 0,
            kind: FaultKind::Transient { times: 1 },
        });
        let clean = write_and_open("identical-clean.seg", &grades, 48);
        for rank in 0..6 {
            assert_eq!(seg.sorted_access(rank), clean.sorted_access(rank));
        }
        for i in 0..5u64 {
            assert_eq!(
                seg.random_access(ObjectId(i)),
                clean.random_access(ObjectId(i))
            );
        }
    }
}
