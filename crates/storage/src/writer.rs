//! Building immutable segment files.
//!
//! [`SegmentWriter`] takes one graded list and lays it down in the
//! [`crate::format`] layout. Segments are written **atomically**: all bytes
//! go to a `<name>.tmp` sibling first, the file is fsynced, then renamed
//! over the final path (and the directory fsynced), so a crash mid-write
//! can leave a stale temp file but never a half-written segment at the
//! published name. Once published, a segment is never modified — updates
//! are "write a new segment, swap the path", which is what makes the
//! shared block cache trivially coherent.

use std::io;
use std::path::Path;
use std::sync::Arc;

use garlic_agg::Grade;
use garlic_core::{GradedEntry, GradedSet, ObjectId};

use crate::error::StorageError;
use crate::format::{
    check_block_size, encode_block_v2, encode_entry, fnv1a64, Footer, FooterV2, RegionKind,
    DEFAULT_BLOCK_SIZE, ENTRY_LEN, FLAG_CRISP, FLAG_GRADE_DICT, FORMAT_V1, FORMAT_VERSION,
    GRADE_DICT_MAX, HEADER_MAGIC, TRAILER_MAGIC,
};
use crate::vfs::{std_vfs, Vfs, VfsFile};

/// What a finished write produced — geometry an operator (or a test) can
/// check against expectations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Number of graded entries stored.
    pub entries: u64,
    /// Blocks per region (the data and table regions are the same size).
    pub blocks_per_region: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// Whether every grade is exactly 0 or 1.
    pub crisp: bool,
    /// Number of grade-1 entries (the exact-match count).
    pub ones: u64,
}

/// One shard of a sharded build: where it was published, the lowest
/// object id it owns (its range fence), and its segment geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// The published segment file.
    pub path: std::path::PathBuf,
    /// Lowest object id in this shard — the fence a [`ShardedSource`]
    /// routes random access by.
    ///
    /// [`ShardedSource`]: garlic_core::ShardedSource
    pub first_id: u64,
    /// The shard segment's geometry.
    pub info: SegmentInfo,
}

/// Serializes graded lists into segment files.
#[derive(Debug, Clone)]
pub struct SegmentWriter {
    block_size: usize,
    version: u32,
    vfs: Arc<dyn Vfs>,
}

impl SegmentWriter {
    /// A writer with the default 4 KiB block size, producing the current
    /// format version ([`FORMAT_VERSION`] — compressed v2 blocks).
    pub fn new() -> Self {
        SegmentWriter {
            block_size: DEFAULT_BLOCK_SIZE,
            version: FORMAT_VERSION,
            vfs: std_vfs(),
        }
    }

    /// A writer with a custom block size (a positive multiple of the
    /// 16-byte entry). Small blocks make the cache finer-grained; large
    /// blocks amortise per-read overhead on sequential scans. In v2 the
    /// block size fixes the *logical* entries-per-block geometry; the
    /// encoded blocks are smaller.
    pub fn with_block_size(block_size: usize) -> Result<Self, StorageError> {
        check_block_size(block_size)?;
        Ok(SegmentWriter {
            block_size,
            version: FORMAT_VERSION,
            vfs: std_vfs(),
        })
    }

    /// Routes every file operation of this writer through `vfs` — the hook
    /// the fault-injection suite uses to fail writes, syncs, and renames
    /// deterministically.
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }

    /// Selects the on-disk format version: [`FORMAT_VERSION`] (the v2
    /// default) or [`FORMAT_V1`] for the legacy fixed-slot layout —
    /// useful for compatibility tests and for serving fleets that still
    /// run v1-only readers.
    pub fn with_version(mut self, version: u32) -> Result<Self, StorageError> {
        if !(FORMAT_V1..=FORMAT_VERSION).contains(&version) {
            return Err(StorageError::UnsupportedVersion {
                found: version,
                oldest_supported: FORMAT_V1,
                newest_supported: FORMAT_VERSION,
            });
        }
        self.version = version;
        Ok(self)
    }

    /// The block size segments from this writer will use.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The format version segments from this writer will use.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Writes `(object, grade)` pairs (any order; each object at most
    /// once) as a segment at `path`.
    pub fn write_pairs(
        &self,
        path: &Path,
        pairs: impl IntoIterator<Item = (ObjectId, Grade)>,
    ) -> Result<SegmentInfo, StorageError> {
        let entries: Vec<GradedEntry> = pairs
            .into_iter()
            .map(|(object, grade)| GradedEntry { object, grade })
            .collect();
        self.write_entries(path, entries)
    }

    /// Writes an already-built [`GradedSet`] as a segment at `path`.
    pub fn write_graded_set(
        &self,
        path: &Path,
        set: &GradedSet,
    ) -> Result<SegmentInfo, StorageError> {
        self.write_entries(path, set.as_slice().to_vec())
    }

    /// Writes a dense grade vector (object `i` gets `grades[i]`) as a
    /// segment at `path`.
    pub fn write_grades(&self, path: &Path, grades: &[Grade]) -> Result<SegmentInfo, StorageError> {
        self.write_pairs(
            path,
            grades
                .iter()
                .enumerate()
                .map(|(i, &g)| (ObjectId::from(i), g)),
        )
    }

    /// Writes `(object, grade)` pairs as an id-range partition of at most
    /// `shards` segment files under `dir`, named `<stem>.<i>.seg` — the
    /// sharded build behind [`ShardedSource`]-backed subsystems. The pairs
    /// are split into contiguous, id-ascending, balanced runs
    /// ([`garlic_core::sharded::partition_pairs`]); each run becomes an
    /// ordinary (atomically published, fully verifiable) segment, and the
    /// run's lowest id is returned as that shard's range fence. Fewer
    /// shard files are produced when there are fewer pairs than `shards`.
    ///
    /// [`ShardedSource`]: garlic_core::ShardedSource
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn write_sharded_pairs(
        &self,
        dir: &Path,
        stem: &str,
        shards: usize,
        pairs: impl IntoIterator<Item = (ObjectId, Grade)>,
    ) -> Result<Vec<ShardInfo>, StorageError> {
        let runs = garlic_core::sharded::partition_pairs(pairs.into_iter().collect(), shards);
        let mut out = Vec::with_capacity(runs.len());
        for (i, run) in runs.into_iter().enumerate() {
            let path = dir.join(format!("{stem}.{i:03}.seg"));
            let first_id = run[0].0 .0;
            let info = self.write_pairs(&path, run)?;
            out.push(ShardInfo {
                path,
                first_id,
                info,
            });
        }
        Ok(out)
    }

    /// Sharded build over a dense grade vector (object `i` gets
    /// `grades[i]`); see [`write_sharded_pairs`](Self::write_sharded_pairs).
    pub fn write_sharded_grades(
        &self,
        dir: &Path,
        stem: &str,
        shards: usize,
        grades: &[Grade],
    ) -> Result<Vec<ShardInfo>, StorageError> {
        self.write_sharded_pairs(
            dir,
            stem,
            shards,
            grades
                .iter()
                .enumerate()
                .map(|(i, &g)| (ObjectId::from(i), g)),
        )
    }

    fn write_entries(
        &self,
        path: &Path,
        mut entries: Vec<GradedEntry>,
    ) -> Result<SegmentInfo, StorageError> {
        // Table order first: ascending object id, which is also where
        // duplicate objects surface.
        entries.sort_by_key(|e| e.object);
        for w in entries.windows(2) {
            if w[0].object == w[1].object {
                return Err(StorageError::DuplicateObject {
                    object: w[0].object,
                    path: path.to_path_buf(),
                });
            }
        }
        let by_object = entries.clone();
        // Data order: the skeleton — descending grade, ties by ascending
        // object id (`entries` is already id-ascending, so a stable sort on
        // the grade key alone preserves exactly that tiebreak).
        entries.sort_by_key(|e| std::cmp::Reverse(e.grade));
        let by_grade = entries;

        let ones = by_grade
            .iter()
            .take_while(|e| e.grade == Grade::ONE)
            .count() as u64;
        let crisp = by_grade
            .iter()
            .all(|e| e.grade == Grade::ONE || e.grade == Grade::ZERO);

        let entries_per_block = self.block_size / ENTRY_LEN;
        let blocks_per_region = (by_grade.len() as u64).div_ceil(entries_per_block as u64);

        let tmp_path = tmp_sibling(path);
        let file = self.vfs.create(&tmp_path)?;
        // From here until the rename publishes the segment, any error (or
        // panic) leaves a stale tmp sibling — the guard removes it so a
        // failed build cannot leak files an operator has to garbage-collect.
        let mut guard = TmpGuard {
            vfs: self.vfs.as_ref(),
            path: &tmp_path,
            armed: true,
        };
        let mut out = VfsBufWriter::new(file);

        out.write_all(&HEADER_MAGIC)?;
        out.write_all(&self.version.to_le_bytes())?;

        let table_first_ids: Vec<u64> = by_object
            .chunks(entries_per_block)
            .map(|c| c[0].object.0)
            .collect();
        let flags = if crisp { FLAG_CRISP } else { 0 };
        let (footer_bytes, payload_len) = if self.version == FORMAT_V1 {
            let mut block = vec![0u8; self.block_size];
            let mut write_region = |out: &mut VfsBufWriter,
                                    region: &[GradedEntry]|
             -> Result<Vec<u64>, StorageError> {
                let mut checksums = Vec::with_capacity(blocks_per_region as usize);
                for chunk in region.chunks(entries_per_block) {
                    block.fill(0);
                    for (i, &entry) in chunk.iter().enumerate() {
                        encode_entry(&mut block[i * ENTRY_LEN..(i + 1) * ENTRY_LEN], entry);
                    }
                    checksums.push(fnv1a64(&block));
                    out.write_all(&block)?;
                }
                Ok(checksums)
            };
            let data_checksums = write_region(&mut out, &by_grade)?;
            let table_checksums = write_region(&mut out, &by_object)?;
            let footer = Footer {
                flags,
                block_size: self.block_size,
                num_entries: by_grade.len() as u64,
                ones,
                data_blocks: blocks_per_region,
                table_blocks: blocks_per_region,
                data_checksums,
                table_checksums,
                table_first_ids,
            };
            (
                footer.encode(),
                2 * blocks_per_region * self.block_size as u64,
            )
        } else {
            // Dictionary mode when the distinct grade bit patterns fit the
            // cap — exact by construction, since entries store indices into
            // the very bit patterns recorded in the footer.
            let mut grade_dict: Vec<u64> =
                by_grade.iter().map(|e| e.grade.value().to_bits()).collect();
            grade_dict.sort_unstable();
            grade_dict.dedup();
            if grade_dict.len() > GRADE_DICT_MAX {
                grade_dict.clear();
            }
            let dict = (!grade_dict.is_empty()).then_some(grade_dict.as_slice());

            let mut payload_len = 0u64;
            let mut write_region = |out: &mut VfsBufWriter,
                                    region: &[GradedEntry],
                                    kind: RegionKind|
             -> Result<(Vec<u64>, Vec<u64>), StorageError> {
                let mut checksums = Vec::with_capacity(blocks_per_region as usize);
                let mut lens = Vec::with_capacity(blocks_per_region as usize);
                for chunk in region.chunks(entries_per_block) {
                    let block = encode_block_v2(chunk, kind, dict);
                    checksums.push(fnv1a64(&block));
                    lens.push(block.len() as u64);
                    payload_len += block.len() as u64;
                    out.write_all(&block)?;
                }
                Ok((checksums, lens))
            };
            let (data_checksums, data_block_lens) =
                write_region(&mut out, &by_grade, RegionKind::Data)?;
            let (table_checksums, table_block_lens) =
                write_region(&mut out, &by_object, RegionKind::Table)?;
            let footer = FooterV2 {
                flags: flags | if dict.is_some() { FLAG_GRADE_DICT } else { 0 },
                block_size: self.block_size,
                num_entries: by_grade.len() as u64,
                ones,
                data_blocks: blocks_per_region,
                table_blocks: blocks_per_region,
                data_checksums,
                table_checksums,
                table_first_ids,
                data_block_lens,
                table_block_lens,
                grade_max_bits: by_grade
                    .chunks(entries_per_block)
                    .map(|c| c[0].grade.value().to_bits())
                    .collect(),
                grade_min_bits: by_grade
                    .chunks(entries_per_block)
                    .map(|c| c[c.len() - 1].grade.value().to_bits())
                    .collect(),
                grade_dict,
            };
            (footer.encode(), payload_len)
        };
        let footer_offset = crate::format::HEADER_LEN + payload_len;
        out.write_all(&footer_bytes)?;
        out.write_all(&footer_offset.to_le_bytes())?;
        out.write_all(&(footer_bytes.len() as u64).to_le_bytes())?;
        out.write_all(&TRAILER_MAGIC)?;

        let mut file = out.into_file()?;
        file.sync_all()?;
        drop(file);
        self.vfs.rename(&tmp_path, path)?;
        guard.armed = false;
        // Make the rename itself durable: fsync the containing directory.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            self.vfs.sync_dir(dir)?;
        }

        let bytes = footer_offset + footer_bytes.len() as u64 + crate::format::TRAILER_LEN;
        Ok(SegmentInfo {
            entries: by_grade.len() as u64,
            blocks_per_region,
            bytes,
            crisp,
            ones,
        })
    }
}

impl Default for SegmentWriter {
    fn default() -> Self {
        SegmentWriter::new()
    }
}

fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_owned()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Removes the tmp sibling on drop unless the rename published it first —
/// so an error (or panic) anywhere in the build leaves no stray files.
struct TmpGuard<'a> {
    vfs: &'a dyn Vfs,
    path: &'a Path,
    armed: bool,
}

impl Drop for TmpGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            // Best-effort: the file may never have been created, and the
            // cleanup itself may be what the fault plan fails.
            let _ = self.vfs.remove_file(self.path);
        }
    }
}

/// Batches small writes into ~64 KiB flushes — [`std::io::BufWriter`]
/// rebuilt over the [`VfsFile`] seam so injected write faults still see a
/// realistic number of distinct write operations.
struct VfsBufWriter {
    file: Box<dyn VfsFile>,
    buf: Vec<u8>,
}

const WRITE_BUF: usize = 64 * 1024;

impl VfsBufWriter {
    fn new(file: Box<dyn VfsFile>) -> Self {
        VfsBufWriter {
            file,
            buf: Vec::with_capacity(WRITE_BUF),
        }
    }

    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.buf.extend_from_slice(bytes);
        if self.buf.len() >= WRITE_BUF {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    fn into_file(mut self) -> io::Result<Box<dyn VfsFile>> {
        self.flush()?;
        Ok(self.file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultKind, FaultOp, FaultRule, FaultVfs};
    use std::fs;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("garlic-storage-writer-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn writes_expected_geometry() {
        let path = temp_path("geometry.seg");
        // 80-byte blocks hold 5 entries; 7 entries need 2 blocks per region.
        // Pinned to v1, whose fixed-slot layout makes the byte count exact.
        let writer = SegmentWriter::with_block_size(80)
            .unwrap()
            .with_version(FORMAT_V1)
            .unwrap();
        let grades: Vec<Grade> = [1.0, 0.5, 0.0, 1.0, 0.25, 0.75, 0.125]
            .iter()
            .map(|&v| g(v))
            .collect();
        let info = writer.write_grades(&path, &grades).unwrap();
        assert_eq!(info.entries, 7);
        assert_eq!(info.blocks_per_region, 2);
        assert_eq!(info.ones, 2);
        assert!(!info.crisp);
        assert_eq!(info.bytes, fs::metadata(&path).unwrap().len());
        // Header + 4 blocks + footer + trailer.
        assert_eq!(
            info.bytes,
            8 + 4 * 80
                + Footer {
                    flags: 0,
                    block_size: 80,
                    num_entries: 7,
                    ones: 2,
                    data_blocks: 2,
                    table_blocks: 2,
                    data_checksums: vec![0; 2],
                    table_checksums: vec![0; 2],
                    table_first_ids: vec![0, 5],
                }
                .encoded_len()
                + 24
        );
    }

    #[test]
    fn duplicate_objects_are_a_typed_error() {
        let path = temp_path("dup.seg");
        let writer = SegmentWriter::new();
        let result = writer.write_pairs(&path, vec![(ObjectId(1), g(0.5)), (ObjectId(1), g(0.7))]);
        match result {
            Err(StorageError::DuplicateObject { object, path: p }) => {
                assert_eq!(object, ObjectId(1));
                assert_eq!(p, path, "the error names the destination segment");
            }
            other => panic!("expected DuplicateObject, got {other:?}"),
        }
    }

    #[test]
    fn crisp_lists_are_flagged() {
        let path = temp_path("crisp.seg");
        let info = SegmentWriter::new()
            .write_grades(&path, &[g(1.0), g(0.0), g(1.0)])
            .unwrap();
        assert!(info.crisp);
        assert_eq!(info.ones, 2);
    }

    #[test]
    fn no_tmp_file_survives_a_successful_write() {
        let path = temp_path("clean.seg");
        SegmentWriter::new().write_grades(&path, &[g(0.5)]).unwrap();
        assert!(path.exists());
        assert!(!tmp_sibling(&path).exists());
    }

    /// The RAII guard's real job: a build that *fails* must not leak its
    /// tmp sibling either — for a write fault, a sync fault, and a rename
    /// fault (the three distinct failure points of the publication dance).
    #[test]
    fn no_tmp_file_survives_a_failed_write() {
        let grades: Vec<Grade> = (0..2000).map(|i| g((i % 100) as f64 / 100.0)).collect();
        for (name, op) in [
            ("fail-write.seg", FaultOp::Write),
            ("fail-sync.seg", FaultOp::Sync),
            ("fail-rename.seg", FaultOp::Rename),
        ] {
            let path = temp_path(name);
            let vfs = FaultVfs::new();
            vfs.push_rule(FaultRule {
                path_contains: name.to_owned(),
                op,
                nth: 0,
                kind: FaultKind::Permanent,
            });
            let err = SegmentWriter::new()
                .with_vfs(Arc::new(vfs))
                .write_grades(&path, &grades)
                .unwrap_err();
            assert!(matches!(err, StorageError::Io(_)), "{name}: {err}");
            assert!(!path.exists(), "{name}: nothing published");
            assert!(!tmp_sibling(&path).exists(), "{name}: tmp cleaned up");
        }
    }

    /// A torn write is the nastiest failure: half the bytes really land.
    /// The guard still removes the torn tmp file and nothing is published.
    #[test]
    fn torn_write_leaves_no_debris() {
        let path = temp_path("torn.seg");
        let vfs = FaultVfs::new();
        vfs.push_rule(FaultRule {
            path_contains: "torn.seg".to_owned(),
            op: FaultOp::Write,
            nth: 0,
            kind: FaultKind::TornWrite { keep: 17 },
        });
        let err = SegmentWriter::new()
            .with_vfs(Arc::new(vfs))
            .write_grades(&path, &[g(0.5), g(0.25)])
            .unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(!path.exists());
        assert!(!tmp_sibling(&path).exists());
    }

    #[test]
    fn sharded_build_partitions_by_id_range() {
        let dir = temp_path("sharded-build");
        fs::create_dir_all(&dir).unwrap();
        let grades: Vec<Grade> = (0..10).map(|i| g(i as f64 / 10.0)).collect();
        let shards = SegmentWriter::new()
            .write_sharded_grades(&dir, "attr", 4, &grades)
            .unwrap();
        assert_eq!(shards.len(), 4);
        // Balanced contiguous ranges: 3+3+3+1 over ids 0..10.
        assert_eq!(
            shards.iter().map(|s| s.first_id).collect::<Vec<_>>(),
            vec![0, 3, 6, 9]
        );
        let total: u64 = shards.iter().map(|s| s.info.entries).sum();
        assert_eq!(total, 10);
        for shard in &shards {
            assert!(shard.path.exists(), "{} published", shard.path.display());
        }
        // More shards than entries: every produced shard is non-empty.
        let tiny = SegmentWriter::new()
            .write_sharded_grades(&dir, "tiny", 8, &grades[..3])
            .unwrap();
        assert_eq!(tiny.len(), 3);
        assert!(tiny.iter().all(|s| s.info.entries == 1));
    }

    #[test]
    fn rejected_block_sizes() {
        assert!(matches!(
            SegmentWriter::with_block_size(17),
            Err(StorageError::InvalidBlockSize { requested: 17 })
        ));
    }

    #[test]
    fn version_selector_rejects_unknown_versions() {
        assert_eq!(SegmentWriter::new().version(), FORMAT_VERSION);
        assert_eq!(
            SegmentWriter::new()
                .with_version(FORMAT_V1)
                .unwrap()
                .version(),
            FORMAT_V1
        );
        for bad in [0, FORMAT_VERSION + 1] {
            assert!(matches!(
                SegmentWriter::new().with_version(bad),
                Err(StorageError::UnsupportedVersion { found, .. }) if found == bad
            ));
        }
    }

    #[test]
    fn v2_is_smaller_than_v1_on_quantized_grades() {
        let dir = temp_path("v1-v2-size");
        fs::create_dir_all(&dir).unwrap();
        // A realistic corpus: 1000 quantization levels → dictionary mode.
        let grades: Vec<Grade> = (0..5000)
            .map(|i| g((i * 37 % 1000) as f64 / 1000.0))
            .collect();
        let v1 = SegmentWriter::new()
            .with_version(FORMAT_V1)
            .unwrap()
            .write_grades(&dir.join("a.v1.seg"), &grades)
            .unwrap();
        let v2 = SegmentWriter::new()
            .write_grades(&dir.join("a.v2.seg"), &grades)
            .unwrap();
        assert_eq!(v1.entries, v2.entries);
        assert_eq!(v1.blocks_per_region, v2.blocks_per_region);
        assert!(
            v2.bytes * 2 <= v1.bytes,
            "v2 ({} B) not ≥2× smaller than v1 ({} B)",
            v2.bytes,
            v1.bytes
        );
    }
}
