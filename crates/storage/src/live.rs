//! [`LiveSource`]: a writable graded source with durable, snapshot-
//! consistent reads.
//!
//! This is the write path the immutable segment stack was missing: one
//! `LiveSource` per attribute absorbs live upserts and tombstone deletes
//! while serving the exact Section 4/5 read contract the rest of the
//! stack is built on. The layering is the classic LSM shape, adapted to
//! graded lists:
//!
//! ```text
//!   writes ──► WAL (fsync) ──► active memtable
//!                                  │ freeze (memtable_limit)
//!                                  ▼
//!                            frozen memtables ──► compactor ──► base segment
//!                                                               (SegmentWriter,
//!                                                                atomic swap via
//!                                                                the manifest)
//! ```
//!
//! Every write is appended to the [`crate::wal::Wal`] and fsynced before
//! it is applied to the active [`crate::memtable::Memtable`] — an
//! acknowledged write survives any crash. When the active memtable
//! reaches `memtable_limit` ops it is frozen (the WAL rotates, the
//! manifest epoch bumps) and the background compactor merges every frozen
//! layer with the base segment into a fresh v2 segment, swaps it in
//! atomically through the [`crate::manifest::Manifest`], retires the old
//! segment's blocks from the shared [`crate::BlockCache`], and deletes
//! the obsolete WAL and segment files.
//!
//! # Snapshot semantics
//!
//! Readers never see the store mid-write: [`LiveSource::snapshot`] builds
//! an immutable [`LiveSnapshot`] pinned to the manifest epoch and the
//! write version at the moment of the call. The snapshot merges the
//! overlay (active + frozen memtables, newest layer winning) over the
//! base segment with the same tie-order-stable k-way merge discipline as
//! [`garlic_core::ShardedSource`] — descending grade, ties by ascending
//! object id — while the overlay *shadows* the base (an upsert hides the
//! older grade, a tombstone hides the object). The resulting stream,
//! random access answers, and matching set are **provably identical** to
//! a freshly built [`garlic_core::access::MemorySource`] over the same
//! live contents, so the Section 5 billed access counts of anything
//! running on top are identical too. Snapshots are cheap when nothing
//! changed: the source caches the last snapshot per write version.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use garlic_agg::Grade;
use garlic_core::access::{BoundedBatch, GradedSource, SetAccess, SourceError};
use garlic_core::{FxHashMap, GradedEntry, ObjectId};

use garlic_telemetry::{Counter, Histogram, Telemetry};

use crate::cache::BlockCache;
use crate::compact::{self, CompactSignal, CompactorHandle};
use crate::error::StorageError;
use crate::manifest::{collect_garbage, file_name_for, Manifest};
use crate::memtable::{MemEntry, Memtable};
use crate::segment::SegmentSource;
use crate::vfs::{std_vfs, Vfs};
use crate::wal::{Wal, WalOp};

/// Tuning knobs for a [`LiveSource`].
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Freeze the active memtable once it holds this many ops (live
    /// entries plus tombstones). Small limits exercise the full
    /// freeze/compact cycle quickly; large limits batch more writes per
    /// segment build.
    pub memtable_limit: usize,
    /// Spawn the background compactor thread at open. Without it, frozen
    /// memtables accumulate until [`LiveSource::compact`] (or
    /// [`LiveSource::flush`]) is called explicitly — what deterministic
    /// tests want.
    pub auto_compact: bool,
    /// When set, writes must grade objects inside `0..universe`; an
    /// out-of-range write is a wiring-error panic, matching the
    /// subsystem-registration contract.
    pub universe: Option<usize>,
    /// When attached, the store resolves its metric handles from this
    /// registry once at open (`live.wal.fsync_ns`, `live.wal.replayed_ops`,
    /// `live.memtable.freezes`, `live.compaction_ns`) and records into
    /// them lock-free: one histogram sample per WAL fsync / compaction,
    /// one counter bump per freeze — never per entry. `None` (the
    /// default) costs one branch per batch.
    pub telemetry: Option<Arc<Telemetry>>,
    /// The filesystem every store file operation goes through. `None`
    /// (the default) is the real filesystem; the chaos suite installs a
    /// [`crate::vfs::FaultVfs`] here to exercise WAL, manifest, segment,
    /// and compaction failure paths deterministically.
    pub vfs: Option<Arc<dyn Vfs>>,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            memtable_limit: 4096,
            auto_compact: false,
            universe: None,
            telemetry: None,
            vfs: None,
        }
    }
}

/// The mutable core a [`LiveSource`] guards: every layer of the store and
/// the incrementally maintained visible statistics.
pub(crate) struct LiveInner {
    pub(crate) wal: Wal,
    pub(crate) active: Memtable,
    /// Frozen memtables, oldest first. Only the compactor removes them,
    /// and always a prefix.
    pub(crate) frozen: Vec<Arc<Memtable>>,
    /// How many sealed WAL files back each frozen layer (parallel to
    /// `frozen`): a freeze seals exactly one; recovery can fold several
    /// sealed logs into one layer.
    pub(crate) sealed_per_frozen: Vec<usize>,
    pub(crate) base: Option<Arc<SegmentSource>>,
    pub(crate) manifest: Manifest,
    /// Number of visible (live) graded objects across all layers.
    pub(crate) len: usize,
    /// Number of visible grade-1 objects — the planner's exact-match
    /// count, kept current on every write.
    pub(crate) ones: u64,
    /// Bumped on every mutation; keys the snapshot cache.
    pub(crate) version: u64,
    cached: Option<(u64, Arc<LiveSnapshot>)>,
}

impl LiveInner {
    /// Records a mutation: invalidates the cached snapshot and advances
    /// the write version that keys it.
    pub(crate) fn bump_version(&mut self) {
        self.version += 1;
        self.cached = None;
    }
}

/// Metric handles a live store resolves once at open — see
/// [`LiveOptions::telemetry`].
pub(crate) struct LiveMetrics {
    /// WAL `append` (write + fsync) latency, one sample per batch.
    pub(crate) fsync_ns: Arc<Histogram>,
    /// Committed WAL ops replayed during crash recovery.
    pub(crate) wal_replayed_ops: Arc<Counter>,
    /// Memtable freezes (WAL rotations).
    pub(crate) freezes: Arc<Counter>,
    /// Whole-compaction wall-clock latency, one sample per run.
    pub(crate) compaction_ns: Arc<Histogram>,
}

impl LiveMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        LiveMetrics {
            fsync_ns: telemetry.histogram("live.wal.fsync_ns"),
            wal_replayed_ops: telemetry.counter("live.wal.replayed_ops"),
            freezes: telemetry.counter("live.memtable.freezes"),
            compaction_ns: telemetry.histogram("live.compaction_ns"),
        }
    }
}

/// Everything the source and its background compactor share.
pub(crate) struct LiveShared {
    pub(crate) dir: PathBuf,
    pub(crate) cache: Arc<BlockCache>,
    pub(crate) opts: LiveOptions,
    /// The resolved filesystem ([`LiveOptions::vfs`] or the default).
    pub(crate) vfs: Arc<dyn Vfs>,
    pub(crate) inner: Mutex<LiveInner>,
    /// Serializes compactions (the background thread vs explicit
    /// [`LiveSource::compact`] calls). Never taken while holding `inner`.
    pub(crate) compact_lock: Mutex<()>,
    pub(crate) signal: CompactSignal,
    pub(crate) last_error: Mutex<Option<StorageError>>,
    /// Resolved metric handles, `None` when no registry was attached.
    pub(crate) metrics: Option<LiveMetrics>,
}

/// A durable, writable graded source (see the module docs).
pub struct LiveSource {
    shared: Arc<LiveShared>,
    compactor: Mutex<Option<CompactorHandle>>,
}

impl std::fmt::Debug for LiveSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self
            .shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("LiveSource")
            .field("dir", &self.shared.dir)
            .field("epoch", &inner.manifest.epoch)
            .field("len", &inner.len)
            .field("frozen", &inner.frozen.len())
            .finish()
    }
}

impl LiveSource {
    /// Opens (or creates) the live store in `dir`, running crash recovery:
    /// the manifest is loaded and verified, orphaned files are collected,
    /// the base segment is fully verified, and every committed WAL record
    /// is replayed — sealed logs into a frozen layer, the active log into
    /// the active memtable. Torn WAL tails are truncated; a corrupt
    /// manifest or segment is a typed error, never a guess.
    pub fn open(
        dir: &Path,
        cache: Arc<BlockCache>,
        opts: LiveOptions,
    ) -> Result<LiveSource, StorageError> {
        std::fs::create_dir_all(dir)?;
        let vfs = opts.vfs.clone().unwrap_or_else(std_vfs);
        let manifest = match Manifest::load_with(dir, &vfs) {
            Ok(m) => m,
            Err(StorageError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                let m = Manifest::initial();
                Wal::create_with(&dir.join(&m.wals[0]), &vfs)?;
                m.store_with(dir, &vfs)?;
                m
            }
            Err(e) => return Err(e),
        };
        collect_garbage(dir, &manifest, &vfs)?;
        let base = match &manifest.segment {
            Some(name) => Some(Arc::new(SegmentSource::open_with(
                dir.join(name),
                Arc::clone(&cache),
                &vfs,
            )?)),
            None => None,
        };

        // Replay: sealed logs (all but the last) fold into one frozen
        // layer; the last log is the active one and replays into the
        // active memtable.
        let metrics = opts.telemetry.as_deref().map(LiveMetrics::resolve);
        let sealed_count = manifest.wals.len() - 1;
        let mut frozen_mem = Memtable::new();
        let mut replayed = 0u64;
        let mut ops = Vec::new();
        for name in &manifest.wals[..sealed_count] {
            ops.clear();
            Wal::open_with(&dir.join(name), &mut ops, &vfs)?;
            replayed += ops.len() as u64;
            for &op in &ops {
                frozen_mem.apply(op);
            }
        }
        ops.clear();
        let wal = Wal::open_with(&dir.join(&manifest.wals[sealed_count]), &mut ops, &vfs)?;
        replayed += ops.len() as u64;
        let mut active = Memtable::new();
        for &op in &ops {
            active.apply(op);
        }
        if let Some(m) = &metrics {
            m.wal_replayed_ops.add(replayed);
        }

        // Rebuild the visible statistics from the base footer plus the
        // overlay's deltas (newest layer wins, so consult `active` first).
        let mut len = base.as_ref().map_or(0, |b| b.len());
        let mut ones = base.as_ref().map_or(0, |b| b.exact_match_count()) as i64;
        let mut seen: FxHashMap<ObjectId, ()> = FxHashMap::default();
        let mut delta = |object: ObjectId, state: MemEntry| {
            if seen.insert(object, ()).is_some() {
                return (0i64, 0i64);
            }
            let old = base.as_ref().and_then(|b| b.random_access(object));
            let new = state.grade();
            let d_len = i64::from(new.is_some()) - i64::from(old.is_some());
            let d_ones = i64::from(new == Some(Grade::ONE)) - i64::from(old == Some(Grade::ONE));
            (d_len, d_ones)
        };
        for (object, state) in active.table_iter().chain(frozen_mem.table_iter()) {
            let (d_len, d_ones) = delta(object, state);
            len = (len as i64 + d_len) as usize;
            ones += d_ones;
        }
        if let Some(universe) = opts.universe {
            let max_overlay = seen.keys().map(|o| o.index()).max();
            let max_base = base
                .as_ref()
                .and_then(|b| b.max_object())
                .map(|o| o.index());
            if let Some(max) = max_overlay.into_iter().chain(max_base).max() {
                assert!(
                    max < universe,
                    "live store grades object #{max} outside the universe size {universe}"
                );
            }
        }

        let (frozen, sealed_per_frozen) = if sealed_count > 0 {
            (vec![Arc::new(frozen_mem)], vec![sealed_count])
        } else {
            (Vec::new(), Vec::new())
        };
        let has_frozen = !frozen.is_empty();
        let shared = Arc::new(LiveShared {
            dir: dir.to_path_buf(),
            cache,
            opts: opts.clone(),
            vfs,
            inner: Mutex::new(LiveInner {
                wal,
                active,
                frozen,
                sealed_per_frozen,
                base,
                manifest,
                len,
                ones: ones.max(0) as u64,
                version: 0,
                cached: None,
            }),
            compact_lock: Mutex::new(()),
            signal: CompactSignal::new(),
            last_error: Mutex::new(None),
            metrics,
        });
        let compactor = opts
            .auto_compact
            .then(|| compact::spawn(Arc::clone(&shared)));
        if has_frozen {
            shared.signal.notify();
        }
        Ok(LiveSource {
            shared,
            compactor: Mutex::new(compactor),
        })
    }

    /// Inserts or overwrites one object's grade. Durable on return.
    pub fn upsert(&self, object: ObjectId, grade: Grade) -> Result<(), StorageError> {
        self.write_batch(&[WalOp::Upsert { object, grade }])
    }

    /// Tombstones one object. Durable on return.
    pub fn delete(&self, object: ObjectId) -> Result<(), StorageError> {
        self.write_batch(&[WalOp::Delete { object }])
    }

    /// Applies a batch of ops as **one** WAL record — one fsync for the
    /// whole batch, the sustained-ingest fast path.
    ///
    /// # Panics
    /// Panics if [`LiveOptions::universe`] is set and an op grades an
    /// object outside it (a wiring error, like registering a short list).
    pub fn write_batch(&self, ops: &[WalOp]) -> Result<(), StorageError> {
        if ops.is_empty() {
            return Ok(());
        }
        if let Some(universe) = self.shared.opts.universe {
            for op in ops {
                assert!(
                    op.object().index() < universe,
                    "live write grades object {} outside the universe size {universe}",
                    op.object()
                );
            }
        }
        let mut inner = self
            .shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match &self.shared.metrics {
            Some(m) => {
                let start = std::time::Instant::now();
                inner.wal.append(ops)?;
                m.fsync_ns
                    .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            None => inner.wal.append(ops)?,
        }
        for &op in ops {
            let object = op.object();
            let old = visible_grade(&inner, object);
            let new = match op {
                WalOp::Upsert { grade, .. } => Some(grade),
                WalOp::Delete { .. } => None,
            };
            inner.len =
                (inner.len as i64 + i64::from(new.is_some()) - i64::from(old.is_some())) as usize;
            inner.ones = (inner.ones as i64 + i64::from(new == Some(Grade::ONE))
                - i64::from(old == Some(Grade::ONE))) as u64;
            inner.active.apply(op);
        }
        inner.bump_version();
        if inner.active.ops_len() >= self.shared.opts.memtable_limit {
            freeze_locked(&self.shared, &mut inner)?;
            drop(inner);
            self.shared.signal.notify();
        }
        Ok(())
    }

    /// Seals the active memtable into a frozen layer (rotating the WAL and
    /// bumping the manifest epoch). Returns whether anything was frozen.
    pub fn freeze(&self) -> Result<bool, StorageError> {
        let mut inner = self
            .shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        freeze_locked(&self.shared, &mut inner)
    }

    /// Runs one compaction synchronously: merges every frozen layer with
    /// the base segment into a fresh segment, swaps it in through the
    /// manifest, retires the old segment's cache blocks, and deletes
    /// obsolete files. Returns whether a compaction ran.
    pub fn compact(&self) -> Result<bool, StorageError> {
        compact::compact_once(&self.shared)
    }

    /// Freezes whatever is in the active memtable and compacts everything
    /// down to the base segment — the "make it all durable and fast"
    /// button. Returns whether any work happened.
    pub fn flush(&self) -> Result<bool, StorageError> {
        let froze = self.freeze()?;
        let compacted = self.compact()?;
        Ok(froze || compacted)
    }

    /// An immutable, epoch-pinned snapshot serving the full
    /// `GradedSource + SetAccess` contract over the store's current live
    /// contents (see the module docs). Cached per write version: snapshots
    /// between writes are one `Arc` clone.
    pub fn snapshot(&self) -> Arc<LiveSnapshot> {
        let mut inner = self
            .shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some((version, snapshot)) = &inner.cached {
            if *version == inner.version {
                return Arc::clone(snapshot);
            }
        }
        let snapshot = Arc::new(build_snapshot(&inner));
        inner.cached = Some((inner.version, Arc::clone(&snapshot)));
        snapshot
    }

    /// Number of visible graded objects right now (memtable deltas
    /// included).
    pub fn live_len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len
    }

    /// Number of visible grade-1 objects right now — the planner's
    /// exact-match estimate, reflecting every acknowledged write.
    pub fn ones(&self) -> u64 {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .ones
    }

    /// Whether every visible grade is exactly 0 or 1. Exact for a freshly
    /// compacted store (the segment footer re-verifies it); while fuzzy
    /// overlay writes are pending it is conservatively `false`.
    pub fn is_crisp(&self) -> bool {
        let inner = self
            .shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        crisp_of(&inner)
    }

    /// The manifest epoch — bumped by every freeze and compaction swap.
    pub fn epoch(&self) -> u64 {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .manifest
            .epoch
    }

    /// Committed bytes in the active WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.shared
            .inner
            .lock()
            .expect("live lock")
            .wal
            .committed_bytes()
    }

    /// Number of frozen memtables awaiting compaction.
    pub fn frozen_layers(&self) -> usize {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .frozen
            .len()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// Takes the most recent background-compaction error, if one occurred.
    pub fn last_compact_error(&self) -> Option<StorageError> {
        self.shared
            .last_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

impl Drop for LiveSource {
    fn drop(&mut self) {
        if let Some(handle) = self
            .compactor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            handle.shutdown(&self.shared.signal);
        }
    }
}

/// The object's currently visible grade across every layer (newest wins):
/// active memtable, then frozen layers newest→oldest, then the base
/// segment.
fn visible_grade(inner: &LiveInner, object: ObjectId) -> Option<Grade> {
    if let Some(state) = inner.active.get(object) {
        return state.grade();
    }
    for layer in inner.frozen.iter().rev() {
        if let Some(state) = layer.get(object) {
            return state.grade();
        }
    }
    inner.base.as_ref().and_then(|b| b.random_access(object))
}

fn crisp_of(inner: &LiveInner) -> bool {
    let base_crisp = inner.base.as_ref().is_none_or(|b| b.is_crisp());
    let overlay_crisp = inner
        .active
        .table_iter()
        .chain(inner.frozen.iter().flat_map(|f| f.table_iter()))
        .all(|(_, state)| match state.grade() {
            Some(g) => g == Grade::ONE || g == Grade::ZERO,
            None => true,
        });
    base_crisp && overlay_crisp
}

/// Seals the active memtable: creates the next WAL, publishes a manifest
/// listing it (epoch + 1), then swaps the memtable into the frozen list.
/// The crash window between the WAL create and the manifest store leaves
/// only an orphaned file the next open garbage-collects.
pub(crate) fn freeze_locked(
    shared: &LiveShared,
    inner: &mut LiveInner,
) -> Result<bool, StorageError> {
    if inner.active.ops_len() == 0 {
        return Ok(false);
    }
    let new_id = inner.manifest.next_file_id;
    let new_name = file_name_for(new_id, "wal");
    let new_wal = Wal::create_with(&shared.dir.join(&new_name), &shared.vfs)?;
    let mut manifest = inner.manifest.clone();
    manifest.epoch += 1;
    manifest.next_file_id = new_id + 1;
    manifest.wals.push(new_name);
    manifest.store_with(&shared.dir, &shared.vfs)?;
    inner.manifest = manifest;
    inner.wal = new_wal;
    inner
        .frozen
        .push(Arc::new(std::mem::take(&mut inner.active)));
    inner.sealed_per_frozen.push(1);
    inner.bump_version();
    if let Some(m) = &shared.metrics {
        m.freezes.inc();
    }
    Ok(true)
}

/// Builds the immutable snapshot of the current state: the combined
/// overlay (active + frozen, newest layer winning) as a shadow map plus a
/// skeleton-ordered run, alongside the pinned base segment.
fn build_snapshot(inner: &LiveInner) -> LiveSnapshot {
    let mut shadow: FxHashMap<ObjectId, MemEntry> = FxHashMap::default();
    for (object, state) in inner
        .active
        .table_iter()
        .chain(inner.frozen.iter().rev().flat_map(|f| f.table_iter()))
    {
        shadow.entry(object).or_insert(state);
    }
    let mut overlay: Vec<GradedEntry> = shadow
        .iter()
        .filter_map(|(&object, state)| state.grade().map(|grade| GradedEntry { object, grade }))
        .collect();
    overlay.sort_unstable_by(|a, b| b.grade.cmp(&a.grade).then_with(|| a.object.cmp(&b.object)));
    LiveSnapshot {
        overlay,
        shadow,
        base: inner.base.clone(),
        len: inner.len,
        ones: inner.ones,
        crisp: crisp_of(inner),
        epoch: inner.manifest.epoch,
        merge: Mutex::new(MergeState::default()),
    }
}

/// An immutable, epoch-pinned view of a [`LiveSource`]'s contents, serving
/// the full `GradedSource + SetAccess` contract. Entries, tie order, and
/// access answers are identical to a [`MemorySource`] built from the same
/// live pairs — which is exactly what `tests/live_equivalence.rs` pins.
///
/// [`MemorySource`]: garlic_core::access::MemorySource
pub struct LiveSnapshot {
    /// Overlay entries (live only) in skeleton order.
    overlay: Vec<GradedEntry>,
    /// Every overlaid object — upserts shadow the base's grade, tombstones
    /// shadow the object entirely.
    shadow: FxHashMap<ObjectId, MemEntry>,
    base: Option<Arc<SegmentSource>>,
    len: usize,
    ones: u64,
    crisp: bool,
    epoch: u64,
    merge: Mutex<MergeState>,
}

impl std::fmt::Debug for LiveSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSnapshot")
            .field("len", &self.len)
            .field("overlay", &self.overlay.len())
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// The demand-driven merge cursor: the merged prefix only ever grows, so
/// the stream is deterministic no matter how reads are batched — the same
/// discipline [`garlic_core::ShardedSource`] uses, with shadow filtering
/// layered on.
#[derive(Default)]
struct MergeState {
    merged: Vec<GradedEntry>,
    overlay_pos: usize,
    /// Raw rank into the base sorted stream (shadowed entries included).
    base_rank: usize,
    /// Shadow-filtered lookahead from the base stream.
    base_buf: VecDeque<GradedEntry>,
    base_exhausted: bool,
}

/// What one attempt to refill the base lookahead produced.
enum Refill {
    /// The buffer has at least one entry.
    Ready,
    /// The base stream is exhausted.
    Exhausted,
    /// The base source stopped early: every remaining base entry provably
    /// grades strictly below the advisory bound.
    BoundStop,
}

/// Chunk size for pulling the base stream through the merge.
const MERGE_CHUNK: usize = 256;

impl LiveSnapshot {
    /// The manifest epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether every visible grade is exactly 0 or 1.
    pub fn is_crisp(&self) -> bool {
        self.crisp
    }

    /// Number of visible grade-1 objects.
    pub fn exact_match_count(&self) -> u64 {
        self.ones
    }

    /// Refills the shadow-filtered base lookahead. The merge cursor only
    /// advances after a successful read (`try_*` leaves `tmp` unchanged on
    /// error), so a failed refill is retryable: the cursor state is as if
    /// the call never happened.
    fn refill_base(
        &self,
        st: &mut MergeState,
        bound: Option<Grade>,
    ) -> Result<Refill, SourceError> {
        let Some(base) = &self.base else {
            st.base_exhausted = true;
            return Ok(Refill::Exhausted);
        };
        let mut tmp = Vec::with_capacity(MERGE_CHUNK);
        while st.base_buf.is_empty() && !st.base_exhausted {
            tmp.clear();
            let (got, bound_stop) = match bound {
                Some(b) => {
                    let result =
                        base.try_sorted_batch_bounded(st.base_rank, MERGE_CHUNK, b, &mut tmp)?;
                    (result.appended, result.truncated)
                }
                None => (
                    base.try_sorted_batch(st.base_rank, MERGE_CHUNK, &mut tmp)?,
                    false,
                ),
            };
            st.base_rank += got;
            st.base_buf.extend(
                tmp.iter()
                    .filter(|e| !self.shadow.contains_key(&e.object))
                    .copied(),
            );
            if bound_stop {
                return Ok(if st.base_buf.is_empty() {
                    Refill::BoundStop
                } else {
                    Refill::Ready
                });
            }
            if got < MERGE_CHUNK {
                st.base_exhausted = true;
            }
        }
        Ok(if st.base_buf.is_empty() {
            Refill::Exhausted
        } else {
            Refill::Ready
        })
    }

    /// Grows the merged prefix to `target` entries (or until both streams
    /// end).
    fn ensure_merged(&self, st: &mut MergeState, target: usize) -> Result<(), SourceError> {
        while st.merged.len() < target {
            if st.base_buf.is_empty() && !st.base_exhausted {
                self.refill_base(st, None)?;
            }
            let overlay_next = self.overlay.get(st.overlay_pos).copied();
            let base_next = st.base_buf.front().copied();
            let next = match (overlay_next, base_next) {
                (None, None) => return Ok(()),
                (Some(entry), None) => {
                    st.overlay_pos += 1;
                    entry
                }
                (None, Some(entry)) => {
                    st.base_buf.pop_front();
                    entry
                }
                (Some(o), Some(b)) => {
                    if o.grade > b.grade || (o.grade == b.grade && o.object < b.object) {
                        st.overlay_pos += 1;
                        o
                    } else {
                        st.base_buf.pop_front();
                        b
                    }
                }
            };
            st.merged.push(next);
        }
        Ok(())
    }

    /// Bounded variant: returns `true` when it stopped because every
    /// remaining entry provably grades strictly below `bound` (rather
    /// than reaching `target` or exhausting the streams).
    fn ensure_merged_bounded(
        &self,
        st: &mut MergeState,
        target: usize,
        bound: Grade,
    ) -> Result<bool, SourceError> {
        let mut base_bound_stopped = false;
        while st.merged.len() < target {
            // The merged stream descends: once its tail dips below the
            // bound, everything deeper is provably below it too.
            if st.merged.last().is_some_and(|e| e.grade < bound) {
                return Ok(true);
            }
            if st.base_buf.is_empty() && !st.base_exhausted && !base_bound_stopped {
                if let Refill::BoundStop = self.refill_base(st, Some(bound))? {
                    base_bound_stopped = true;
                }
            }
            let overlay_next = self.overlay.get(st.overlay_pos).copied();
            let base_next = st.base_buf.front().copied();
            let next = match (overlay_next, base_next) {
                (None, None) => return Ok(base_bound_stopped),
                (Some(entry), None) => {
                    if base_bound_stopped && entry.grade < bound {
                        // Both suffixes are provably below the bound; the
                        // true interleaving no longer matters.
                        return Ok(true);
                    }
                    // entry.grade >= bound > every remaining base entry,
                    // so emitting it preserves the exact merge order.
                    st.overlay_pos += 1;
                    entry
                }
                (None, Some(entry)) => {
                    st.base_buf.pop_front();
                    entry
                }
                (Some(o), Some(b)) => {
                    if o.grade > b.grade || (o.grade == b.grade && o.object < b.object) {
                        st.overlay_pos += 1;
                        o
                    } else {
                        st.base_buf.pop_front();
                        b
                    }
                }
            };
            st.merged.push(next);
        }
        Ok(false)
    }

    /// Terminal handler for the infallible [`GradedSource`] methods when
    /// the base segment has an injected or real I/O failure. Callers that
    /// want typed errors use the `try_*` accessors instead.
    fn infallible_panic(&self, e: SourceError) -> ! {
        panic!(
            "live snapshot failed on the infallible read path (callers wanting \
             typed errors use the try_* accessors): {e}"
        )
    }
}

impl GradedSource for LiveSnapshot {
    fn len(&self) -> usize {
        self.len
    }

    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        let mut st = self.merge.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = self.ensure_merged(&mut st, rank.saturating_add(1)) {
            self.infallible_panic(e)
        }
        st.merged.get(rank).copied()
    }

    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        match self.shadow.get(&object) {
            Some(state) => state.grade(),
            None => self.base.as_ref().and_then(|b| b.random_access(object)),
        }
    }

    fn sorted_batch(&self, start: usize, count: usize, out: &mut Vec<GradedEntry>) -> usize {
        self.try_sorted_batch(start, count, out)
            .unwrap_or_else(|e| self.infallible_panic(e))
    }

    fn try_sorted_batch(
        &self,
        start: usize,
        count: usize,
        out: &mut Vec<GradedEntry>,
    ) -> Result<usize, SourceError> {
        let mut st = self.merge.lock().unwrap_or_else(PoisonError::into_inner);
        let target = start.saturating_add(count);
        self.ensure_merged(&mut st, target)?;
        let end = st.merged.len().min(target);
        let begin = start.min(end);
        out.extend_from_slice(&st.merged[begin..end]);
        Ok(end - begin)
    }

    fn sorted_batch_bounded(
        &self,
        start: usize,
        count: usize,
        bound: Grade,
        out: &mut Vec<GradedEntry>,
    ) -> BoundedBatch {
        self.try_sorted_batch_bounded(start, count, bound, out)
            .unwrap_or_else(|e| self.infallible_panic(e))
    }

    fn try_sorted_batch_bounded(
        &self,
        start: usize,
        count: usize,
        bound: Grade,
        out: &mut Vec<GradedEntry>,
    ) -> Result<BoundedBatch, SourceError> {
        let mut st = self.merge.lock().unwrap_or_else(PoisonError::into_inner);
        let target = start.saturating_add(count);
        let bound_stop = self.ensure_merged_bounded(&mut st, target, bound)?;
        let end = st.merged.len().min(target);
        let begin = start.min(end);
        out.extend_from_slice(&st.merged[begin..end]);
        let appended = end - begin;
        Ok(BoundedBatch {
            appended,
            truncated: bound_stop && appended < count,
        })
    }

    fn random_batch(&self, objects: &[ObjectId], out: &mut Vec<Option<Grade>>) {
        self.try_random_batch(objects, out)
            .unwrap_or_else(|e| self.infallible_panic(e))
    }

    fn try_random_batch(
        &self,
        objects: &[ObjectId],
        out: &mut Vec<Option<Grade>>,
    ) -> Result<(), SourceError> {
        let start = out.len();
        out.resize(start + objects.len(), None);
        let mut base_probes = Vec::new();
        let mut base_slots = Vec::new();
        for (i, &object) in objects.iter().enumerate() {
            match self.shadow.get(&object) {
                Some(state) => out[start + i] = state.grade(),
                None => {
                    base_probes.push(object);
                    base_slots.push(i);
                }
            }
        }
        if let Some(base) = &self.base {
            if !base_probes.is_empty() {
                let mut answers = Vec::with_capacity(base_probes.len());
                if let Err(e) = base.try_random_batch(&base_probes, &mut answers) {
                    // Contract: `out` must be unchanged on error.
                    out.truncate(start);
                    return Err(e);
                }
                for (&slot, answer) in base_slots.iter().zip(answers) {
                    out[start + slot] = answer;
                }
            }
        }
        Ok(())
    }

    fn degraded(&self) -> bool {
        self.base.as_ref().is_some_and(|b| b.degraded())
    }
}

impl SetAccess for LiveSnapshot {
    fn matching_set(&self) -> Vec<ObjectId> {
        self.try_matching_set()
            .unwrap_or_else(|e| self.infallible_panic(e))
    }

    fn try_matching_set(&self) -> Result<Vec<ObjectId>, SourceError> {
        // Overlay ones are the overlay's skeleton prefix; base ones come
        // from its own matching set, minus anything the overlay shadows.
        // Ascending-id order matches `MemorySource` (grade-1 ties break
        // by id).
        let mut set: Vec<ObjectId> = self
            .overlay
            .iter()
            .take_while(|e| e.grade == Grade::ONE)
            .map(|e| e.object)
            .collect();
        if let Some(base) = &self.base {
            set.extend(
                base.try_matching_set()?
                    .into_iter()
                    .filter(|object| !self.shadow.contains_key(object)),
            );
        }
        set.sort_unstable();
        Ok(set)
    }
}

/// Pure-composition compaction input: the merged full contents of the
/// base segment plus every frozen layer (newest winning), as writer-ready
/// pairs. Lives here (not in `compact.rs`) because it is the read-side
/// inverse of [`build_snapshot`] and the two must agree forever.
pub(crate) fn merged_pairs(
    base: Option<&Arc<SegmentSource>>,
    frozen: &[Arc<Memtable>],
) -> Result<Vec<(ObjectId, Grade)>, StorageError> {
    let mut combined: BTreeMap<ObjectId, MemEntry> = BTreeMap::new();
    // Oldest → newest with overwrite: the newest layer's state wins.
    for layer in frozen {
        for (object, state) in layer.table_iter() {
            combined.insert(object, state);
        }
    }
    let mut pairs = Vec::new();
    if let Some(base) = base {
        let mut entries = Vec::with_capacity(base.len());
        let mut rank = 0;
        loop {
            // Typed failure here aborts the compaction attempt (recorded by
            // the compactor and retried later) instead of panicking.
            let got = base
                .try_sorted_batch(rank, 4096, &mut entries)
                .map_err(|e| StorageError::Io(std::io::Error::other(e.to_string())))?;
            rank += got;
            if got < 4096 {
                break;
            }
        }
        pairs.extend(
            entries
                .iter()
                .filter(|e| !combined.contains_key(&e.object))
                .map(|e| (e.object, e.grade)),
        );
    }
    pairs.extend(
        combined
            .iter()
            .filter_map(|(&object, &state)| state.grade().map(|g| (object, g))),
    );
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultKind, FaultOp, FaultRule, FaultVfs};

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("garlic-storage-live-{}", std::process::id()))
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path, opts: LiveOptions) -> LiveSource {
        LiveSource::open(dir, Arc::new(BlockCache::new(256)), opts).unwrap()
    }

    #[test]
    fn writes_survive_reopen() {
        let dir = temp_store("reopen");
        {
            let live = open(&dir, LiveOptions::default());
            live.upsert(ObjectId(3), g(0.7)).unwrap();
            live.upsert(ObjectId(1), g(0.4)).unwrap();
            live.delete(ObjectId(1)).unwrap();
        }
        let live = open(&dir, LiveOptions::default());
        let snap = live.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.random_access(ObjectId(3)), Some(g(0.7)));
        assert_eq!(snap.random_access(ObjectId(1)), None);
        assert_eq!(live.live_len(), 1);
    }

    #[test]
    fn snapshots_pin_the_state_at_the_call() {
        let dir = temp_store("pin");
        let live = open(&dir, LiveOptions::default());
        live.upsert(ObjectId(0), g(0.5)).unwrap();
        let before = live.snapshot();
        live.upsert(ObjectId(0), g(0.9)).unwrap();
        live.upsert(ObjectId(1), g(0.1)).unwrap();
        let after = live.snapshot();
        assert_eq!(before.random_access(ObjectId(0)), Some(g(0.5)));
        assert_eq!(before.len(), 1);
        assert_eq!(after.random_access(ObjectId(0)), Some(g(0.9)));
        assert_eq!(after.len(), 2);
        // Unchanged state: the snapshot is cached, not rebuilt.
        assert!(Arc::ptr_eq(&after, &live.snapshot()));
    }

    #[test]
    fn flush_compacts_to_one_segment_and_collects_old_files() {
        let dir = temp_store("flush");
        let live = open(&dir, LiveOptions::default());
        for i in 0..100u64 {
            live.upsert(ObjectId(i), g((i as f64) / 100.0)).unwrap();
        }
        live.delete(ObjectId(50)).unwrap();
        assert!(live.flush().unwrap());
        assert_eq!(live.frozen_layers(), 0);
        // Exactly one segment and the (fresh) active WAL remain.
        let mut segs = 0;
        let mut wals = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_str().unwrap().to_owned();
            segs += usize::from(name.ends_with(".seg"));
            wals += usize::from(name.ends_with(".wal"));
        }
        assert_eq!((segs, wals), (1, 1));
        let snap = live.snapshot();
        assert_eq!(snap.len(), 99);
        assert_eq!(snap.random_access(ObjectId(50)), None);
        assert_eq!(snap.random_access(ObjectId(99)), Some(g(0.99)));
        assert_eq!(snap.sorted_access(0).unwrap().object, ObjectId(99));
    }

    #[test]
    fn the_merge_shadows_the_base_segment() {
        let dir = temp_store("shadow");
        let live = open(&dir, LiveOptions::default());
        for i in 0..10u64 {
            live.upsert(ObjectId(i), g(0.5)).unwrap();
        }
        live.flush().unwrap();
        // Overlay on top of the compacted base: one raise, one lower, one
        // delete, one brand-new object.
        live.upsert(ObjectId(3), g(0.9)).unwrap();
        live.upsert(ObjectId(4), g(0.1)).unwrap();
        live.delete(ObjectId(5)).unwrap();
        live.upsert(ObjectId(77), g(0.7)).unwrap();
        let snap = live.snapshot();
        assert_eq!(snap.len(), 10);
        let mut stream = Vec::new();
        assert_eq!(snap.sorted_batch(0, 64, &mut stream), 10);
        let ranked: Vec<(u64, f64)> = stream
            .iter()
            .map(|e| (e.object.0, e.grade.value()))
            .collect();
        assert_eq!(
            ranked,
            vec![
                (3, 0.9),
                (77, 0.7),
                (0, 0.5),
                (1, 0.5),
                (2, 0.5),
                (6, 0.5),
                (7, 0.5),
                (8, 0.5),
                (9, 0.5),
                (4, 0.1),
            ]
        );
        // Bounded reads are an exact prefix of the unbounded stream; the
        // bound is advisory, so the first below-bound entry may slip out
        // before the stop (exactly like the default chunked walk).
        let mut bounded = Vec::new();
        let result = snap.sorted_batch_bounded(0, 64, g(0.5), &mut bounded);
        assert!(result.truncated);
        assert_eq!(bounded, stream[..result.appended]);
        assert!(result.appended >= 9, "everything at or above the bound");
        // Random batches answer positionally across overlay and base.
        let mut answers = Vec::new();
        snap.random_batch(
            &[ObjectId(5), ObjectId(3), ObjectId(8), ObjectId(1000)],
            &mut answers,
        );
        assert_eq!(answers, vec![None, Some(g(0.9)), Some(g(0.5)), None]);
    }

    #[test]
    fn memtable_limit_freezes_and_background_compaction_drains() {
        let dir = temp_store("auto");
        let live = open(
            &dir,
            LiveOptions {
                memtable_limit: 8,
                auto_compact: true,
                ..LiveOptions::default()
            },
        );
        for i in 0..64u64 {
            live.upsert(ObjectId(i), g(0.25)).unwrap();
        }
        // The background thread owns the drain; wait for it to catch up.
        for _ in 0..500 {
            if live.frozen_layers() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(live.frozen_layers(), 0, "compactor drains frozen layers");
        assert!(live.last_compact_error().is_none());
        assert_eq!(live.snapshot().len(), 64);
        assert_eq!(live.live_len(), 64);
    }

    #[test]
    fn crisp_and_ones_follow_the_visible_state() {
        let dir = temp_store("crisp");
        let live = open(&dir, LiveOptions::default());
        live.upsert(ObjectId(0), Grade::ONE).unwrap();
        live.upsert(ObjectId(1), Grade::ZERO).unwrap();
        live.upsert(ObjectId(2), Grade::ONE).unwrap();
        assert!(live.is_crisp());
        assert_eq!(live.ones(), 2);
        let snap = live.snapshot();
        assert_eq!(snap.matching_set(), vec![ObjectId(0), ObjectId(2)]);
        live.upsert(ObjectId(2), g(0.5)).unwrap();
        assert!(!live.is_crisp());
        assert_eq!(live.ones(), 1);
        live.flush().unwrap();
        assert!(!live.is_crisp(), "the segment re-verifies crispness");
        live.upsert(ObjectId(2), Grade::ONE).unwrap();
        live.flush().unwrap();
        assert!(live.is_crisp(), "compaction makes crispness exact again");
        assert_eq!(live.ones(), 2);
        assert_eq!(
            live.snapshot().matching_set(),
            vec![ObjectId(0), ObjectId(2)]
        );
    }

    #[test]
    fn recovery_replays_sealed_and_active_logs() {
        let dir = temp_store("sealed");
        {
            let live = open(
                &dir,
                LiveOptions {
                    memtable_limit: 4,
                    ..LiveOptions::default()
                },
            );
            // 10 writes with limit 4: two freezes happen, no compaction
            // (auto_compact off) — the directory holds sealed WALs.
            for i in 0..10u64 {
                live.upsert(ObjectId(i), g(0.3)).unwrap();
            }
            assert!(live.frozen_layers() > 0);
        }
        let live = open(
            &dir,
            LiveOptions {
                memtable_limit: 4,
                ..LiveOptions::default()
            },
        );
        assert_eq!(live.live_len(), 10);
        assert!(live.frozen_layers() > 0, "sealed logs replay as frozen");
        live.flush().unwrap();
        assert_eq!(live.snapshot().len(), 10);
    }

    #[test]
    #[should_panic(expected = "outside the universe size")]
    fn universe_bound_is_enforced_on_writes() {
        let dir = temp_store("universe");
        let live = open(
            &dir,
            LiveOptions {
                universe: Some(8),
                ..LiveOptions::default()
            },
        );
        let _ = live.upsert(ObjectId(8), g(0.5));
    }

    fn open_faulty(name: &str) -> (PathBuf, LiveSource, Arc<FaultVfs>) {
        let dir = temp_store(name);
        let fault = Arc::new(FaultVfs::new());
        let live = open(
            &dir,
            LiveOptions {
                vfs: Some(Arc::clone(&fault) as Arc<dyn Vfs>),
                ..LiveOptions::default()
            },
        );
        (dir, live, fault)
    }

    #[test]
    fn store_survives_a_panicked_reader_thread() {
        let (_dir, live, fault) = open_faulty("poisoned-reader");
        let ops: Vec<WalOp> = (0..2000u64)
            .map(|i| WalOp::Upsert {
                object: ObjectId(i),
                grade: g(0.1 + 0.8 * (i as f64) / 2000.0),
            })
            .collect();
        live.write_batch(&ops).unwrap();
        live.flush().unwrap();
        let snap = live.snapshot();
        // Warm the head of the merge so recovery has something cached.
        assert!(snap.sorted_access(0).is_some());
        // Every further segment read fails permanently: a reader thread
        // asking for a deep rank panics on the infallible path while it
        // holds the snapshot's merge lock, poisoning it.
        fault.push_rule(FaultRule {
            path_contains: ".seg".to_owned(),
            op: FaultOp::Read,
            nth: 0,
            kind: FaultKind::Permanent,
        });
        let reader = std::thread::spawn({
            let snap = Arc::clone(&snap);
            move || snap.sorted_access(1999)
        });
        assert!(reader.join().is_err(), "deep read should have panicked");
        // The poisoned merge lock recovers via `into_inner`: already
        // merged ranks still answer on this thread.
        assert!(snap.sorted_access(0).is_some());
        // Deep reads now hit the quarantined base, but the fallible path
        // reports that as a typed error — no panic, `out` untouched.
        let mut out = Vec::new();
        let err = snap.try_sorted_batch(1000, 10, &mut out).unwrap_err();
        assert!(err.quarantined, "quarantine must be typed: {err}");
        assert!(out.is_empty());
        // Quarantine is per-open-segment state; once the disk recovers, a
        // reopen of the same directory serves everything again.
        fault.clear();
        drop(snap);
        drop(live);
        let live = LiveSource::open(
            &_dir,
            Arc::new(BlockCache::new(256)),
            LiveOptions {
                vfs: Some(Arc::clone(&fault) as Arc<dyn Vfs>),
                ..LiveOptions::default()
            },
        )
        .unwrap();
        live.upsert(ObjectId(5000), g(0.5)).unwrap();
        let fresh = live.snapshot();
        assert_eq!(fresh.len(), 2001);
        assert_eq!(fresh.random_access(ObjectId(5000)), Some(g(0.5)));
        assert!(fresh.sorted_access(1999).is_some());
    }

    #[test]
    fn failed_compaction_is_invisible_and_retryable() {
        let (dir, live, fault) = open_faulty("compact-fault");
        for i in 0..50u64 {
            live.upsert(ObjectId(i), g(0.2 + (i as f64) / 100.0))
                .unwrap();
        }
        live.freeze().unwrap();
        // The commit rename of the new segment fails once.
        fault.push_rule(FaultRule {
            path_contains: ".seg".to_owned(),
            op: FaultOp::Rename,
            nth: 0,
            kind: FaultKind::Transient { times: 1 },
        });
        let err = live.compact().unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "typed error: {err}");
        // Pre-compaction state is fully intact: same contents, the frozen
        // layer still pending, and no tmp debris on disk.
        let snap = live.snapshot();
        assert_eq!(snap.len(), 50);
        assert_eq!(snap.random_access(ObjectId(7)), Some(g(0.27)));
        assert_eq!(live.frozen_layers(), 1);
        let debris: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(debris.is_empty(), "leftover tmp files: {debris:?}");
        // The transient fault has passed: the retry commits the round.
        assert!(live.compact().unwrap());
        assert_eq!(live.frozen_layers(), 0);
        let snap = live.snapshot();
        assert_eq!(snap.len(), 50);
        assert_eq!(snap.random_access(ObjectId(7)), Some(g(0.27)));
    }
}
