//! The in-memory write buffer: a sorted memtable over live upserts and
//! tombstone deletes.
//!
//! A [`Memtable`] mirrors the segment layout in RAM, maintaining both
//! region orders the on-disk format keeps: an **id-ordered table**
//! (object → state, where the state is a live grade or a tombstone) for
//! random access, and a **grade-descending skeleton** (descending grade,
//! ties by ascending object id — exactly the paper's sorted-access tie
//! order) over the live entries for sorted access. Both are ordinary
//! B-tree structures, so every upsert and delete is `O(log n)` and the
//! sorted stream falls out by iteration.
//!
//! A memtable serves the full `GradedSource + SetAccess` contract over
//! its *live* entries — tombstones answer random access with a miss and
//! never appear in the sorted stream. Tombstones still matter to the
//! layered merge in [`crate::live`]: a tombstone **shadows** older layers
//! (frozen memtables and the base segment), which is why the table keeps
//! them while the skeleton does not.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};

use garlic_agg::Grade;
use garlic_core::access::{GradedSource, SetAccess};
use garlic_core::{GradedEntry, ObjectId};

use crate::wal::WalOp;

/// What a memtable knows about one object it has absorbed a write for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEntry {
    /// The object's current grade.
    Live(Grade),
    /// The object was deleted: shadow any older layer's entry.
    Tombstone,
}

impl MemEntry {
    /// The live grade, if this entry is not a tombstone.
    pub fn grade(self) -> Option<Grade> {
        match self {
            MemEntry::Live(grade) => Some(grade),
            MemEntry::Tombstone => None,
        }
    }
}

/// An in-memory sorted write buffer (see the module docs).
#[derive(Debug, Default, Clone)]
pub struct Memtable {
    /// Id-ordered table region: every object this memtable has an opinion
    /// about, tombstones included.
    table: BTreeMap<ObjectId, MemEntry>,
    /// Grade-descending skeleton over live entries only; `Reverse` turns
    /// the B-tree's ascending iteration into descending grades, and the
    /// second key keeps ties in ascending id order.
    skeleton: BTreeSet<(Reverse<Grade>, ObjectId)>,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Applies one logged op, returning the object's previous state in
    /// this memtable (`None` if this is the first write for the object).
    pub fn apply(&mut self, op: WalOp) -> Option<MemEntry> {
        match op {
            WalOp::Upsert { object, grade } => self.upsert(object, grade),
            WalOp::Delete { object } => self.delete(object),
        }
    }

    /// Inserts or overwrites `object`'s grade; returns its previous state.
    pub fn upsert(&mut self, object: ObjectId, grade: Grade) -> Option<MemEntry> {
        let previous = self.table.insert(object, MemEntry::Live(grade));
        if let Some(MemEntry::Live(old)) = previous {
            self.skeleton.remove(&(Reverse(old), object));
        }
        self.skeleton.insert((Reverse(grade), object));
        previous
    }

    /// Tombstones `object`; returns its previous state.
    pub fn delete(&mut self, object: ObjectId) -> Option<MemEntry> {
        let previous = self.table.insert(object, MemEntry::Tombstone);
        if let Some(MemEntry::Live(old)) = previous {
            self.skeleton.remove(&(Reverse(old), object));
        }
        previous
    }

    /// This memtable's state for `object`: a live grade, a tombstone, or
    /// `None` when it holds no write for the object (older layers decide).
    pub fn get(&self, object: ObjectId) -> Option<MemEntry> {
        self.table.get(&object).copied()
    }

    /// Number of objects with *any* state here — live or tombstoned. This
    /// is the freeze-threshold size (it tracks memory), not the graded
    /// length.
    pub fn ops_len(&self) -> usize {
        self.table.len()
    }

    /// Iterates every `(object, state)` pair in ascending id order,
    /// tombstones included — what the layered merge and the compactor
    /// consume.
    pub fn table_iter(&self) -> impl Iterator<Item = (ObjectId, MemEntry)> + '_ {
        self.table.iter().map(|(&object, &state)| (object, state))
    }

    /// Iterates live entries in skeleton order (descending grade,
    /// ascending id).
    pub fn entries_desc(&self) -> impl Iterator<Item = GradedEntry> + '_ {
        self.skeleton
            .iter()
            .map(|&(Reverse(grade), object)| GradedEntry { object, grade })
    }
}

impl GradedSource for Memtable {
    fn len(&self) -> usize {
        self.skeleton.len()
    }

    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        self.entries_desc().nth(rank)
    }

    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        self.get(object).and_then(MemEntry::grade)
    }

    fn sorted_batch(&self, start: usize, count: usize, out: &mut Vec<GradedEntry>) -> usize {
        let before = out.len();
        out.extend(self.entries_desc().skip(start).take(count));
        out.len() - before
    }
}

impl SetAccess for Memtable {
    fn matching_set(&self) -> Vec<ObjectId> {
        // Grade-1 entries are the skeleton's prefix.
        self.entries_desc()
            .take_while(|e| e.grade == Grade::ONE)
            .map(|e| e.object)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    #[test]
    fn serves_the_skeleton_tie_order() {
        let mut mem = Memtable::new();
        mem.upsert(ObjectId(5), g(0.5));
        mem.upsert(ObjectId(1), g(0.9));
        mem.upsert(ObjectId(3), g(0.5));
        mem.upsert(ObjectId(0), g(0.0));
        let stream: Vec<_> = mem.entries_desc().collect();
        let objects: Vec<u64> = stream.iter().map(|e| e.object.0).collect();
        // Descending grade; the 0.5 tie breaks by ascending id.
        assert_eq!(objects, vec![1, 3, 5, 0]);
        assert_eq!(mem.sorted_access(1).unwrap().object, ObjectId(3));
        let mut batch = Vec::new();
        assert_eq!(mem.sorted_batch(1, 2, &mut batch), 2);
        assert_eq!(batch, stream[1..3]);
    }

    #[test]
    fn upsert_overwrites_and_delete_tombstones() {
        let mut mem = Memtable::new();
        assert_eq!(mem.upsert(ObjectId(2), g(0.4)), None);
        assert_eq!(
            mem.upsert(ObjectId(2), g(0.8)),
            Some(MemEntry::Live(g(0.4)))
        );
        assert_eq!(mem.len(), 1, "an overwrite is not a second entry");
        assert_eq!(mem.random_access(ObjectId(2)), Some(g(0.8)));
        assert_eq!(mem.delete(ObjectId(2)), Some(MemEntry::Live(g(0.8))));
        assert_eq!(mem.random_access(ObjectId(2)), None);
        assert_eq!(mem.get(ObjectId(2)), Some(MemEntry::Tombstone));
        assert_eq!(mem.len(), 0);
        assert_eq!(mem.ops_len(), 1, "the tombstone still occupies the table");
        // Deleting an object the memtable never saw records the shadow.
        assert_eq!(mem.delete(ObjectId(9)), None);
        assert_eq!(mem.get(ObjectId(9)), Some(MemEntry::Tombstone));
    }

    #[test]
    fn matching_set_is_the_grade_one_prefix() {
        let mut mem = Memtable::new();
        mem.upsert(ObjectId(4), Grade::ONE);
        mem.upsert(ObjectId(2), g(0.5));
        mem.upsert(ObjectId(1), Grade::ONE);
        assert_eq!(mem.matching_set(), vec![ObjectId(1), ObjectId(4)]);
    }
}
