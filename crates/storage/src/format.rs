//! The on-disk segment format (version 1).
//!
//! A segment is one immutable graded list — the durable answer to one
//! atomic query — laid out for the two access kinds of the paper's
//! Section 4 interface:
//!
//! ```text
//! ┌────────────────────┐
//! │ header (8 B)       │  magic "GSEG" + format version
//! ├────────────────────┤
//! │ data block 0       │  entries in descending-grade order (ties by
//! │ data block 1       │  ascending object id — the fixed skeleton), i.e.
//! │ ...                │  exactly the sorted-access stream
//! ├────────────────────┤
//! │ table block 0      │  the same entries sorted by ascending object id
//! │ ...                │  — the random-access ("object → grade") table
//! ├────────────────────┤
//! │ footer             │  geometry, flags, per-block checksums, the first
//! │                    │  object id of every table block, own checksum
//! ├────────────────────┤
//! │ trailer (24 B)     │  footer offset + length + magic "GSEGEND1"
//! └────────────────────┘
//! ```
//!
//! Every block is exactly `block_size` bytes (zero-padded), holding
//! `block_size / 16` entries of 16 bytes each: object id (`u64` LE)
//! followed by grade (`f64` LE bit pattern). All blocks are checksummed
//! (FNV-1a 64) in the footer; the footer checksums itself; the trailer is
//! found relative to the file end so a truncated copy is detected before
//! any block is trusted.

use garlic_agg::Grade;
use garlic_core::GradedEntry;

use crate::error::StorageError;

/// Magic bytes opening every segment file.
pub const HEADER_MAGIC: [u8; 4] = *b"GSEG";
/// Magic bytes closing every segment file.
pub const TRAILER_MAGIC: [u8; 8] = *b"GSEGEND1";
/// The format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Bytes of one encoded entry: object id (u64) + grade bits (f64).
pub const ENTRY_LEN: usize = 16;
/// Header length: magic + version.
pub const HEADER_LEN: u64 = 8;
/// Trailer length: footer offset + footer length + magic.
pub const TRAILER_LEN: u64 = 24;
/// Default block size — one classic filesystem page.
pub const DEFAULT_BLOCK_SIZE: usize = 4096;
/// Largest accepted block size (16 MiB). An upper bound keeps a forged
/// footer from driving multi-gigabyte buffer allocations before its
/// blocks can be verified.
pub const MAX_BLOCK_SIZE: usize = 1 << 24;

/// Footer flag bit: every grade in the segment is exactly 0 or 1, so the
/// list is crisp and eligible for set access / the filtered strategy.
pub const FLAG_CRISP: u64 = 1;

/// FNV-1a 64-bit — the format's checksum. Not cryptographic; it guards
/// against torn writes, bit rot, and truncation, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes one entry into a 16-byte slot.
pub fn encode_entry(slot: &mut [u8], entry: GradedEntry) {
    slot[..8].copy_from_slice(&entry.object.0.to_le_bytes());
    slot[8..ENTRY_LEN].copy_from_slice(&entry.grade.value().to_bits().to_le_bytes());
}

/// Decodes the raw `(object id, grade bits)` of the 16-byte slot at
/// `index` within a block. Grade validity is the caller's concern (it is
/// checked once, at open time).
pub fn decode_raw(block: &[u8], index: usize) -> (u64, f64) {
    let off = index * ENTRY_LEN;
    let object = u64::from_le_bytes(block[off..off + 8].try_into().expect("8-byte slot"));
    let bits = u64::from_le_bytes(
        block[off + 8..off + ENTRY_LEN]
            .try_into()
            .expect("8-byte slot"),
    );
    (object, f64::from_bits(bits))
}

/// Decodes the entry at `index` within an open-time-verified block. Grade
/// bits are trusted under the same reasoning as [`decode_entries`] (and
/// clamped into `[0, 1]` unconditionally), so the positional and batched
/// sorted paths behave identically on any block a verified load can
/// produce.
pub fn decode_entry(block: &[u8], index: usize) -> GradedEntry {
    let (object, value) = decode_raw(block, index);
    GradedEntry::new(object, Grade::clamped(value))
}

/// Decodes the entries in slots `[from, to)` of an open-time-verified
/// block, appending to `out` — the hot path of sequential streaming.
/// `chunks_exact` hands the compiler fixed 16-byte windows, so the loop
/// compiles without per-entry bounds checks — and without a per-entry
/// panic edge: grade validity needs no re-check here, because every block
/// reaching this function came through a checksum-verified load of bytes
/// the open-time scan already validated grade by grade (a post-open
/// mutation fails the load's checksum and panics there, per the same
/// torn-write/bit-rot — not adversary — trust model as the checksums
/// themselves). [`Grade::clamped`] still upholds the `[0, 1]` type
/// invariant unconditionally.
pub fn decode_entries(block: &[u8], from: usize, to: usize, out: &mut Vec<GradedEntry>) {
    let payload = &block[from * ENTRY_LEN..to * ENTRY_LEN];
    out.reserve(to - from);
    out.extend(payload.chunks_exact(ENTRY_LEN).map(|chunk| {
        let object = u64::from_le_bytes(chunk[..8].try_into().expect("8-byte slot"));
        let bits = u64::from_le_bytes(chunk[8..ENTRY_LEN].try_into().expect("8-byte slot"));
        GradedEntry::new(object, Grade::clamped(f64::from_bits(bits)))
    }));
}

/// Reads a little-endian `u64` at `off`.
pub fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte field"))
}

/// The parsed footer: everything needed to address and verify the blocks.
#[derive(Debug, Clone)]
pub struct Footer {
    /// Flag bits ([`FLAG_CRISP`], ...).
    pub flags: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Number of graded entries.
    pub num_entries: u64,
    /// Number of entries with grade exactly 1 (the crisp match count).
    pub ones: u64,
    /// Number of data (sorted-order) blocks.
    pub data_blocks: u64,
    /// Number of table (object-order) blocks.
    pub table_blocks: u64,
    /// FNV-1a checksum of every data block, in order.
    pub data_checksums: Vec<u64>,
    /// FNV-1a checksum of every table block, in order.
    pub table_checksums: Vec<u64>,
    /// The first object id stored in each table block — the in-memory
    /// fence index that routes a random access to a single block.
    pub table_first_ids: Vec<u64>,
}

impl Footer {
    /// Fixed-length prefix of the footer (all scalar fields).
    const SCALARS: usize = 6 * 8;

    /// Serialized length in bytes (including the trailing self-checksum).
    pub fn encoded_len(&self) -> u64 {
        (Self::SCALARS
            + 8 * (self.data_checksums.len()
                + self.table_checksums.len()
                + self.table_first_ids.len())
            + 8) as u64
    }

    /// Serializes the footer, appending its own FNV-1a checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() as usize);
        for v in [
            self.flags,
            self.block_size as u64,
            self.num_entries,
            self.ones,
            self.data_blocks,
            self.table_blocks,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for list in [
            &self.data_checksums,
            &self.table_checksums,
            &self.table_first_ids,
        ] {
            for v in list {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses and verifies a serialized footer.
    pub fn parse(bytes: &[u8]) -> Result<Footer, StorageError> {
        if bytes.len() < Self::SCALARS + 8 {
            return Err(StorageError::FooterCorrupt {
                detail: format!("footer too short ({} bytes)", bytes.len()),
            });
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = read_u64(tail, 0);
        if fnv1a64(body) != stored {
            return Err(StorageError::FooterCorrupt {
                detail: "footer checksum mismatch".to_owned(),
            });
        }
        let flags = read_u64(body, 0);
        let block_size = read_u64(body, 8);
        let num_entries = read_u64(body, 16);
        let ones = read_u64(body, 24);
        let data_blocks = read_u64(body, 32);
        let table_blocks = read_u64(body, 40);
        if block_size == 0
            || block_size > MAX_BLOCK_SIZE as u64
            || !block_size.is_multiple_of(ENTRY_LEN as u64)
        {
            return Err(StorageError::FooterCorrupt {
                detail: format!("invalid block size {block_size}"),
            });
        }
        let lists = data_blocks
            .checked_add(table_blocks)
            .and_then(|v| v.checked_add(table_blocks))
            .and_then(|v| v.checked_mul(8))
            .and_then(|v| v.checked_add(Self::SCALARS as u64))
            .ok_or_else(|| StorageError::FooterCorrupt {
                detail: "block counts overflow".to_owned(),
            })?;
        if body.len() as u64 != lists {
            return Err(StorageError::FooterCorrupt {
                detail: format!(
                    "footer length {} disagrees with block counts {data_blocks}+{table_blocks}",
                    bytes.len()
                ),
            });
        }
        let entries_per_block = block_size / ENTRY_LEN as u64;
        let expected_blocks = num_entries.div_ceil(entries_per_block);
        if data_blocks != expected_blocks || table_blocks != expected_blocks {
            return Err(StorageError::FooterCorrupt {
                detail: format!(
                    "{num_entries} entries at {entries_per_block}/block need {expected_blocks} \
                     blocks per region, footer says {data_blocks}/{table_blocks}"
                ),
            });
        }
        let mut off = Self::SCALARS;
        let mut take = |count: u64| {
            let mut out = Vec::with_capacity(count as usize);
            for _ in 0..count {
                out.push(read_u64(body, off));
                off += 8;
            }
            out
        };
        let data_checksums = take(data_blocks);
        let table_checksums = take(table_blocks);
        let table_first_ids = take(table_blocks);
        if !table_first_ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(StorageError::FooterCorrupt {
                detail: "table fence ids not strictly ascending".to_owned(),
            });
        }
        Ok(Footer {
            flags,
            block_size: block_size as usize,
            num_entries,
            ones,
            data_blocks,
            table_blocks,
            data_checksums,
            table_checksums,
            table_first_ids,
        })
    }
}

/// Validates a requested writer/reader block size.
pub fn check_block_size(block_size: usize) -> Result<(), StorageError> {
    if block_size == 0 || block_size > MAX_BLOCK_SIZE || !block_size.is_multiple_of(ENTRY_LEN) {
        return Err(StorageError::InvalidBlockSize {
            requested: block_size,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use garlic_core::ObjectId;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn entry_round_trips() {
        let mut slot = [0u8; ENTRY_LEN];
        let entry = GradedEntry::new(ObjectId(42), Grade::new(0.625).unwrap());
        encode_entry(&mut slot, entry);
        assert_eq!(decode_entry(&slot, 0), entry);
    }

    fn footer() -> Footer {
        Footer {
            flags: FLAG_CRISP,
            block_size: 64,
            num_entries: 7,
            ones: 2,
            data_blocks: 2,
            table_blocks: 2,
            data_checksums: vec![1, 2],
            table_checksums: vec![3, 4],
            table_first_ids: vec![0, 9],
        }
    }

    #[test]
    fn footer_round_trips() {
        let f = footer();
        let bytes = f.encode();
        assert_eq!(bytes.len() as u64, f.encoded_len());
        let parsed = Footer::parse(&bytes).unwrap();
        assert_eq!(parsed.num_entries, 7);
        assert_eq!(parsed.ones, 2);
        assert_eq!(parsed.flags, FLAG_CRISP);
        assert_eq!(parsed.data_checksums, vec![1, 2]);
        assert_eq!(parsed.table_first_ids, vec![0, 9]);
    }

    #[test]
    fn footer_detects_flipped_bits() {
        let mut bytes = footer().encode();
        bytes[3] ^= 0x40;
        assert!(matches!(
            Footer::parse(&bytes),
            Err(StorageError::FooterCorrupt { .. })
        ));
    }

    #[test]
    fn footer_rejects_inconsistent_geometry() {
        let mut f = footer();
        f.data_blocks = 3; // 7 entries in 64-byte blocks need exactly 2.
        f.data_checksums.push(5);
        assert!(matches!(
            Footer::parse(&f.encode()),
            Err(StorageError::FooterCorrupt { .. })
        ));
    }

    #[test]
    fn block_size_must_be_entry_multiple() {
        assert!(check_block_size(4096).is_ok());
        assert!(check_block_size(16).is_ok());
        assert!(matches!(
            check_block_size(0),
            Err(StorageError::InvalidBlockSize { requested: 0 })
        ));
        assert!(matches!(
            check_block_size(100),
            Err(StorageError::InvalidBlockSize { requested: 100 })
        ));
    }
}
