//! The on-disk segment format (versions 1 and 2).
//!
//! A segment is one immutable graded list — the durable answer to one
//! atomic query — laid out for the two access kinds of the paper's
//! Section 4 interface:
//!
//! ```text
//! ┌────────────────────┐
//! │ header (8 B)       │  magic "GSEG" + format version
//! ├────────────────────┤
//! │ data block 0       │  entries in descending-grade order (ties by
//! │ data block 1       │  ascending object id — the fixed skeleton), i.e.
//! │ ...                │  exactly the sorted-access stream
//! ├────────────────────┤
//! │ table block 0      │  the same entries sorted by ascending object id
//! │ ...                │  — the random-access ("object → grade") table
//! ├────────────────────┤
//! │ footer             │  geometry, flags, per-block checksums, the first
//! │                    │  object id of every table block, own checksum
//! ├────────────────────┤
//! │ trailer (24 B)     │  footer offset + length + magic "GSEGEND1"
//! └────────────────────┘
//! ```
//!
//! In **version 1** every block is exactly `block_size` bytes
//! (zero-padded), holding `block_size / 16` entries of 16 bytes each:
//! object id (`u64` LE) followed by grade (`f64` LE bit pattern).
//!
//! **Version 2** keeps the same logical geometry — a block still holds
//! `block_size / 16` entries, so ranks, fences, and cache keys mean the
//! same thing in both versions — but each block is stored *compressed*
//! as a back-to-back variable-length byte run, with per-block byte
//! lengths recorded in the footer:
//!
//! * entries are interleaved `[id][grade]` varint streams. The first id
//!   of a block is a plain LEB128 varint; later ids are encoded as the
//!   delta from the previous id (zigzag-varint with wrapping arithmetic
//!   in data blocks where ids arrive in skeleton order, plain varint of
//!   the strictly-positive delta in the ascending table blocks);
//! * grades use one of two segment-wide modes. When the list has at
//!   most [`GRADE_DICT_MAX`] distinct grade bit patterns the footer
//!   carries a sorted dictionary of raw `f64` bit patterns and each
//!   entry stores a varint dictionary index — the exact bit pattern
//!   round-trips by construction, so quantized corpora pay one or two
//!   bytes per grade with zero loss. Otherwise
//!   ([`FLAG_GRADE_DICT`] clear) the first grade of a block is stored
//!   as raw bits and later grades as bit-pattern deltas (plain varint
//!   of the non-negative decrease in data blocks, zigzag in table
//!   blocks) — also bit-exact, because the IEEE-754 bit patterns of the
//!   non-negative grades order exactly like their values;
//! * the footer grows per-data-block `grade_max`/`grade_min` fences so
//!   a reader holding a stop-threshold can prove a block (and every
//!   block after it) cannot contribute *before loading it*, plus the
//!   per-block encoded byte lengths that locate each block in the file.
//!
//! Both versions checksum every block (FNV-1a 64) in a self-checksummed
//! footer found via the trailer, and both get the same full open-time
//! verification; a decoder never trusts a varint stream past the bytes
//! its checksum covered.

use garlic_agg::Grade;
use garlic_core::GradedEntry;

use crate::error::StorageError;

/// Magic bytes opening every segment file.
pub const HEADER_MAGIC: [u8; 4] = *b"GSEG";
/// Magic bytes closing every segment file.
pub const TRAILER_MAGIC: [u8; 8] = *b"GSEGEND1";
/// The current format version — what [`crate::SegmentWriter`] produces by
/// default. This build reads versions [`FORMAT_V1`]..=[`FORMAT_VERSION`].
pub const FORMAT_VERSION: u32 = 2;
/// The original fixed-slot format, still fully readable (and writable via
/// [`crate::SegmentWriter::with_version`] for compatibility testing).
pub const FORMAT_V1: u32 = 1;
/// Bytes of one encoded entry: object id (u64) + grade bits (f64).
pub const ENTRY_LEN: usize = 16;
/// Header length: magic + version.
pub const HEADER_LEN: u64 = 8;
/// Trailer length: footer offset + footer length + magic.
pub const TRAILER_LEN: u64 = 24;
/// Default block size — one classic filesystem page.
pub const DEFAULT_BLOCK_SIZE: usize = 4096;
/// Largest accepted block size (16 MiB). An upper bound keeps a forged
/// footer from driving multi-gigabyte buffer allocations before its
/// blocks can be verified.
pub const MAX_BLOCK_SIZE: usize = 1 << 24;

/// Footer flag bit: every grade in the segment is exactly 0 or 1, so the
/// list is crisp and eligible for set access / the filtered strategy.
pub const FLAG_CRISP: u64 = 1;

/// FNV-1a 64-bit — the format's checksum. Not cryptographic; it guards
/// against torn writes, bit rot, and truncation, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes one entry into a 16-byte slot.
pub fn encode_entry(slot: &mut [u8], entry: GradedEntry) {
    slot[..8].copy_from_slice(&entry.object.0.to_le_bytes());
    slot[8..ENTRY_LEN].copy_from_slice(&entry.grade.value().to_bits().to_le_bytes());
}

/// Decodes the raw `(object id, grade bits)` of the 16-byte slot at
/// `index` within a block. Grade validity is the caller's concern (it is
/// checked once, at open time).
pub fn decode_raw(block: &[u8], index: usize) -> (u64, f64) {
    let off = index * ENTRY_LEN;
    let object = u64::from_le_bytes(block[off..off + 8].try_into().expect("8-byte slot"));
    let bits = u64::from_le_bytes(
        block[off + 8..off + ENTRY_LEN]
            .try_into()
            .expect("8-byte slot"),
    );
    (object, f64::from_bits(bits))
}

/// Decodes the entry at `index` within an open-time-verified block. Grade
/// bits are trusted under the same reasoning as [`decode_entries`] (and
/// clamped into `[0, 1]` unconditionally), so the positional and batched
/// sorted paths behave identically on any block a verified load can
/// produce.
pub fn decode_entry(block: &[u8], index: usize) -> GradedEntry {
    let (object, value) = decode_raw(block, index);
    GradedEntry::new(object, Grade::clamped(value))
}

/// Decodes the entries in slots `[from, to)` of an open-time-verified
/// block, appending to `out` — the hot path of sequential streaming.
/// `chunks_exact` hands the compiler fixed 16-byte windows, so the loop
/// compiles without per-entry bounds checks — and without a per-entry
/// panic edge: grade validity needs no re-check here, because every block
/// reaching this function came through a checksum-verified load of bytes
/// the open-time scan already validated grade by grade (a post-open
/// mutation fails the load's checksum and panics there, per the same
/// torn-write/bit-rot — not adversary — trust model as the checksums
/// themselves). [`Grade::clamped`] still upholds the `[0, 1]` type
/// invariant unconditionally.
pub fn decode_entries(block: &[u8], from: usize, to: usize, out: &mut Vec<GradedEntry>) {
    let payload = &block[from * ENTRY_LEN..to * ENTRY_LEN];
    out.reserve(to - from);
    out.extend(payload.chunks_exact(ENTRY_LEN).map(|chunk| {
        let object = u64::from_le_bytes(chunk[..8].try_into().expect("8-byte slot"));
        let bits = u64::from_le_bytes(chunk[8..ENTRY_LEN].try_into().expect("8-byte slot"));
        GradedEntry::new(object, Grade::clamped(f64::from_bits(bits)))
    }));
}

/// Reads a little-endian `u64` at `off`.
pub fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte field"))
}

/// The parsed footer: everything needed to address and verify the blocks.
#[derive(Debug, Clone)]
pub struct Footer {
    /// Flag bits ([`FLAG_CRISP`], ...).
    pub flags: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Number of graded entries.
    pub num_entries: u64,
    /// Number of entries with grade exactly 1 (the crisp match count).
    pub ones: u64,
    /// Number of data (sorted-order) blocks.
    pub data_blocks: u64,
    /// Number of table (object-order) blocks.
    pub table_blocks: u64,
    /// FNV-1a checksum of every data block, in order.
    pub data_checksums: Vec<u64>,
    /// FNV-1a checksum of every table block, in order.
    pub table_checksums: Vec<u64>,
    /// The first object id stored in each table block — the in-memory
    /// fence index that routes a random access to a single block.
    pub table_first_ids: Vec<u64>,
}

impl Footer {
    /// Fixed-length prefix of the footer (all scalar fields).
    const SCALARS: usize = 6 * 8;

    /// Serialized length in bytes (including the trailing self-checksum).
    pub fn encoded_len(&self) -> u64 {
        (Self::SCALARS
            + 8 * (self.data_checksums.len()
                + self.table_checksums.len()
                + self.table_first_ids.len())
            + 8) as u64
    }

    /// Serializes the footer, appending its own FNV-1a checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() as usize);
        for v in [
            self.flags,
            self.block_size as u64,
            self.num_entries,
            self.ones,
            self.data_blocks,
            self.table_blocks,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for list in [
            &self.data_checksums,
            &self.table_checksums,
            &self.table_first_ids,
        ] {
            for v in list {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses and verifies a serialized footer.
    pub fn parse(bytes: &[u8]) -> Result<Footer, StorageError> {
        if bytes.len() < Self::SCALARS + 8 {
            return Err(StorageError::FooterCorrupt {
                detail: format!("footer too short ({} bytes)", bytes.len()),
            });
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = read_u64(tail, 0);
        if fnv1a64(body) != stored {
            return Err(StorageError::FooterCorrupt {
                detail: "footer checksum mismatch".to_owned(),
            });
        }
        let flags = read_u64(body, 0);
        let block_size = read_u64(body, 8);
        let num_entries = read_u64(body, 16);
        let ones = read_u64(body, 24);
        let data_blocks = read_u64(body, 32);
        let table_blocks = read_u64(body, 40);
        if block_size == 0
            || block_size > MAX_BLOCK_SIZE as u64
            || !block_size.is_multiple_of(ENTRY_LEN as u64)
        {
            return Err(StorageError::FooterCorrupt {
                detail: format!("invalid block size {block_size}"),
            });
        }
        let lists = data_blocks
            .checked_add(table_blocks)
            .and_then(|v| v.checked_add(table_blocks))
            .and_then(|v| v.checked_mul(8))
            .and_then(|v| v.checked_add(Self::SCALARS as u64))
            .ok_or_else(|| StorageError::FooterCorrupt {
                detail: "block counts overflow".to_owned(),
            })?;
        if body.len() as u64 != lists {
            return Err(StorageError::FooterCorrupt {
                detail: format!(
                    "footer length {} disagrees with block counts {data_blocks}+{table_blocks}",
                    bytes.len()
                ),
            });
        }
        let entries_per_block = block_size / ENTRY_LEN as u64;
        let expected_blocks = num_entries.div_ceil(entries_per_block);
        if data_blocks != expected_blocks || table_blocks != expected_blocks {
            return Err(StorageError::FooterCorrupt {
                detail: format!(
                    "{num_entries} entries at {entries_per_block}/block need {expected_blocks} \
                     blocks per region, footer says {data_blocks}/{table_blocks}"
                ),
            });
        }
        let mut off = Self::SCALARS;
        let mut take = |count: u64| {
            let mut out = Vec::with_capacity(count as usize);
            for _ in 0..count {
                out.push(read_u64(body, off));
                off += 8;
            }
            out
        };
        let data_checksums = take(data_blocks);
        let table_checksums = take(table_blocks);
        let table_first_ids = take(table_blocks);
        if !table_first_ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(StorageError::FooterCorrupt {
                detail: "table fence ids not strictly ascending".to_owned(),
            });
        }
        Ok(Footer {
            flags,
            block_size: block_size as usize,
            num_entries,
            ones,
            data_blocks,
            table_blocks,
            data_checksums,
            table_checksums,
            table_first_ids,
        })
    }
}

/// Validates a requested writer/reader block size.
pub fn check_block_size(block_size: usize) -> Result<(), StorageError> {
    if block_size == 0 || block_size > MAX_BLOCK_SIZE || !block_size.is_multiple_of(ENTRY_LEN) {
        return Err(StorageError::InvalidBlockSize {
            requested: block_size,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Version 2: varint codecs, compressed blocks, fenced footer.
// ---------------------------------------------------------------------------

/// Footer flag bit (v2): grades are stored as indices into the footer's
/// grade dictionary rather than as per-block bit-pattern deltas.
pub const FLAG_GRADE_DICT: u64 = 2;
/// Most distinct grade bit patterns the dictionary mode accepts. Past
/// this the writer falls back to bit-pattern delta encoding (still
/// exact), keeping the footer small and the index varints short.
pub const GRADE_DICT_MAX: usize = 4096;
/// Longest legal LEB128 encoding of a `u64` (10 × 7 bits ≥ 64 bits).
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `v` as a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads a LEB128 varint at `*off`, advancing it. Returns `None` when
/// the buffer ends mid-varint or the encoding overflows 64 bits — the
/// typed-corruption path for a forged or truncated v2 block.
pub fn read_varint(bytes: &[u8], off: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    for i in 0..MAX_VARINT_LEN {
        let &b = bytes.get(*off + i)?;
        let payload = u64::from(b & 0x7f);
        if i == MAX_VARINT_LEN - 1 && payload > 1 {
            return None; // 10th byte may only carry the top bit of a u64.
        }
        value |= payload << (7 * i);
        if b & 0x80 == 0 {
            *off += i + 1;
            return Some(value);
        }
    }
    None
}

/// [`read_varint`] specialised for the decode hot loop: when at least 8
/// bytes remain, one aligned-load word covers every varint of up to 4
/// bytes (28 payload bits — all id deltas and dictionary indices a
/// block-sized run produces) without per-byte bounds checks. Longer
/// varints and buffer tails fall back to the byte-at-a-time reader, so
/// the accepted encodings are exactly [`read_varint`]'s.
#[inline(always)]
fn read_varint_hot(bytes: &[u8], off: &mut usize) -> Option<u64> {
    if let Some(run) = bytes.get(*off..*off + 8) {
        let word = u64::from_le_bytes(run.try_into().expect("8-byte run"));
        let mut value = word & 0x7f;
        if word & 0x80 == 0 {
            *off += 1;
            return Some(value);
        }
        value |= (word >> 8 & 0x7f) << 7;
        if word & 0x8000 == 0 {
            *off += 2;
            return Some(value);
        }
        value |= (word >> 16 & 0x7f) << 14;
        if word & 0x80_0000 == 0 {
            *off += 3;
            return Some(value);
        }
        value |= (word >> 24 & 0x7f) << 21;
        if word & 0x8000_0000 == 0 {
            *off += 4;
            return Some(value);
        }
    }
    read_varint(bytes, off)
}

/// Zigzag-maps a signed delta onto a small unsigned varint.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Which region a v2 block belongs to — the two regions delta-encode
/// differently because their sort orders differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Descending-grade skeleton order: ids are arbitrary (zigzag
    /// deltas), grades non-increasing (plain varint of the decrease).
    Data,
    /// Ascending-object order: ids strictly increase (plain varint of
    /// the positive delta), grades are arbitrary (zigzag bit deltas).
    Table,
}

/// Encodes one v2 block. `dict` is the sorted grade dictionary when the
/// segment uses dictionary mode ([`FLAG_GRADE_DICT`]); entries' grade
/// bits must then all be present in it.
pub fn encode_block_v2(entries: &[GradedEntry], kind: RegionKind, dict: Option<&[u64]>) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * 4);
    let mut prev_id: u64 = 0;
    let mut prev_bits: u64 = 0;
    for (i, entry) in entries.iter().enumerate() {
        let id = entry.object.0;
        let bits = entry.grade.value().to_bits();
        if i == 0 {
            write_varint(&mut out, id);
        } else {
            match kind {
                RegionKind::Data => write_varint(&mut out, zigzag(id.wrapping_sub(prev_id) as i64)),
                RegionKind::Table => write_varint(&mut out, id - prev_id),
            }
        }
        match dict {
            Some(dict) => {
                let index = dict.binary_search(&bits).expect("grade bits in dictionary");
                write_varint(&mut out, index as u64);
            }
            None if i == 0 => out.extend_from_slice(&bits.to_le_bytes()),
            None => match kind {
                RegionKind::Data => write_varint(&mut out, prev_bits - bits),
                RegionKind::Table => write_varint(&mut out, zigzag(bits as i64 - prev_bits as i64)),
            },
        }
        prev_id = id;
        prev_bits = bits;
    }
    out
}

/// Walks a v2 block, handing each `(index, object id, grade bits)` to
/// `visit`; `visit` returns `false` to stop early (a table lookup that
/// has passed its target id). Verifies the varint framing as it goes:
/// mid-varint truncation, delta underflow/overflow, out-of-range
/// dictionary indices, and trailing bytes after the last entry all
/// return a typed detail string for [`StorageError::CorruptBlock`].
pub fn walk_block_v2(
    bytes: &[u8],
    count: usize,
    kind: RegionKind,
    dict: Option<&[u64]>,
    mut visit: impl FnMut(usize, u64, u64) -> bool,
) -> Result<(), String> {
    let mut off = 0usize;
    let mut prev_id: u64 = 0;
    let mut prev_bits: u64 = 0;
    for i in 0..count {
        let raw_id = read_varint(bytes, &mut off)
            .ok_or_else(|| format!("entry {i}: id varint truncated"))?;
        let id = if i == 0 {
            raw_id
        } else {
            match kind {
                RegionKind::Data => prev_id.wrapping_add(unzigzag(raw_id) as u64),
                RegionKind::Table => {
                    if raw_id == 0 {
                        return Err(format!("entry {i}: zero table id delta"));
                    }
                    prev_id
                        .checked_add(raw_id)
                        .ok_or_else(|| format!("entry {i}: table id delta overflows"))?
                }
            }
        };
        let bits = match dict {
            Some(dict) => {
                let index = read_varint(bytes, &mut off)
                    .ok_or_else(|| format!("entry {i}: grade index truncated"))?;
                *dict
                    .get(index as usize)
                    .ok_or_else(|| format!("entry {i}: grade index {index} out of dictionary"))?
            }
            None if i == 0 => {
                let slot = bytes
                    .get(off..off + 8)
                    .ok_or_else(|| format!("entry {i}: first grade truncated"))?;
                off += 8;
                u64::from_le_bytes(slot.try_into().expect("8-byte slot"))
            }
            None => {
                let delta = read_varint(bytes, &mut off)
                    .ok_or_else(|| format!("entry {i}: grade delta truncated"))?;
                match kind {
                    RegionKind::Data => prev_bits
                        .checked_sub(delta)
                        .ok_or_else(|| format!("entry {i}: grade delta underflows"))?,
                    RegionKind::Table => prev_bits.wrapping_add(unzigzag(delta) as u64),
                }
            }
        };
        prev_id = id;
        prev_bits = bits;
        if !visit(i, id, bits) {
            return Ok(());
        }
    }
    if off != bytes.len() {
        return Err(format!(
            "{} trailing bytes after last entry",
            bytes.len() - off
        ));
    }
    Ok(())
}

/// Decodes a full v2 block into raw `(object id, grade bits)` pairs —
/// the verification-time path. Grade *validity* is the caller's concern,
/// mirroring [`decode_raw`].
pub fn decode_block_v2(
    bytes: &[u8],
    count: usize,
    kind: RegionKind,
    dict: Option<&[u64]>,
) -> Result<Vec<(u64, u64)>, String> {
    let mut out = Vec::with_capacity(count);
    walk_block_v2(bytes, count, kind, dict, |_, id, bits| {
        out.push((id, bits));
        true
    })?;
    Ok(out)
}

/// Decodes entries `[from, to)` of an open-time-verified v2 block,
/// appending to `out` — the v2 counterpart of [`decode_entries`]. The
/// stream is sequential, so the walk starts at entry 0 regardless of
/// `from`; it stops as soon as `to` entries have been seen. Framing
/// errors are unreachable on checksum-verified bytes (open validated
/// this exact byte run), so they panic like a failed post-open checksum
/// would, rather than plumbing `Result` through the hot path.
pub fn decode_entries_v2(
    bytes: &[u8],
    count: usize,
    from: usize,
    to: usize,
    kind: RegionKind,
    dict: Option<&[u64]>,
    out: &mut Vec<GradedEntry>,
) {
    out.reserve(to - from);
    // Dedicated monomorphized loops rather than [`walk_block_v2`]: the
    // visitor indirection, per-byte varint reads, and per-entry encoding
    // dispatch cost enough to show up on warm full scans, and this path
    // never needs the walker's typed error reporting — open already
    // verified these exact bytes.
    match (kind, dict) {
        (RegionKind::Data, Some(d)) => decode_v2_loop::<true, true>(bytes, count, from, to, d, out),
        (RegionKind::Data, None) => decode_v2_loop::<true, false>(bytes, count, from, to, &[], out),
        (RegionKind::Table, Some(d)) => {
            decode_v2_loop::<false, true>(bytes, count, from, to, d, out)
        }
        (RegionKind::Table, None) => {
            decode_v2_loop::<false, false>(bytes, count, from, to, &[], out)
        }
    }
}

/// The monomorphized body of [`decode_entries_v2`]: one instantiation
/// per (region, dictionary-mode) pair so the encoding dispatch is
/// resolved at compile time and the hot loop is branch-minimal.
#[inline(always)]
fn decode_v2_loop<const DATA: bool, const DICT: bool>(
    bytes: &[u8],
    count: usize,
    from: usize,
    to: usize,
    dict: &[u64],
    out: &mut Vec<GradedEntry>,
) {
    const TAMPERED: &str = "verified v2 block mutated after open";
    let mut off = 0usize;
    let mut prev_id: u64 = 0;
    let mut prev_bits: u64 = 0;
    for i in 0..count.min(to) {
        let raw_id = read_varint_hot(bytes, &mut off).expect(TAMPERED);
        let id = if i == 0 {
            raw_id
        } else if DATA {
            prev_id.wrapping_add(unzigzag(raw_id) as u64)
        } else {
            prev_id.checked_add(raw_id).expect(TAMPERED)
        };
        let bits = if DICT {
            let index = read_varint_hot(bytes, &mut off).expect(TAMPERED);
            *dict.get(index as usize).expect(TAMPERED)
        } else if i == 0 {
            let slot = bytes.get(off..off + 8).expect(TAMPERED);
            off += 8;
            u64::from_le_bytes(slot.try_into().expect("8-byte slot"))
        } else {
            let delta = read_varint_hot(bytes, &mut off).expect(TAMPERED);
            if DATA {
                prev_bits.checked_sub(delta).expect(TAMPERED)
            } else {
                prev_bits.wrapping_add(unzigzag(delta) as u64)
            }
        };
        prev_id = id;
        prev_bits = bits;
        if i >= from {
            out.push(GradedEntry::new(id, Grade::clamped(f64::from_bits(bits))));
        }
    }
}

/// The parsed v2 footer: v1's geometry plus the per-block byte lengths
/// that locate variable-length blocks, the data-region grade fences,
/// and the optional grade dictionary.
#[derive(Debug, Clone)]
pub struct FooterV2 {
    /// Flag bits ([`FLAG_CRISP`], [`FLAG_GRADE_DICT`], ...).
    pub flags: u64,
    /// *Logical* block size in bytes — fixes entries-per-block geometry;
    /// encoded blocks are smaller.
    pub block_size: usize,
    /// Number of graded entries.
    pub num_entries: u64,
    /// Number of entries with grade exactly 1 (the crisp match count).
    pub ones: u64,
    /// Number of data (sorted-order) blocks.
    pub data_blocks: u64,
    /// Number of table (object-order) blocks.
    pub table_blocks: u64,
    /// FNV-1a checksum of every data block's encoded bytes, in order.
    pub data_checksums: Vec<u64>,
    /// FNV-1a checksum of every table block's encoded bytes, in order.
    pub table_checksums: Vec<u64>,
    /// The first object id stored in each table block — the fence index
    /// that routes a random access (or skips a non-matching id range).
    pub table_first_ids: Vec<u64>,
    /// Encoded byte length of every data block, in order.
    pub data_block_lens: Vec<u64>,
    /// Encoded byte length of every table block, in order.
    pub table_block_lens: Vec<u64>,
    /// Grade bits of each data block's first (greatest) entry — the
    /// fence a threshold-hinted scan compares before loading the block.
    pub grade_max_bits: Vec<u64>,
    /// Grade bits of each data block's last (least) entry.
    pub grade_min_bits: Vec<u64>,
    /// Sorted distinct grade bit patterns (dictionary mode only; empty
    /// when [`FLAG_GRADE_DICT`] is clear).
    pub grade_dict: Vec<u64>,
}

impl FooterV2 {
    /// Fixed-length prefix of the v2 footer (all scalar fields).
    const SCALARS: usize = 7 * 8;

    /// Serialized length in bytes (including the trailing self-checksum).
    pub fn encoded_len(&self) -> u64 {
        (Self::SCALARS
            + 8 * (self.data_checksums.len()
                + self.table_checksums.len()
                + self.table_first_ids.len()
                + self.data_block_lens.len()
                + self.table_block_lens.len()
                + self.grade_max_bits.len()
                + self.grade_min_bits.len()
                + self.grade_dict.len())
            + 8) as u64
    }

    /// Serializes the footer, appending its own FNV-1a checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() as usize);
        for v in [
            self.flags,
            self.block_size as u64,
            self.num_entries,
            self.ones,
            self.data_blocks,
            self.table_blocks,
            self.grade_dict.len() as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for list in [
            &self.data_checksums,
            &self.table_checksums,
            &self.table_first_ids,
            &self.data_block_lens,
            &self.table_block_lens,
            &self.grade_max_bits,
            &self.grade_min_bits,
            &self.grade_dict,
        ] {
            for v in list {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses and verifies a serialized v2 footer. Like v1, everything a
    /// forged footer could abuse downstream — geometry, list lengths,
    /// block byte lengths, fence ordering, dictionary shape — is checked
    /// here with overflow-safe arithmetic before any block is read.
    pub fn parse(bytes: &[u8]) -> Result<FooterV2, StorageError> {
        let corrupt = |detail: String| StorageError::FooterCorrupt { detail };
        if bytes.len() < Self::SCALARS + 8 {
            return Err(corrupt(format!("footer too short ({} bytes)", bytes.len())));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        if fnv1a64(body) != read_u64(tail, 0) {
            return Err(corrupt("footer checksum mismatch".to_owned()));
        }
        let flags = read_u64(body, 0);
        let block_size = read_u64(body, 8);
        let num_entries = read_u64(body, 16);
        let ones = read_u64(body, 24);
        let data_blocks = read_u64(body, 32);
        let table_blocks = read_u64(body, 40);
        let dict_len = read_u64(body, 48);
        if block_size == 0
            || block_size > MAX_BLOCK_SIZE as u64
            || !block_size.is_multiple_of(ENTRY_LEN as u64)
        {
            return Err(corrupt(format!("invalid block size {block_size}")));
        }
        if dict_len > GRADE_DICT_MAX as u64 {
            return Err(corrupt(format!(
                "grade dictionary of {dict_len} exceeds the {GRADE_DICT_MAX} cap"
            )));
        }
        let want = [
            data_blocks,
            table_blocks,
            table_blocks,
            data_blocks,
            table_blocks,
            data_blocks,
            data_blocks,
            dict_len,
        ]
        .iter()
        .try_fold(0u64, |acc, &n| acc.checked_add(n))
        .and_then(|v| v.checked_mul(8))
        .and_then(|v| v.checked_add(Self::SCALARS as u64))
        .ok_or_else(|| corrupt("block counts overflow".to_owned()))?;
        if body.len() as u64 != want {
            return Err(corrupt(format!(
                "footer length {} disagrees with block counts {data_blocks}+{table_blocks}",
                bytes.len()
            )));
        }
        let entries_per_block = block_size / ENTRY_LEN as u64;
        let expected_blocks = num_entries.div_ceil(entries_per_block);
        if data_blocks != expected_blocks || table_blocks != expected_blocks {
            return Err(corrupt(format!(
                "{num_entries} entries at {entries_per_block}/block need {expected_blocks} \
                 blocks per region, footer says {data_blocks}/{table_blocks}"
            )));
        }
        let mut off = Self::SCALARS;
        let mut take = |count: u64| {
            let mut out = Vec::with_capacity(count as usize);
            for _ in 0..count {
                out.push(read_u64(body, off));
                off += 8;
            }
            out
        };
        let data_checksums = take(data_blocks);
        let table_checksums = take(table_blocks);
        let table_first_ids = take(table_blocks);
        let data_block_lens = take(data_blocks);
        let table_block_lens = take(table_blocks);
        let grade_max_bits = take(data_blocks);
        let grade_min_bits = take(data_blocks);
        let grade_dict = take(dict_len);
        if !table_first_ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(corrupt("table fence ids not strictly ascending".to_owned()));
        }
        // An encoded block can exceed its logical size only modestly (a
        // worst-case varint entry is 20 bytes vs 16 raw, plus one raw
        // first grade); 2× bounds every read buffer a forged length
        // could request before its checksum is consulted.
        let max_len = 2 * block_size;
        for (region, lens) in [("data", &data_block_lens), ("table", &table_block_lens)] {
            if let Some(bad) = lens.iter().find(|&&len| len == 0 || len > max_len) {
                return Err(corrupt(format!("{region} block length {bad} out of range")));
            }
        }
        let valid_grade_bits = |bits: u64| Grade::new(f64::from_bits(bits)).is_ok();
        for (i, (&max, &min)) in grade_max_bits.iter().zip(&grade_min_bits).enumerate() {
            if !valid_grade_bits(max) || !valid_grade_bits(min) {
                return Err(corrupt(format!("data block {i} grade fence out of [0, 1]")));
            }
            // Non-negative f64 bit patterns order like their values, so
            // fence ordering is a plain integer comparison.
            if max < min {
                return Err(corrupt(format!("data block {i} grade fence inverted")));
            }
            if i + 1 < grade_max_bits.len() && min < grade_max_bits[i + 1] {
                return Err(corrupt(format!(
                    "grade fences of data blocks {i} and {} violate descending order",
                    i + 1
                )));
            }
        }
        let dict_mode = flags & FLAG_GRADE_DICT != 0;
        if dict_mode != (dict_len > 0) && num_entries > 0 {
            return Err(corrupt(format!(
                "dictionary flag {dict_mode} disagrees with dictionary length {dict_len}"
            )));
        }
        if !grade_dict.windows(2).all(|w| w[0] < w[1]) {
            return Err(corrupt(
                "grade dictionary not strictly ascending".to_owned(),
            ));
        }
        if let Some(&bad) = grade_dict.iter().find(|&&bits| !valid_grade_bits(bits)) {
            return Err(corrupt(format!(
                "grade dictionary entry {bad:#x} outside [0, 1]"
            )));
        }
        Ok(FooterV2 {
            flags,
            block_size: block_size as usize,
            num_entries,
            ones,
            data_blocks,
            table_blocks,
            data_checksums,
            table_checksums,
            table_first_ids,
            data_block_lens,
            table_block_lens,
            grade_max_bits,
            grade_min_bits,
            grade_dict,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garlic_core::ObjectId;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn entry_round_trips() {
        let mut slot = [0u8; ENTRY_LEN];
        let entry = GradedEntry::new(ObjectId(42), Grade::new(0.625).unwrap());
        encode_entry(&mut slot, entry);
        assert_eq!(decode_entry(&slot, 0), entry);
    }

    fn footer() -> Footer {
        Footer {
            flags: FLAG_CRISP,
            block_size: 64,
            num_entries: 7,
            ones: 2,
            data_blocks: 2,
            table_blocks: 2,
            data_checksums: vec![1, 2],
            table_checksums: vec![3, 4],
            table_first_ids: vec![0, 9],
        }
    }

    #[test]
    fn footer_round_trips() {
        let f = footer();
        let bytes = f.encode();
        assert_eq!(bytes.len() as u64, f.encoded_len());
        let parsed = Footer::parse(&bytes).unwrap();
        assert_eq!(parsed.num_entries, 7);
        assert_eq!(parsed.ones, 2);
        assert_eq!(parsed.flags, FLAG_CRISP);
        assert_eq!(parsed.data_checksums, vec![1, 2]);
        assert_eq!(parsed.table_first_ids, vec![0, 9]);
    }

    #[test]
    fn footer_detects_flipped_bits() {
        let mut bytes = footer().encode();
        bytes[3] ^= 0x40;
        assert!(matches!(
            Footer::parse(&bytes),
            Err(StorageError::FooterCorrupt { .. })
        ));
    }

    #[test]
    fn footer_rejects_inconsistent_geometry() {
        let mut f = footer();
        f.data_blocks = 3; // 7 entries in 64-byte blocks need exactly 2.
        f.data_checksums.push(5);
        assert!(matches!(
            Footer::parse(&f.encode()),
            Err(StorageError::FooterCorrupt { .. })
        ));
    }

    #[test]
    fn varint_round_trips_and_rejects_truncation() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut off = 0;
            assert_eq!(read_varint(&buf, &mut off), Some(v));
            assert_eq!(off, buf.len());
            // Every strict prefix is a typed truncation, not a panic.
            for cut in 0..buf.len() {
                let mut off = 0;
                assert_eq!(read_varint(&buf[..cut], &mut off), None);
            }
        }
        // An 11-byte continuation run and an overflowing 10th byte both fail.
        let mut off = 0;
        assert_eq!(read_varint(&[0x80; 11], &mut off), None);
        let mut overlong = vec![0x80u8; 9];
        overlong.push(0x02); // would set bit 64
        let mut off = 0;
        assert_eq!(read_varint(&overlong, &mut off), None);
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    fn v2_entries(kind: RegionKind) -> Vec<GradedEntry> {
        let mut entries = vec![
            GradedEntry::new(ObjectId(900), Grade::new(0.875).unwrap()),
            GradedEntry::new(ObjectId(3), Grade::new(0.875).unwrap()),
            GradedEntry::new(ObjectId(u64::MAX - 1), Grade::new(0.5).unwrap()),
            GradedEntry::new(ObjectId(42), Grade::ZERO),
        ];
        if kind == RegionKind::Table {
            entries.sort_by_key(|e| e.object);
        }
        entries
    }

    #[test]
    fn v2_block_round_trips_both_regions_and_modes() {
        for kind in [RegionKind::Data, RegionKind::Table] {
            let entries = v2_entries(kind);
            let mut dict: Vec<u64> = entries.iter().map(|e| e.grade.value().to_bits()).collect();
            dict.sort_unstable();
            dict.dedup();
            for dict in [None, Some(dict.as_slice())] {
                let bytes = encode_block_v2(&entries, kind, dict);
                let raw = decode_block_v2(&bytes, entries.len(), kind, dict).unwrap();
                let decoded: Vec<GradedEntry> = raw
                    .iter()
                    .map(|&(id, bits)| {
                        GradedEntry::new(id, Grade::new(f64::from_bits(bits)).unwrap())
                    })
                    .collect();
                assert_eq!(decoded, entries, "{kind:?} dict={}", dict.is_some());
                let mut partial = Vec::new();
                decode_entries_v2(&bytes, entries.len(), 1, 3, kind, dict, &mut partial);
                assert_eq!(partial, entries[1..3]);
            }
        }
    }

    #[test]
    fn v2_block_decode_flags_framing_corruption() {
        let entries = v2_entries(RegionKind::Data);
        let bytes = encode_block_v2(&entries, RegionKind::Data, None);
        // Every truncation point either fails or yields fewer entries.
        for cut in 0..bytes.len() {
            assert!(
                decode_block_v2(&bytes[..cut], entries.len(), RegionKind::Data, None).is_err(),
                "cut at {cut} must not decode cleanly"
            );
        }
        // Trailing garbage after the last entry is caught too.
        let mut padded = bytes.clone();
        padded.push(0);
        let err = decode_block_v2(&padded, entries.len(), RegionKind::Data, None).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
        // A dictionary index past the dictionary is typed, not a panic.
        let dict = [Grade::HALF.value().to_bits()];
        let two = [
            GradedEntry::new(ObjectId(1), Grade::HALF),
            GradedEntry::new(ObjectId(2), Grade::HALF),
        ];
        let encoded = encode_block_v2(&two, RegionKind::Table, Some(&dict));
        let err = decode_block_v2(&encoded, 2, RegionKind::Table, Some(&[])).unwrap_err();
        assert!(err.contains("dictionary"), "{err}");
    }

    fn footer_v2() -> FooterV2 {
        FooterV2 {
            flags: FLAG_GRADE_DICT,
            block_size: 64,
            num_entries: 7,
            ones: 0,
            data_blocks: 2,
            table_blocks: 2,
            data_checksums: vec![1, 2],
            table_checksums: vec![3, 4],
            table_first_ids: vec![0, 9],
            data_block_lens: vec![17, 11],
            table_block_lens: vec![19, 13],
            grade_max_bits: vec![Grade::ONE.value().to_bits(), Grade::HALF.value().to_bits()],
            grade_min_bits: vec![Grade::HALF.value().to_bits(), Grade::ZERO.value().to_bits()],
            grade_dict: vec![
                Grade::ZERO.value().to_bits(),
                Grade::HALF.value().to_bits(),
                Grade::ONE.value().to_bits(),
            ],
        }
    }

    #[test]
    fn footer_v2_round_trips() {
        let f = footer_v2();
        let bytes = f.encode();
        assert_eq!(bytes.len() as u64, f.encoded_len());
        let parsed = FooterV2::parse(&bytes).unwrap();
        assert_eq!(parsed.num_entries, 7);
        assert_eq!(parsed.data_block_lens, vec![17, 11]);
        assert_eq!(parsed.grade_max_bits, f.grade_max_bits);
        assert_eq!(parsed.grade_dict, f.grade_dict);
    }

    #[test]
    fn footer_v2_rejects_forgeries() {
        type Forgery = (&'static str, fn(&mut FooterV2));
        let checks: [Forgery; 6] = [
            ("inverted fence", |f| {
                f.grade_max_bits[0] = Grade::ZERO.value().to_bits()
            }),
            ("fence outside [0, 1]", |f| {
                f.grade_min_bits[1] = f64::to_bits(2.0)
            }),
            ("fences out of descending order", |f| {
                f.grade_min_bits[0] = Grade::ZERO.value().to_bits();
                f.grade_max_bits[1] = Grade::ONE.value().to_bits();
            }),
            ("zero block length", |f| f.data_block_lens[1] = 0),
            ("oversized block length", |f| {
                f.table_block_lens[0] = (3 * f.block_size) as u64
            }),
            ("unsorted dictionary", |f| f.grade_dict.swap(0, 1)),
        ];
        for (what, tweak) in checks {
            let mut f = footer_v2();
            tweak(&mut f);
            assert!(
                matches!(
                    FooterV2::parse(&f.encode()),
                    Err(StorageError::FooterCorrupt { .. })
                ),
                "forged v2 footer accepted: {what}"
            );
        }
        let mut bytes = footer_v2().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(matches!(
            FooterV2::parse(&bytes),
            Err(StorageError::FooterCorrupt { .. })
        ));
    }

    #[test]
    fn block_size_must_be_entry_multiple() {
        assert!(check_block_size(4096).is_ok());
        assert!(check_block_size(16).is_ok());
        assert!(matches!(
            check_block_size(0),
            Err(StorageError::InvalidBlockSize { requested: 0 })
        ));
        assert!(matches!(
            check_block_size(100),
            Err(StorageError::InvalidBlockSize { requested: 100 })
        ));
    }
}
