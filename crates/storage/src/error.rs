//! Typed errors for segment I/O.
//!
//! Opening a segment is the trust boundary of the storage layer: everything
//! the middleware later does through [`crate::SegmentSource`] assumes the
//! file was verified here. A corrupted, truncated, or foreign file must
//! therefore fail `open` with an error precise enough for an operator to
//! act on (re-replicate the segment, rebuild it, page someone), never with
//! a panic or a silently wrong graded list.

use std::fmt;
use std::path::PathBuf;

use garlic_core::ObjectId;

/// Everything that can go wrong while writing or opening a segment file.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// The file does not start (or end) with the segment magic — it is not
    /// a segment file at all.
    BadMagic,
    /// The file is a segment, but of a format version this build cannot
    /// read — either from a future writer or (for a hypothetical reader
    /// compiled without the legacy path) an ancient one. Both sides of
    /// the mismatch are named so an operator knows which binary or
    /// which file to upgrade.
    UnsupportedVersion {
        /// The version recorded in the file.
        found: u32,
        /// The oldest version this build reads.
        oldest_supported: u32,
        /// The newest version this build reads.
        newest_supported: u32,
    },
    /// The file is shorter than its own metadata says it must be —
    /// typically a partial copy or an interrupted write.
    Truncated {
        /// How many bytes the metadata requires.
        expected: u64,
        /// How many bytes the file actually has.
        actual: u64,
    },
    /// The footer failed its checksum or is internally inconsistent.
    FooterCorrupt {
        /// What exactly disagreed.
        detail: String,
    },
    /// A data or table block's stored checksum does not match its bytes.
    ChecksumMismatch {
        /// The file-wide block number (data blocks first, then table
        /// blocks).
        block: u64,
    },
    /// The data (sorted-order) and table (object-order) regions do not
    /// hold the same entries — each region is internally consistent, but
    /// sorted access and random access would disagree.
    RegionMismatch,
    /// A block passed its checksum but holds invalid content (a grade
    /// outside `[0, 1]`/NaN, or entries violating the sort order the
    /// region promises) — the writer that produced it was broken.
    CorruptBlock {
        /// The file-wide block number.
        block: u64,
        /// What the block violated.
        detail: String,
    },
    /// The requested block size is not a positive multiple of the entry
    /// size.
    InvalidBlockSize {
        /// The rejected value.
        requested: usize,
    },
    /// The writer was given the same object twice.
    DuplicateObject {
        /// The object graded more than once.
        object: ObjectId,
        /// The segment path the write was destined for — named so an
        /// operator can tell *which* build of *which* attribute fed the
        /// duplicate, matching the parser's exact-location error style.
        path: PathBuf,
    },
    /// A write-ahead log file is unreadable beyond crash semantics: its
    /// header is damaged or it is not a WAL file at all. (A torn *tail* is
    /// not an error — recovery truncates it to the committed prefix.)
    WalCorrupt {
        /// What exactly was wrong.
        detail: String,
    },
    /// The live store's manifest failed its checksum or is internally
    /// inconsistent — the store cannot say which files are current, so
    /// opening refuses rather than guessing.
    ManifestCorrupt {
        /// What exactly was wrong.
        detail: String,
    },
    /// The segment exhausted its I/O retry budget earlier and was
    /// quarantined: every further read fails fast with this error until
    /// the source is reopened, so one bad disk cannot stall queries in
    /// retry loops.
    Quarantined {
        /// The quarantined segment file.
        path: PathBuf,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "segment I/O error: {e}"),
            StorageError::BadMagic => write!(f, "not a segment file (bad magic)"),
            StorageError::UnsupportedVersion {
                found,
                oldest_supported,
                newest_supported,
            } => {
                write!(
                    f,
                    "unsupported segment format version {found}: this build reads \
                     versions {oldest_supported} through {newest_supported}"
                )
            }
            StorageError::Truncated { expected, actual } => write!(
                f,
                "segment truncated: need {expected} bytes, file has {actual}"
            ),
            StorageError::FooterCorrupt { detail } => write!(f, "segment footer corrupt: {detail}"),
            StorageError::ChecksumMismatch { block } => {
                write!(f, "checksum mismatch in segment block {block}")
            }
            StorageError::RegionMismatch => {
                write!(f, "segment data and table regions hold different entries")
            }
            StorageError::CorruptBlock { block, detail } => {
                write!(f, "segment block {block} corrupt: {detail}")
            }
            StorageError::InvalidBlockSize { requested } => write!(
                f,
                "invalid block size {requested}: must be a positive multiple of the 16-byte entry"
            ),
            StorageError::DuplicateObject { object, path } => {
                write!(
                    f,
                    "object {object} graded twice in segment input for {}",
                    path.display()
                )
            }
            StorageError::WalCorrupt { detail } => {
                write!(f, "write-ahead log corrupt: {detail}")
            }
            StorageError::ManifestCorrupt { detail } => {
                write!(f, "live-store manifest corrupt: {detail}")
            }
            StorageError::Quarantined { path } => {
                write!(
                    f,
                    "segment {} is quarantined after exhausting its I/O retry budget",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = StorageError::Truncated {
            expected: 100,
            actual: 7,
        };
        assert!(format!("{e}").contains("need 100 bytes"));
        let e = StorageError::ChecksumMismatch { block: 3 };
        assert!(format!("{e}").contains("block 3"));
        let e = StorageError::DuplicateObject {
            object: ObjectId(9),
            path: PathBuf::from("/data/color.seg"),
        };
        let message = format!("{e}");
        assert!(message.contains("#9"));
        assert!(
            message.contains("/data/color.seg"),
            "the duplicate-object error names the destination path: {message}"
        );
        let e = StorageError::ManifestCorrupt {
            detail: "checksum mismatch".into(),
        };
        assert!(format!("{e}").contains("manifest"));
    }

    #[test]
    fn io_errors_lift_and_chain() {
        let e: StorageError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
