//! The live store's versioned manifest: which files are current.
//!
//! A [`crate::live::LiveSource`] directory holds one `MANIFEST` file, any
//! number of sealed and active WAL files, and at most one base segment.
//! The manifest is the single source of truth tying them together: it
//! names the base segment (if any), lists the WAL files in replay order,
//! and carries a monotonically increasing **epoch** — bumped by every
//! freeze and every compaction swap, and pinned by snapshots so a reader
//! can tell exactly which store state it observes.
//!
//! The manifest is replaced **atomically**, the same way segments are
//! published: all bytes go to a `MANIFEST.tmp` sibling, the file is
//! fsynced, renamed over `MANIFEST`, and the directory fsynced. A crash
//! therefore always leaves either the old manifest or the new one — never
//! a torn mix — and any file the surviving manifest does not reference is
//! garbage the next open collects.
//!
//! Corruption (bad magic, failed checksum, inconsistent structure) is a
//! typed [`StorageError::ManifestCorrupt`]: the store refuses to guess
//! which files are current, never silently serving a stale or partial
//! state.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::StorageError;
use crate::format::fnv1a64;
use crate::vfs::{std_vfs, Vfs};
use crate::wal::sync_parent_dir;

/// The 8-byte magic the manifest starts with.
pub const MANIFEST_MAGIC: [u8; 8] = *b"GRLCMAN1";

/// The manifest encoding version this build reads and writes.
pub const MANIFEST_VERSION: u32 = 1;

/// The manifest's file name inside a live-store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// The decoded manifest: the live store's current file set and epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Store state counter: bumped on every freeze and every compaction
    /// swap. Snapshots pin the epoch they were built against.
    pub epoch: u64,
    /// Allocator for on-disk file names (`wal-<id>.wal`, `seg-<id>.seg`):
    /// the next unused id. Persisted so a recovered store never reuses a
    /// name that an in-flight crash may have left behind.
    pub next_file_id: u64,
    /// File name of the current base segment inside the store directory,
    /// or `None` before the first compaction (or after a delete-everything
    /// compaction).
    pub segment: Option<String>,
    /// WAL file names in replay order, oldest first. The last entry is the
    /// active log; earlier entries back frozen memtables awaiting
    /// compaction.
    pub wals: Vec<String>,
}

impl Manifest {
    /// The manifest a brand-new store starts from: epoch 0, no segment,
    /// one (not yet created) WAL named from id 0.
    pub fn initial() -> Manifest {
        Manifest {
            epoch: 0,
            next_file_id: 1,
            segment: None,
            wals: vec![file_name_for(0, "wal")],
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.next_file_id.to_le_bytes());
        let segment = self.segment.as_deref().unwrap_or("");
        out.extend_from_slice(&(segment.len() as u32).to_le_bytes());
        out.extend_from_slice(segment.as_bytes());
        out.extend_from_slice(&(self.wals.len() as u32).to_le_bytes());
        for wal in &self.wals {
            out.extend_from_slice(&(wal.len() as u32).to_le_bytes());
            out.extend_from_slice(wal.as_bytes());
        }
        let crc = fnv1a64(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Atomically replaces the manifest in `dir` with this value
    /// (tmp sibling + fsync + rename + directory fsync).
    pub fn store(&self, dir: &Path) -> Result<(), StorageError> {
        self.store_with(dir, &std_vfs())
    }

    /// [`store`](Manifest::store) through an explicit [`Vfs`].
    pub fn store_with(&self, dir: &Path, vfs: &Arc<dyn Vfs>) -> Result<(), StorageError> {
        let path = dir.join(MANIFEST_NAME);
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        let mut file = vfs.create(&tmp)?;
        file.write_all(&self.encode())?;
        file.sync_all()?;
        drop(file);
        vfs.rename(&tmp, &path)?;
        sync_parent_dir(vfs.as_ref(), &path)?;
        Ok(())
    }

    /// Loads and verifies the manifest in `dir`. A missing file surfaces
    /// as `Io(NotFound)` (a fresh store); anything unreadable is a typed
    /// [`StorageError::ManifestCorrupt`].
    pub fn load(dir: &Path) -> Result<Manifest, StorageError> {
        Manifest::load_with(dir, &std_vfs())
    }

    /// [`load`](Manifest::load) through an explicit [`Vfs`].
    pub fn load_with(dir: &Path, vfs: &Arc<dyn Vfs>) -> Result<Manifest, StorageError> {
        let bytes = {
            let file = vfs.open_read(&dir.join(MANIFEST_NAME))?;
            let len = file.len()?;
            let mut bytes = vec![0u8; len as usize];
            file.read_exact_at(&mut bytes, 0)?;
            bytes
        };
        let corrupt = |detail: &str| StorageError::ManifestCorrupt {
            detail: detail.to_owned(),
        };
        if bytes.len() < MANIFEST_MAGIC.len() + 4 + 8 + 8 + 4 + 4 + 8 {
            return Err(corrupt("file shorter than the fixed fields"));
        }
        if bytes[..8] != MANIFEST_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let stored_crc = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        if fnv1a64(&bytes[..bytes.len() - 8]) != stored_crc {
            return Err(corrupt("checksum mismatch"));
        }
        let body = &bytes[..bytes.len() - 8];
        let mut off = 8usize;
        let read_u32 = |off: &mut usize| -> Result<u32, StorageError> {
            let end = off.checked_add(4).filter(|&e| e <= body.len());
            let end = end.ok_or_else(|| corrupt("truncated field"))?;
            let v = u32::from_le_bytes(body[*off..end].try_into().expect("4 bytes"));
            *off = end;
            Ok(v)
        };
        let read_u64 = |off: &mut usize| -> Result<u64, StorageError> {
            let end = off.checked_add(8).filter(|&e| e <= body.len());
            let end = end.ok_or_else(|| corrupt("truncated field"))?;
            let v = u64::from_le_bytes(body[*off..end].try_into().expect("8 bytes"));
            *off = end;
            Ok(v)
        };
        let read_name = |off: &mut usize, len: usize| -> Result<String, StorageError> {
            let end = off.checked_add(len).filter(|&e| e <= body.len());
            let end = end.ok_or_else(|| corrupt("name runs past the file"))?;
            let name =
                std::str::from_utf8(&body[*off..end]).map_err(|_| corrupt("name is not UTF-8"))?;
            if name.contains('/') || name.contains('\\') {
                return Err(corrupt("name escapes the store directory"));
            }
            *off = end;
            Ok(name.to_owned())
        };
        let version = read_u32(&mut off)?;
        if version != MANIFEST_VERSION {
            return Err(corrupt(&format!("unsupported manifest version {version}")));
        }
        let epoch = read_u64(&mut off)?;
        let next_file_id = read_u64(&mut off)?;
        let segment_len = read_u32(&mut off)? as usize;
        let segment = if segment_len == 0 {
            None
        } else {
            Some(read_name(&mut off, segment_len)?)
        };
        let wal_count = read_u32(&mut off)? as usize;
        if wal_count == 0 {
            return Err(corrupt("a live store always has an active WAL"));
        }
        if wal_count > 1 << 20 {
            return Err(corrupt("implausible WAL count"));
        }
        let mut wals = Vec::with_capacity(wal_count);
        for _ in 0..wal_count {
            let len = read_u32(&mut off)? as usize;
            wals.push(read_name(&mut off, len)?);
        }
        if off != body.len() {
            return Err(corrupt("trailing bytes after the WAL list"));
        }
        Ok(Manifest {
            epoch,
            next_file_id,
            segment,
            wals,
        })
    }
}

/// The canonical file name for id `id` with extension `ext` inside a
/// live-store directory.
pub(crate) fn file_name_for(id: u64, ext: &str) -> String {
    format!("{ext}-{id:06}.{ext}")
}

/// The set of file names a manifest references (besides `MANIFEST`
/// itself).
pub(crate) fn referenced_files(manifest: &Manifest) -> Vec<String> {
    let mut names: Vec<String> = manifest.wals.clone();
    if let Some(seg) = &manifest.segment {
        names.push(seg.clone());
    }
    names
}

/// Deletes every regular file in `dir` that neither is the manifest nor is
/// referenced by it — the orphans a crash mid-freeze or mid-compaction can
/// leave behind (stale tmp files, unreferenced segments, sealed WALs whose
/// compaction published before the crash).
pub(crate) fn collect_garbage(
    dir: &Path,
    manifest: &Manifest,
    vfs: &Arc<dyn Vfs>,
) -> Result<Vec<PathBuf>, StorageError> {
    let keep = referenced_files(manifest);
    let mut removed = Vec::new();
    for path in vfs.read_dir(dir)? {
        if !path.is_file() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name == MANIFEST_NAME || keep.iter().any(|k| k == name) {
            continue;
        }
        let known_kind = name.ends_with(".wal") || name.ends_with(".seg") || name.ends_with(".tmp");
        if !known_kind {
            continue;
        }
        vfs.remove_file(&path)?;
        removed.push(path);
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("garlic-storage-manifest-{}", std::process::id()))
            .join(name);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = temp_dir("roundtrip");
        let manifest = Manifest {
            epoch: 7,
            next_file_id: 12,
            segment: Some("seg-000003.seg".into()),
            wals: vec!["wal-000010.wal".into(), "wal-000011.wal".into()],
        };
        manifest.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), manifest);
        // Replacing is atomic: no tmp sibling survives.
        assert!(!dir.join("MANIFEST.tmp").exists());
    }

    #[test]
    fn missing_manifest_is_not_found() {
        let dir = temp_dir("missing");
        match Manifest::load(&dir) {
            Err(StorageError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let dir = temp_dir("corrupt");
        Manifest::initial().store(&dir).unwrap();
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Manifest::load(&dir),
            Err(StorageError::ManifestCorrupt { .. })
        ));
        // Truncation too.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(
            Manifest::load(&dir),
            Err(StorageError::ManifestCorrupt { .. })
        ));
    }

    #[test]
    fn garbage_collection_spares_referenced_files() {
        let dir = temp_dir("gc");
        let manifest = Manifest {
            epoch: 1,
            next_file_id: 3,
            segment: Some(file_name_for(1, "seg")),
            wals: vec![file_name_for(2, "wal")],
        };
        manifest.store(&dir).unwrap();
        for name in [
            file_name_for(1, "seg"),
            file_name_for(2, "wal"),
            file_name_for(0, "wal"),     // orphaned sealed WAL
            "seg-000000.seg".to_owned(), // orphaned old segment
            "seg-000009.seg.tmp".to_owned(),
            "notes.txt".to_owned(), // foreign file: untouched
        ] {
            fs::write(dir.join(&name), b"x").unwrap();
        }
        let removed = collect_garbage(&dir, &manifest, &std_vfs()).unwrap();
        assert_eq!(removed.len(), 3);
        assert!(dir.join(file_name_for(1, "seg")).exists());
        assert!(dir.join(file_name_for(2, "wal")).exists());
        assert!(dir.join("notes.txt").exists());
        assert!(!dir.join(file_name_for(0, "wal")).exists());
    }
}
