//! The write-ahead log: durability for the live write path.
//!
//! Every mutation of a [`crate::live::LiveSource`] is appended here —
//! checksummed and fsynced — *before* it touches the memtable, so a crash
//! at any instant loses nothing that was acknowledged. The log is the only
//! mutable file in the storage layer, and it is only ever mutated two
//! ways: appending a record at the end, and truncating a torn tail off
//! during recovery.
//!
//! # Record format
//!
//! The file starts with the 8-byte magic [`WAL_MAGIC`]; after that it is a
//! sequence of self-delimiting records, one per acknowledged append batch:
//!
//! ```text
//! [payload_len: u32 LE] [seq: u64 LE] [payload: payload_len bytes] [crc: u64 LE]
//! ```
//!
//! `crc` is [`fnv1a64`] over everything before it (length, sequence
//! number, and payload), and `seq` increments by one per record — a stale
//! or spliced record fails the sequence check even if its checksum holds.
//! The payload is a varint op count followed by the ops: tag byte `0`
//! (upsert: varint object id + 8 raw grade bits) or `1` (tombstone
//! delete: varint object id).
//!
//! # Fsync points and recovery rules
//!
//! [`Wal::append`] writes the record and calls `sync_data` before
//! returning — acknowledgement *is* durability. Creation syncs the header
//! and the containing directory. Recovery ([`Wal::open`]) replays records
//! from the front and stops at the first invalid one — short length,
//! checksum mismatch, wrong sequence number, or undecodable payload — then
//! truncates the file to that committed prefix. A damaged *header* is not
//! a crash artifact (the header is written and synced before the first
//! append is acknowledged), so it is a typed [`StorageError::WalCorrupt`],
//! never a silent empty log.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use garlic_agg::Grade;
use garlic_core::ObjectId;

use crate::error::StorageError;
use crate::format::{fnv1a64, read_varint, write_varint};
use crate::vfs::{std_vfs, Vfs, VfsFile};

/// The 8-byte file magic every WAL starts with.
pub const WAL_MAGIC: [u8; 8] = *b"GRLCWAL1";

/// Per-record framing overhead: length (4) + sequence (8) + checksum (8).
const RECORD_OVERHEAD: usize = 20;

/// The largest payload a reader will believe. Generous (a batch of a
/// million upserts fits), but small enough that a corrupted length field
/// cannot make recovery attempt a multi-gigabyte allocation.
const MAX_PAYLOAD: u32 = 64 << 20;

const TAG_UPSERT: u8 = 0;
const TAG_DELETE: u8 = 1;

/// One logged mutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalOp {
    /// Insert or overwrite one object's grade.
    Upsert {
        /// The object written.
        object: ObjectId,
        /// Its new grade.
        grade: Grade,
    },
    /// Tombstone: remove the object from the graded set.
    Delete {
        /// The object removed.
        object: ObjectId,
    },
}

impl WalOp {
    /// The object this op touches.
    pub fn object(&self) -> ObjectId {
        match *self {
            WalOp::Upsert { object, .. } | WalOp::Delete { object } => object,
        }
    }
}

/// An open, append-only write-ahead log (see the module docs for the
/// format, fsync, and recovery rules).
pub struct Wal {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    /// Sequence number of the next record.
    next_seq: u64,
    /// Committed length in bytes — everything before this offset has been
    /// written and fsynced; the next record goes here.
    committed: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("next_seq", &self.next_seq)
            .field("committed", &self.committed)
            .finish()
    }
}

impl Wal {
    /// Creates a fresh, empty log at `path` (truncating anything there),
    /// writing and syncing the header — and the containing directory, so
    /// the file itself survives a crash.
    pub fn create(path: &Path) -> Result<Wal, StorageError> {
        Wal::create_with(path, &std_vfs())
    }

    /// [`create`](Wal::create) through an explicit [`Vfs`].
    pub fn create_with(path: &Path, vfs: &Arc<dyn Vfs>) -> Result<Wal, StorageError> {
        let mut file = vfs.create(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.sync_all()?;
        sync_parent_dir(vfs.as_ref(), path)?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            next_seq: 1,
            committed: WAL_MAGIC.len() as u64,
        })
    }

    /// Opens the log at `path`, replaying every committed record into
    /// `ops` and truncating any torn tail (see the module docs for what
    /// counts as torn). After `open` the log is ready for appends.
    pub fn open(path: &Path, ops: &mut Vec<WalOp>) -> Result<Wal, StorageError> {
        Wal::open_with(path, ops, &std_vfs())
    }

    /// [`open`](Wal::open) through an explicit [`Vfs`].
    pub fn open_with(
        path: &Path,
        ops: &mut Vec<WalOp>,
        vfs: &Arc<dyn Vfs>,
    ) -> Result<Wal, StorageError> {
        let mut file = vfs.open_rw(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            // A crash between file creation and the header sync can leave
            // an empty file: re-initialise it as a fresh log.
            file.write_all(&WAL_MAGIC)?;
            file.sync_all()?;
            return Ok(Wal {
                file,
                path: path.to_path_buf(),
                next_seq: 1,
                committed: WAL_MAGIC.len() as u64,
            });
        }
        if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(StorageError::WalCorrupt {
                detail: format!("bad header magic in {}", path.display()),
            });
        }
        let mut offset = WAL_MAGIC.len();
        let mut next_seq = 1u64;
        while let Some((record_ops, record_len)) = decode_record(&bytes[offset..], next_seq) {
            ops.extend(record_ops);
            offset += record_len;
            next_seq += 1;
        }
        if offset as u64 != bytes.len() as u64 {
            // Torn or corrupt tail: discard it so the next append lands
            // directly after the committed prefix.
            file.set_len(offset as u64)?;
            file.sync_all()?;
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            next_seq,
            committed: offset as u64,
        })
    }

    /// Appends one record holding `ops` and fsyncs it — on return the
    /// batch is durable. An empty batch is a no-op.
    pub fn append(&mut self, ops: &[WalOp]) -> Result<(), StorageError> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(ops.len() * 12);
        write_varint(&mut payload, ops.len() as u64);
        for op in ops {
            match *op {
                WalOp::Upsert { object, grade } => {
                    payload.push(TAG_UPSERT);
                    write_varint(&mut payload, object.0);
                    payload.extend_from_slice(&grade.value().to_bits().to_le_bytes());
                }
                WalOp::Delete { object } => {
                    payload.push(TAG_DELETE);
                    write_varint(&mut payload, object.0);
                }
            }
        }
        let mut record = Vec::with_capacity(payload.len() + RECORD_OVERHEAD);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&self.next_seq.to_le_bytes());
        record.extend_from_slice(&payload);
        let crc = fnv1a64(&record);
        record.extend_from_slice(&crc.to_le_bytes());

        // Commit point: `committed`/`next_seq` advance only after the
        // sync, so a failed write or fsync leaves a torn tail the next
        // append (or recovery) simply overwrites.
        self.file.seek_to(self.committed)?;
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        self.committed += record.len() as u64;
        self.next_seq += 1;
        Ok(())
    }

    /// Committed bytes on disk — header plus every acknowledged record.
    pub fn committed_bytes(&self) -> u64 {
        self.committed
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Decodes one record from the front of `bytes`, validating framing,
/// checksum, sequence number, and payload. `None` means the record is torn
/// or corrupt and replay must stop here.
fn decode_record(bytes: &[u8], expected_seq: u64) -> Option<(Vec<WalOp>, usize)> {
    if bytes.len() < RECORD_OVERHEAD {
        return None;
    }
    let payload_len = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    if payload_len > MAX_PAYLOAD as usize || bytes.len() < RECORD_OVERHEAD + payload_len {
        return None;
    }
    let seq = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
    if seq != expected_seq {
        return None;
    }
    let crc_offset = 12 + payload_len;
    let stored = u64::from_le_bytes(bytes[crc_offset..crc_offset + 8].try_into().ok()?);
    if fnv1a64(&bytes[..crc_offset]) != stored {
        return None;
    }
    let payload = &bytes[12..crc_offset];
    let mut off = 0usize;
    let count = read_varint(payload, &mut off)?;
    let mut ops = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let tag = *payload.get(off)?;
        off += 1;
        let object = ObjectId(read_varint(payload, &mut off)?);
        match tag {
            TAG_UPSERT => {
                let grade_bytes: [u8; 8] = payload.get(off..off + 8)?.try_into().ok()?;
                off += 8;
                let grade = Grade::new(f64::from_bits(u64::from_le_bytes(grade_bytes))).ok()?;
                ops.push(WalOp::Upsert { object, grade });
            }
            TAG_DELETE => ops.push(WalOp::Delete { object }),
            _ => return None,
        }
    }
    if off != payload.len() {
        return None;
    }
    Some((ops, RECORD_OVERHEAD + payload_len))
}

/// Fsyncs the directory containing `path`, making a create/rename of the
/// file itself durable.
pub(crate) fn sync_parent_dir(vfs: &dyn Vfs, path: &Path) -> Result<(), StorageError> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        vfs.sync_dir(dir)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultKind, FaultOp, FaultRule, FaultVfs};
    use std::fs::OpenOptions;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn up(id: u64, v: f64) -> WalOp {
        WalOp::Upsert {
            object: ObjectId(id),
            grade: g(v),
        }
    }

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("garlic-storage-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trips_batches_across_reopen() {
        let path = temp_wal("roundtrip.wal");
        let mut wal = Wal::create(&path).unwrap();
        let first = vec![
            WalOp::Upsert {
                object: ObjectId(3),
                grade: g(0.5),
            },
            WalOp::Delete {
                object: ObjectId(7),
            },
        ];
        let second = vec![WalOp::Upsert {
            object: ObjectId(1),
            grade: g(1.0),
        }];
        wal.append(&first).unwrap();
        wal.append(&second).unwrap();
        drop(wal);

        let mut ops = Vec::new();
        let wal = Wal::open(&path, &mut ops).unwrap();
        let expected: Vec<WalOp> = first.iter().chain(&second).copied().collect();
        assert_eq!(ops, expected);
        assert_eq!(
            wal.committed_bytes(),
            std::fs::metadata(&path).unwrap().len()
        );
    }

    #[test]
    fn appends_resume_after_recovery() {
        let path = temp_wal("resume.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&[WalOp::Delete {
            object: ObjectId(2),
        }])
        .unwrap();
        drop(wal);
        let mut ops = Vec::new();
        let mut wal = Wal::open(&path, &mut ops).unwrap();
        wal.append(&[WalOp::Upsert {
            object: ObjectId(9),
            grade: g(0.25),
        }])
        .unwrap();
        drop(wal);
        let mut ops = Vec::new();
        Wal::open(&path, &mut ops).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[1].object(), ObjectId(9));
    }

    #[test]
    fn torn_tail_is_truncated_to_the_committed_prefix() {
        let path = temp_wal("torn.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&[WalOp::Upsert {
            object: ObjectId(1),
            grade: g(0.5),
        }])
        .unwrap();
        let committed = wal.committed_bytes();
        wal.append(&[WalOp::Upsert {
            object: ObjectId(2),
            grade: g(0.75),
        }])
        .unwrap();
        drop(wal);
        // Tear the second record: cut it 3 bytes short.
        let full = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 3).unwrap();
        drop(file);

        let mut ops = Vec::new();
        let wal = Wal::open(&path, &mut ops).unwrap();
        assert_eq!(ops.len(), 1, "only the committed prefix survives");
        assert_eq!(ops[0].object(), ObjectId(1));
        assert_eq!(wal.committed_bytes(), committed);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed);
    }

    #[test]
    fn bit_flip_in_a_record_stops_replay_there() {
        let path = temp_wal("flip.wal");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..3 {
            wal.append(&[WalOp::Upsert {
                object: ObjectId(i),
                grade: g(0.5),
            }])
            .unwrap();
        }
        let after_first = {
            // Record boundaries: replay one record's length by re-reading.
            let bytes = std::fs::read(&path).unwrap();
            let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as u64;
            8 + 20 + len
        };
        let mut bytes = std::fs::read(&path).unwrap();
        let target = after_first as usize + 14; // inside the second record
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let mut ops = Vec::new();
        Wal::open(&path, &mut ops).unwrap();
        assert_eq!(ops.len(), 1, "replay stops at the first damaged record");
    }

    #[test]
    fn damaged_header_is_a_typed_error() {
        let path = temp_wal("badheader.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&[WalOp::Delete {
            object: ObjectId(0),
        }])
        .unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[2] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut ops = Vec::new();
        assert!(matches!(
            Wal::open(&path, &mut ops),
            Err(StorageError::WalCorrupt { .. })
        ));
    }

    /// Satellite of the fault-injection work: an fsync that fails on the
    /// Nth append must (1) surface as a typed error, (2) not acknowledge
    /// the batch, and (3) leave the tail clean enough that both a retry
    /// and crash-recovery behave exactly as if the append never happened.
    #[test]
    fn failed_fsync_append_is_typed_and_retryable() {
        let path = temp_wal("fsync-retry.wal");
        let fault = FaultVfs::new();
        fault.push_rule(FaultRule {
            path_contains: "fsync-retry.wal".to_owned(),
            op: FaultOp::Sync,
            // Matching sync ops on this path: header sync_all (#0), first
            // append sync_data (#1), second append sync_data (#2).
            nth: 2,
            kind: FaultKind::Transient { times: 1 },
        });
        let vfs: Arc<dyn Vfs> = Arc::new(fault);
        let mut wal = Wal::create_with(&path, &vfs).unwrap();
        wal.append(&[up(1, 0.5)]).unwrap();
        let committed = wal.committed_bytes();

        let err = wal.append(&[up(2, 0.75)]).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "{err}");
        assert_eq!(
            wal.committed_bytes(),
            committed,
            "a failed append is not acknowledged"
        );

        // The torn bytes sit past the committed offset; a retry simply
        // overwrites them.
        wal.append(&[up(2, 0.75)]).unwrap();
        drop(wal);
        let mut ops = Vec::new();
        Wal::open(&path, &mut ops).unwrap();
        assert_eq!(ops, vec![up(1, 0.5), up(2, 0.75)]);
    }

    /// Crash right after the failed fsync (no retry): recovery replays
    /// exactly the acknowledged prefix and truncates the unacknowledged
    /// record that reached the page cache but never synced.
    #[test]
    fn acknowledged_upserts_survive_a_crash_after_failed_fsync() {
        let path = temp_wal("fsync-crash.wal");
        let fault = FaultVfs::new();
        fault.push_rule(FaultRule {
            path_contains: "fsync-crash.wal".to_owned(),
            op: FaultOp::Sync,
            nth: 2,
            kind: FaultKind::Permanent,
        });
        let vfs: Arc<dyn Vfs> = Arc::new(fault);
        let mut wal = Wal::create_with(&path, &vfs).unwrap();
        wal.append(&[up(1, 0.5)]).unwrap();
        let committed = wal.committed_bytes();
        wal.append(&[up(2, 0.75)]).unwrap_err();
        drop(wal); // crash
                   // The failed fsync means those bytes carry no durability promise;
                   // model the worst case by dropping everything past the committed
                   // offset, as a real power cut would.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(committed).unwrap();
        drop(file);

        let mut ops = Vec::new();
        let recovered = Wal::open(&path, &mut ops).unwrap();
        assert_eq!(ops, vec![up(1, 0.5)], "only acknowledged ops replay");
        assert_eq!(recovered.committed_bytes(), committed);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed);
    }

    #[test]
    fn empty_file_reinitialises_as_fresh() {
        let path = temp_wal("empty.wal");
        std::fs::write(&path, b"").unwrap();
        let mut ops = Vec::new();
        let mut wal = Wal::open(&path, &mut ops).unwrap();
        assert!(ops.is_empty());
        wal.append(&[WalOp::Upsert {
            object: ObjectId(5),
            grade: g(1.0),
        }])
        .unwrap();
        drop(wal);
        let mut ops = Vec::new();
        Wal::open(&path, &mut ops).unwrap();
        assert_eq!(ops.len(), 1);
    }
}
