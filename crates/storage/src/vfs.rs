//! The virtual filesystem seam: every byte the storage layer moves goes
//! through a [`Vfs`].
//!
//! Production code runs on [`StdVfs`] — thin, zero-overhead wrappers over
//! `std::fs` (positioned reads are `pread` on Unix, so concurrent cache
//! misses still read in parallel). Tests and the chaos suite swap in a
//! [`FaultVfs`], which wraps any inner Vfs and injects *deterministic*
//! faults from a per-path plan: transient or permanent EIO on the Nth
//! matching operation, torn (short) writes, fsync failures, and latency.
//! Determinism is the point — a failing chaos schedule replays exactly,
//! and the retry/quarantine machinery upstream can be tested operation by
//! operation.
//!
//! The traits are deliberately narrow: exactly the operations the segment
//! reader/writer, WAL, manifest, and compactor actually perform. Anything
//! not on this seam (directory creation in test setup, say) is not part of
//! the failure model.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// A filesystem implementation the storage layer runs on.
///
/// All methods operate on whole paths; per-file I/O happens through the
/// [`VfsRead`] / [`VfsFile`] handles the open methods return.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Opens `path` for positioned reads.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsRead>>;
    /// Creates (or truncates) `path` for read+write.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing `path` for read+write without truncating.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs the directory at `dir`, making renames/creates in it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Lists the entries of directory `dir`.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// A read-only file handle supporting concurrent positioned reads.
// `len` is fallible (it stats the file), so a conventional `is_empty`
// counterpart would be a second fallible syscall, not a cheap predicate.
#[allow(clippy::len_without_is_empty)]
pub trait VfsRead: Send + Sync {
    /// The file's current length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// Fills `buf` from byte `offset`, erroring on short reads.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()>;
}

/// A writable file handle with an explicit cursor.
pub trait VfsFile: Send {
    /// Reads from the cursor to the end of the file.
    fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<usize>;
    /// Moves the cursor to byte `offset`.
    fn seek_to(&mut self, offset: u64) -> io::Result<()>;
    /// Writes all of `buf` at the cursor, advancing it.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Flushes file *data* to stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flushes file data and metadata to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The shared production Vfs (see [`StdVfs`]).
pub fn std_vfs() -> Arc<dyn Vfs> {
    Arc::new(StdVfs)
}

/// The real filesystem: `std::fs` with `pread`-style positioned reads on
/// Unix (elsewhere a mutex serialises the seek + read pair).
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl Vfs for StdVfs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsRead>> {
        let file = File::open(path)?;
        Ok(Box::new(StdRead {
            file,
            #[cfg(not(unix))]
            lock: Mutex::new(()),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(StdWrite { file }))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(StdWrite { file }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            entries.push(entry?.path());
        }
        Ok(entries)
    }
}

struct StdRead {
    file: File,
    #[cfg(not(unix))]
    lock: Mutex<()>,
}

impl VfsRead for StdRead {
    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        #[cfg(unix)]
        {
            std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
        }
        #[cfg(not(unix))]
        {
            let _guard = self.lock.lock().unwrap_or_else(PoisonError::into_inner);
            let mut file = &self.file;
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }
}

struct StdWrite {
    file: File,
}

impl VfsFile for StdWrite {
    fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<usize> {
        self.file.read_to_end(out)
    }

    fn seek_to(&mut self, offset: u64) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset)).map(|_| ())
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.write_all(buf)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

/// Which operation class a [`FaultRule`] targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Opening a file (any mode).
    Open,
    /// A positioned or sequential read.
    Read,
    /// A data write (including `set_len`).
    Write,
    /// `sync_data` / `sync_all` on a file, or a directory fsync.
    Sync,
    /// A rename.
    Rename,
    /// A file removal.
    Remove,
}

/// What an armed [`FaultRule`] does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail `times` consecutive matching operations with EIO, then let
    /// later ones succeed — the retryable failure class.
    Transient {
        /// How many consecutive matching operations fail.
        times: u32,
    },
    /// Fail this and every later matching operation with EIO — the
    /// quarantine-the-source failure class.
    Permanent,
    /// Write only the first `keep` bytes of the buffer, then report EIO —
    /// a torn write. (On non-write operations this behaves like a plain
    /// one-shot EIO.)
    TornWrite {
        /// Bytes actually written before the failure.
        keep: usize,
    },
    /// Delay this and every later matching operation by `micros`
    /// microseconds, then let it succeed.
    Latency {
        /// The injected delay, in microseconds.
        micros: u64,
    },
}

/// One entry of a [`FaultVfs`] plan: on the `nth` (0-based) operation of
/// class `op` whose path contains `path_contains`, start applying `kind`.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Substring the operation's path must contain (empty matches all).
    pub path_contains: String,
    /// The operation class this rule watches.
    pub op: FaultOp,
    /// 0-based index of the first matching operation the rule fires on.
    pub nth: u64,
    /// The fault applied once the rule fires.
    pub kind: FaultKind,
}

#[derive(Debug)]
struct RuleState {
    rule: FaultRule,
    /// Matching operations seen so far.
    seen: u64,
}

#[derive(Debug)]
struct FaultState {
    rules: Mutex<Vec<RuleState>>,
    injected: AtomicU64,
}

/// The outcome of consulting the plan for one operation.
enum Action {
    Proceed,
    Fail(&'static str),
    Torn(usize),
    Sleep(Duration),
}

impl FaultState {
    /// Advances every matching rule's counter and returns the action for
    /// this operation: the first firing rule wins; latency rules that fire
    /// alongside a failure rule are ignored (the failure is immediate).
    fn check(&self, path: &Path, op: FaultOp) -> Action {
        let path_str = path.to_string_lossy();
        let mut rules = self.rules.lock().unwrap_or_else(PoisonError::into_inner);
        let mut action = Action::Proceed;
        for state in rules.iter_mut() {
            if state.rule.op != op || !path_str.contains(&state.rule.path_contains) {
                continue;
            }
            let seq = state.seen;
            state.seen += 1;
            if seq < state.rule.nth {
                continue;
            }
            let fired = match state.rule.kind {
                FaultKind::Transient { times } => {
                    if seq < state.rule.nth + times as u64 {
                        Some(Action::Fail("injected transient EIO"))
                    } else {
                        None
                    }
                }
                FaultKind::Permanent => Some(Action::Fail("injected permanent EIO")),
                FaultKind::TornWrite { keep } => {
                    if seq == state.rule.nth {
                        Some(Action::Torn(keep))
                    } else {
                        None
                    }
                }
                FaultKind::Latency { micros } => Some(Action::Sleep(Duration::from_micros(micros))),
            };
            if let Some(fired) = fired {
                match (&action, &fired) {
                    // A failure outranks a latency; the first failure wins.
                    (Action::Proceed, _) => action = fired,
                    (Action::Sleep(_), Action::Fail(_) | Action::Torn(_)) => action = fired,
                    _ => {}
                }
            }
        }
        if !matches!(action, Action::Proceed) {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        action
    }
}

fn injected_error(detail: &'static str) -> io::Error {
    io::Error::other(detail)
}

/// A fault-injecting Vfs: wraps an inner [`Vfs`] (usually [`StdVfs`]) and
/// applies a deterministic plan of [`FaultRule`]s to every operation that
/// flows through it. See the module docs for the failure taxonomy.
///
/// Clone-cheap via `Arc`; all handles it returns share the plan, so a
/// rule armed for the 3rd read of `"color.seg"` fires no matter which
/// open handle performs it.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<FaultState>,
}

impl FaultVfs {
    /// A fault Vfs over the real filesystem with an empty plan (all
    /// operations succeed until rules are added).
    pub fn new() -> Self {
        FaultVfs::wrapping(std_vfs())
    }

    /// A fault Vfs over an arbitrary inner Vfs.
    pub fn wrapping(inner: Arc<dyn Vfs>) -> Self {
        FaultVfs {
            inner,
            state: Arc::new(FaultState {
                rules: Mutex::new(Vec::new()),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// Arms one rule. Rules are consulted in insertion order; the first
    /// one that fires decides the operation's fate.
    pub fn push_rule(&self, rule: FaultRule) {
        self.state
            .rules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(RuleState { rule, seen: 0 });
    }

    /// Builds a small deterministic plan from `seed`, targeting paths
    /// containing `path_contains` — the chaos suite's per-case scheduler.
    /// Equal seeds always produce equal plans.
    pub fn seeded_plan(&self, seed: u64, path_contains: &str) {
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let rules = 1 + (next() % 3) as usize;
        for _ in 0..rules {
            let op = match next() % 4 {
                0 => FaultOp::Read,
                1 => FaultOp::Write,
                2 => FaultOp::Sync,
                _ => FaultOp::Open,
            };
            let kind = match next() % 4 {
                0 => FaultKind::Transient {
                    times: 1 + (next() % 3) as u32,
                },
                1 => FaultKind::Permanent,
                2 => FaultKind::TornWrite {
                    keep: (next() % 64) as usize,
                },
                _ => FaultKind::Latency {
                    micros: next() % 500,
                },
            };
            self.push_rule(FaultRule {
                path_contains: path_contains.to_owned(),
                op,
                nth: next() % 16,
                kind,
            });
        }
    }

    /// How many operations the plan has failed, torn, or delayed so far.
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// Removes every armed rule (counters included) — the Vfs becomes
    /// transparent again. Useful for "heal the disk" phases of a test.
    pub fn clear(&self) {
        self.state
            .rules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    fn gate(&self, path: &Path, op: FaultOp) -> io::Result<()> {
        match self.state.check(path, op) {
            Action::Proceed => Ok(()),
            Action::Fail(detail) => Err(injected_error(detail)),
            Action::Torn(_) => Err(injected_error("injected torn write")),
            Action::Sleep(d) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }
}

impl Default for FaultVfs {
    fn default() -> Self {
        FaultVfs::new()
    }
}

impl Vfs for FaultVfs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsRead>> {
        self.gate(path, FaultOp::Open)?;
        let inner = self.inner.open_read(path)?;
        Ok(Box::new(FaultRead {
            inner,
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate(path, FaultOp::Open)?;
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultWrite {
            inner,
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
        }))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate(path, FaultOp::Open)?;
        let inner = self.inner.open_rw(path)?;
        Ok(Box::new(FaultWrite {
            inner,
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(to, FaultOp::Rename)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate(path, FaultOp::Remove)?;
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.gate(dir, FaultOp::Sync)?;
        self.inner.sync_dir(dir)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.gate(dir, FaultOp::Read)?;
        self.inner.read_dir(dir)
    }
}

struct FaultRead {
    inner: Box<dyn VfsRead>,
    path: PathBuf,
    state: Arc<FaultState>,
}

impl VfsRead for FaultRead {
    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        match self.state.check(&self.path, FaultOp::Read) {
            Action::Proceed => {}
            Action::Fail(detail) => return Err(injected_error(detail)),
            Action::Torn(_) => return Err(injected_error("injected torn write")),
            Action::Sleep(d) => std::thread::sleep(d),
        }
        self.inner.read_exact_at(buf, offset)
    }
}

struct FaultWrite {
    inner: Box<dyn VfsFile>,
    path: PathBuf,
    state: Arc<FaultState>,
}

impl VfsFile for FaultWrite {
    fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<usize> {
        match self.state.check(&self.path, FaultOp::Read) {
            Action::Proceed => {}
            Action::Fail(detail) => return Err(injected_error(detail)),
            Action::Torn(_) => return Err(injected_error("injected torn write")),
            Action::Sleep(d) => std::thread::sleep(d),
        }
        self.inner.read_to_end(out)
    }

    fn seek_to(&mut self, offset: u64) -> io::Result<()> {
        self.inner.seek_to(offset)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.state.check(&self.path, FaultOp::Write) {
            Action::Proceed => {}
            Action::Fail(detail) => return Err(injected_error(detail)),
            Action::Torn(keep) => {
                // The torn half really lands on disk — that is the point.
                let keep = keep.min(buf.len());
                self.inner.write_all(&buf[..keep])?;
                return Err(injected_error("injected torn write"));
            }
            Action::Sleep(d) => std::thread::sleep(d),
        }
        self.inner.write_all(buf)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.state.check(&self.path, FaultOp::Write) {
            Action::Proceed => {}
            Action::Fail(detail) => return Err(injected_error(detail)),
            Action::Torn(_) => return Err(injected_error("injected torn write")),
            Action::Sleep(d) => std::thread::sleep(d),
        }
        self.inner.set_len(len)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.state.check(&self.path, FaultOp::Sync) {
            Action::Proceed => {}
            Action::Fail(detail) => return Err(injected_error(detail)),
            Action::Torn(_) => return Err(injected_error("injected torn write")),
            Action::Sleep(d) => std::thread::sleep(d),
        }
        self.inner.sync_data()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        match self.state.check(&self.path, FaultOp::Sync) {
            Action::Proceed => {}
            Action::Fail(detail) => return Err(injected_error(detail)),
            Action::Torn(_) => return Err(injected_error("injected torn write")),
            Action::Sleep(d) => std::thread::sleep(d),
        }
        self.inner.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("garlic-storage-vfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_vfs_round_trips_bytes() {
        let path = temp_dir().join("std-roundtrip.bin");
        let vfs = StdVfs;
        let mut file = vfs.create(&path).unwrap();
        file.write_all(b"hello world").unwrap();
        file.sync_all().unwrap();
        drop(file);
        let read = vfs.open_read(&path).unwrap();
        assert_eq!(read.len().unwrap(), 11);
        let mut buf = [0u8; 5];
        read.read_exact_at(&mut buf, 6).unwrap();
        assert_eq!(&buf, b"world");
    }

    #[test]
    fn transient_rule_fails_exactly_n_operations() {
        let path = temp_dir().join("transient.bin");
        std::fs::write(&path, vec![7u8; 64]).unwrap();
        let vfs = FaultVfs::new();
        vfs.push_rule(FaultRule {
            path_contains: "transient.bin".into(),
            op: FaultOp::Read,
            nth: 1,
            kind: FaultKind::Transient { times: 2 },
        });
        let read = vfs.open_read(&path).unwrap();
        let mut buf = [0u8; 8];
        assert!(read.read_exact_at(&mut buf, 0).is_ok(), "op 0 clean");
        assert!(read.read_exact_at(&mut buf, 0).is_err(), "op 1 fails");
        assert!(read.read_exact_at(&mut buf, 0).is_err(), "op 2 fails");
        assert!(read.read_exact_at(&mut buf, 0).is_ok(), "op 3 recovers");
        assert_eq!(vfs.injected(), 2);
    }

    #[test]
    fn permanent_rule_never_recovers() {
        let path = temp_dir().join("permanent.bin");
        std::fs::write(&path, vec![7u8; 64]).unwrap();
        let vfs = FaultVfs::new();
        vfs.push_rule(FaultRule {
            path_contains: "permanent.bin".into(),
            op: FaultOp::Read,
            nth: 0,
            kind: FaultKind::Permanent,
        });
        let read = vfs.open_read(&path).unwrap();
        let mut buf = [0u8; 8];
        for _ in 0..5 {
            assert!(read.read_exact_at(&mut buf, 0).is_err());
        }
    }

    #[test]
    fn torn_write_leaves_the_prefix_on_disk() {
        let path = temp_dir().join("torn.bin");
        let vfs = FaultVfs::new();
        vfs.push_rule(FaultRule {
            path_contains: "torn.bin".into(),
            op: FaultOp::Write,
            nth: 0,
            kind: FaultKind::TornWrite { keep: 4 },
        });
        let mut file = vfs.create(&path).unwrap();
        assert!(file.write_all(b"0123456789").is_err());
        drop(file);
        assert_eq!(std::fs::read(&path).unwrap(), b"0123");
    }

    #[test]
    fn rules_scope_by_path_substring() {
        let dir = temp_dir();
        let vfs = FaultVfs::new();
        vfs.push_rule(FaultRule {
            path_contains: "scoped-target".into(),
            op: FaultOp::Open,
            nth: 0,
            kind: FaultKind::Permanent,
        });
        let clean = dir.join("scoped-other.bin");
        std::fs::write(&clean, b"x").unwrap();
        assert!(vfs.open_read(&clean).is_ok());
        let target = dir.join("scoped-target.bin");
        std::fs::write(&target, b"x").unwrap();
        assert!(vfs.open_read(&target).is_err());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultVfs::new();
        let b = FaultVfs::new();
        a.seeded_plan(42, "x.seg");
        b.seeded_plan(42, "x.seg");
        let rules_of = |v: &FaultVfs| {
            v.state
                .rules
                .lock()
                .unwrap()
                .iter()
                .map(|r| format!("{:?}", r.rule))
                .collect::<Vec<_>>()
        };
        assert_eq!(rules_of(&a), rules_of(&b));
        assert!(!rules_of(&a).is_empty());
    }

    #[test]
    fn sync_failure_is_injectable() {
        let path = temp_dir().join("sync-fail.bin");
        let vfs = FaultVfs::new();
        vfs.push_rule(FaultRule {
            path_contains: "sync-fail.bin".into(),
            op: FaultOp::Sync,
            nth: 0,
            kind: FaultKind::Transient { times: 1 },
        });
        let mut file = vfs.create(&path).unwrap();
        file.write_all(b"data").unwrap();
        assert!(file.sync_data().is_err(), "first sync fails");
        assert!(file.sync_data().is_ok(), "second sync succeeds");
    }
}
