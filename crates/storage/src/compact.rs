//! Background compaction for [`crate::live::LiveSource`]: frozen
//! memtables are merged with the base segment into a fresh v2 segment,
//! swapped in atomically through the manifest, and the obsolete files
//! garbage-collected.
//!
//! One compaction is four phases, holding the store lock only for the
//! bracketing bookkeeping (readers and writers proceed throughout the
//! expensive middle):
//!
//! 1. **Pin** (store lock): grab the frozen layers, the base segment, and
//!    a file id for the new segment.
//! 2. **Build** (no locks): merge base + frozen (newest layer winning,
//!    tombstones dropped) and write the new segment through the ordinary
//!    [`crate::SegmentWriter`] atomic-publish path.
//! 3. **Swap** (store lock): publish a manifest whose epoch points at the
//!    new segment and only the still-live WALs, then splice the new base
//!    in and drop the flushed frozen prefix. The manifest rename is the
//!    commit point — a crash on either side of it recovers cleanly.
//! 4. **GC** (no locks): retire the old segment's blocks from the shared
//!    [`crate::BlockCache`] and delete the old segment and sealed WAL
//!    files. In-flight snapshots still holding the old
//!    [`crate::SegmentSource`] keep reading it through their open file
//!    handle; the blocks they re-admit die with their `Arc`.
//!
//! Writers may freeze *more* memtables between phases 1 and 3; the swap
//! only consumes the pinned prefix (and its sealed WALs), leaving the
//! newcomers for the next round — which the signal loop immediately runs.

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::StorageError;
use crate::live::{merged_pairs, LiveShared};
use crate::manifest::file_name_for;
use crate::segment::SegmentSource;
use crate::writer::SegmentWriter;

/// Runs one full compaction round (see the module docs). Returns `false`
/// when there was nothing frozen to flush. Serialized against concurrent
/// callers by the store's compaction lock.
pub(crate) fn compact_once(shared: &LiveShared) -> Result<bool, StorageError> {
    let _serialize = shared
        .compact_lock
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let start = std::time::Instant::now();

    // Phase 1: pin the inputs.
    let (frozen, base, new_file_id) = {
        let inner = shared.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.frozen.is_empty() {
            return Ok(false);
        }
        (
            inner.frozen.clone(),
            inner.base.clone(),
            inner.manifest.next_file_id,
        )
    };

    // Phase 2: build the replacement segment outside every lock. Any
    // failure before the manifest rename in phase 3 leaves the
    // pre-compaction state fully intact (the tmp file is cleaned up by
    // the writer's guard), so a later round can simply retry.
    let pairs = merged_pairs(base.as_ref(), &frozen)?;
    let new_segment = if pairs.is_empty() {
        None
    } else {
        let name = file_name_for(new_file_id, "seg");
        let path = shared.dir.join(&name);
        SegmentWriter::new()
            .with_vfs(Arc::clone(&shared.vfs))
            .write_pairs(&path, pairs)?;
        let source = SegmentSource::open_with(&path, Arc::clone(&shared.cache), &shared.vfs)?;
        Some((name, Arc::new(source)))
    };

    // Phase 3: swap, with the manifest rename as the commit point.
    let (old_base, obsolete_wals) = {
        let mut inner = shared.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let flushed_layers = frozen.len();
        let flushed_wals: usize = inner.sealed_per_frozen[..flushed_layers].iter().sum();
        let mut manifest = inner.manifest.clone();
        manifest.epoch += 1;
        manifest.next_file_id = manifest.next_file_id.max(new_file_id + 1);
        manifest.segment = new_segment.as_ref().map(|(name, _)| name.clone());
        let obsolete: Vec<String> = manifest.wals.drain(..flushed_wals).collect();
        manifest.store_with(&shared.dir, &shared.vfs)?;
        inner.manifest = manifest;
        let old_base = std::mem::replace(&mut inner.base, new_segment.map(|(_, source)| source));
        inner.frozen.drain(..flushed_layers);
        inner.sealed_per_frozen.drain(..flushed_layers);
        inner.bump_version();
        (old_base, obsolete)
    };

    // Phase 4: reclaim what the new manifest no longer references.
    if let Some(old) = old_base {
        shared.cache.retire(old.segment_id());
        let _ = shared.vfs.remove_file(old.path());
    }
    for name in obsolete_wals {
        let _ = shared.vfs.remove_file(&shared.dir.join(name));
    }
    if let Some(m) = &shared.metrics {
        m.compaction_ns
            .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    Ok(true)
}

/// Wakes the background compactor; coalesces bursts of notifications into
/// single rounds and carries the shutdown request.
pub(crate) struct CompactSignal {
    state: Mutex<SignalState>,
    condvar: Condvar,
}

#[derive(Default)]
struct SignalState {
    pending: bool,
    shutdown: bool,
}

impl CompactSignal {
    pub(crate) fn new() -> CompactSignal {
        CompactSignal {
            state: Mutex::new(SignalState::default()),
            condvar: Condvar::new(),
        }
    }

    /// Requests a compaction round (no-op without a listening thread; the
    /// flag is simply consumed by the next explicit compaction).
    pub(crate) fn notify(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pending = true;
        self.condvar.notify_all();
    }

    fn request_shutdown(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .shutdown = true;
        self.condvar.notify_all();
    }

    /// Blocks until work is pending or shutdown is requested; returns
    /// `false` on shutdown.
    fn wait(&self) -> bool {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.shutdown {
                return false;
            }
            if state.pending {
                state.pending = false;
                return true;
            }
            state = self
                .condvar
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Sleeps for `delay` (the retry backoff) but wakes immediately on
    /// shutdown; returns `false` when shutdown was requested so the
    /// compactor can exit instead of finishing its retry schedule.
    fn wait_retry(&self, delay: Duration) -> bool {
        let deadline = Instant::now() + delay;
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.shutdown {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return true;
            }
            let (guard, _timed_out) = self
                .condvar
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }
}

/// The running background compactor; joined on [`crate::LiveSource`] drop.
pub(crate) struct CompactorHandle {
    thread: JoinHandle<()>,
}

impl CompactorHandle {
    /// Asks the thread to exit and joins it.
    pub(crate) fn shutdown(self, signal: &CompactSignal) {
        signal.request_shutdown();
        let _ = self.thread.join();
    }
}

/// Initial retry backoff after a failed background compaction round.
const RETRY_BASE: Duration = Duration::from_millis(10);
/// Backoff cap: a persistently failing disk costs one attempt per second.
const RETRY_CAP: Duration = Duration::from_secs(1);
/// Consecutive failures after which the compactor stops retrying and
/// waits for the next freeze notification instead (the error stays
/// recorded in `last_error` either way).
const RETRY_ATTEMPTS: u32 = 8;

/// Spawns the background compactor: each wake-up drains every frozen
/// layer, recording (not panicking on) errors for the owner to collect.
/// Transient I/O errors are retried with capped exponential backoff;
/// shutdown interrupts the backoff sleep immediately.
pub(crate) fn spawn(shared: Arc<LiveShared>) -> CompactorHandle {
    let thread = std::thread::Builder::new()
        .name("garlic-compact".into())
        .spawn(move || {
            while shared.signal.wait() {
                let mut failures: u32 = 0;
                loop {
                    match compact_once(&shared) {
                        Ok(true) => failures = 0,
                        Ok(false) => break,
                        Err(error) => {
                            *shared
                                .last_error
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner) = Some(error);
                            failures += 1;
                            if failures >= RETRY_ATTEMPTS {
                                break;
                            }
                            let backoff = RETRY_BASE
                                .saturating_mul(1 << (failures - 1).min(10))
                                .min(RETRY_CAP);
                            if !shared.signal.wait_retry(backoff) {
                                return;
                            }
                        }
                    }
                }
            }
        })
        .expect("spawn compactor thread");
    CompactorHandle { thread }
}
