//! Crash-recovery fuzzing: damage the write-ahead log at **arbitrary byte
//! offsets** — truncate it mid-record, flip single bits — and assert that
//! recovery yields *exactly* the committed prefix of acknowledged batches.
//! Never a panic, never silent loss of an undamaged record, never replay
//! of a damaged one. Manifest damage is harsher: the manifest is written
//! atomically (tmp + rename), so an unreadable one is not a crash artifact
//! and must surface as a typed [`StorageError::ManifestCorrupt`] rather
//! than an empty store.
//!
//! Each property builds a real store (every batch is one fsynced WAL
//! record), keeps the model state after every batch, copies the store
//! aside, damages the copy, and reopens it as a [`LiveSource`].

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use garlic_agg::Grade;
use garlic_core::access::{GradedSource, MemorySource};
use garlic_core::ObjectId;
use garlic_storage::wal::WAL_MAGIC;
use garlic_storage::{BlockCache, LiveOptions, LiveSource, Manifest, StorageError, WalOp};
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn case_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("garlic-wal-fuzz-{}", std::process::id()))
        .join(format!("{label}-{}", CASE.fetch_add(1, Ordering::Relaxed)));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open(dir: &Path) -> Result<LiveSource, StorageError> {
    LiveSource::open(dir, Arc::new(BlockCache::new(64)), LiveOptions::default())
}

/// One batch of ops: `(object id, grade step)` where a step past the top
/// of the grade scale means a tombstone delete. Ids collide across
/// batches on purpose, so prefixes genuinely differ from the full tape.
type Batch = Vec<(u64, u32)>;

/// Steps `0..=16` quantize grades; `17..=20` are tombstones (~20%).
const GRADE_STEPS: u32 = 16;

fn batches_strategy() -> impl Strategy<Value = Vec<Batch>> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..48, 0u32..=20), 1..6),
        1..10,
    )
}

fn step_op(id: u64, step: u32) -> WalOp {
    if step > GRADE_STEPS {
        WalOp::Delete {
            object: ObjectId(id),
        }
    } else {
        WalOp::Upsert {
            object: ObjectId(id),
            grade: Grade::clamped(step as f64 / GRADE_STEPS as f64),
        }
    }
}

fn to_ops(batch: &Batch) -> Vec<WalOp> {
    batch.iter().map(|&(id, step)| step_op(id, step)).collect()
}

/// Applies the batches to a fresh store at `dir` — one acknowledged WAL
/// record each — and returns the model state after every prefix:
/// `models[j]` is the visible map once batches `0..j` have committed.
fn build_store(dir: &Path, batches: &[Batch]) -> Vec<BTreeMap<ObjectId, Grade>> {
    let live = open(dir).unwrap();
    let mut model = BTreeMap::new();
    let mut models = vec![model.clone()];
    for batch in batches {
        live.write_batch(&to_ops(batch)).unwrap();
        for &(id, step) in batch {
            match step_op(id, step) {
                WalOp::Upsert { object, grade } => {
                    model.insert(object, grade);
                }
                WalOp::Delete { object } => {
                    model.remove(&object);
                }
            }
        }
        models.push(model.clone());
    }
    models
}

/// Cumulative record end offsets in the WAL file: `ends[0]` is the header
/// boundary, `ends[j]` is where batch `j` ends. Parsed purely from the
/// self-delimiting framing (`[len u32][seq u64][payload][crc u64]`).
fn record_ends(wal: &Path) -> Vec<u64> {
    let bytes = std::fs::read(wal).unwrap();
    assert_eq!(&bytes[..8], &WAL_MAGIC);
    let mut ends = vec![8u64];
    let mut offset = 8usize;
    while offset < bytes.len() {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 20 + len;
        ends.push(offset as u64);
    }
    assert_eq!(offset, bytes.len(), "a freshly closed WAL has no torn tail");
    ends
}

/// The single WAL file of a store that has never frozen a memtable.
fn active_wal(dir: &Path) -> PathBuf {
    let manifest = Manifest::load(dir).unwrap();
    dir.join(manifest.wals.last().unwrap())
}

fn clone_store(src: &Path, dst: &Path) {
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Recovery must equal the model: same length, same full sorted stream.
fn assert_state(live: &LiveSource, model: &BTreeMap<ObjectId, Grade>, ctx: &str) {
    let snap = live.snapshot();
    let want = MemorySource::from_pairs(model.iter().map(|(&o, &g)| (o, g)));
    assert_eq!(snap.len(), want.len(), "{ctx}: length");
    let (mut got_run, mut want_run) = (Vec::new(), Vec::new());
    snap.sorted_batch(0, snap.len() + 1, &mut got_run);
    want.sorted_batch(0, want.len() + 1, &mut want_run);
    assert_eq!(got_run, want_run, "{ctx}: stream");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Truncating the WAL anywhere yields exactly the batches whose
    /// records survive whole — and the recovered store keeps accepting
    /// durable writes on top of the truncated prefix.
    #[test]
    fn truncation_recovers_exactly_the_committed_prefix(
        batches in batches_strategy(),
        cut in 0.0f64..=1.0,
    ) {
        let src = case_dir("trunc-src");
        let models = build_store(&src, &batches);
        let wal_name = active_wal(&src);
        let ends = record_ends(&wal_name);
        let full = *ends.last().unwrap();
        let cut = (full as f64 * cut) as u64;

        let dst = case_dir("trunc");
        clone_store(&src, &dst);
        let wal = dst.join(wal_name.file_name().unwrap());
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(cut)
            .unwrap();

        if cut == 0 {
            // A crash between WAL creation and its header sync: the store
            // reinitialises the empty log and recovers nothing.
            let live = open(&dst).unwrap();
            assert_state(&live, &models[0], "empty-log recovery");
        } else if cut < 8 {
            // A torn *header* cannot happen in a crash (it is synced
            // before the first acknowledgement): typed error, no guessing.
            let err = open(&dst).expect_err("torn header must not open");
            prop_assert!(matches!(err, StorageError::WalCorrupt { .. }), "got {err:?}");
        } else {
            let survivors = ends.iter().skip(1).filter(|&&e| e <= cut).count();
            let live = open(&dst).unwrap();
            assert_state(
                &live,
                &models[survivors],
                &format!("cut at byte {cut} of {full} keeps {survivors} batches"),
            );
            // The torn tail was truncated off; new writes land after the
            // committed prefix and survive another reopen.
            live.upsert(ObjectId(999), Grade::ONE).unwrap();
            drop(live);
            let mut expected = models[survivors].clone();
            expected.insert(ObjectId(999), Grade::ONE);
            assert_state(&open(&dst).unwrap(), &expected, "write after recovery");
        }
    }

    /// Flipping one bit anywhere in a record stops replay at that record —
    /// every batch before the damage survives, nothing at or after it is
    /// replayed. A flipped header byte is the typed corruption error.
    #[test]
    fn a_bit_flip_recovers_exactly_the_prefix_before_it(
        batches in batches_strategy(),
        at in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let src = case_dir("flip-src");
        let models = build_store(&src, &batches);
        let wal_name = active_wal(&src);
        let ends = record_ends(&wal_name);
        let full = *ends.last().unwrap();
        let at = ((full as f64 * at) as u64).min(full - 1);

        let dst = case_dir("flip");
        clone_store(&src, &dst);
        let wal = dst.join(wal_name.file_name().unwrap());
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes[at as usize] ^= 1 << bit;
        std::fs::write(&wal, &bytes).unwrap();

        if at < 8 {
            let err = open(&dst).expect_err("flipped header must not open");
            prop_assert!(matches!(err, StorageError::WalCorrupt { .. }), "got {err:?}");
        } else {
            // The record whose bytes contain the flip is the first one
            // whose end offset lies beyond it.
            let survivors = ends.iter().skip(1).filter(|&&e| e <= at).count();
            let live = open(&dst).unwrap();
            assert_state(
                &live,
                &models[survivors],
                &format!("flip of bit {bit} at byte {at} keeps {survivors} batches"),
            );
        }
    }

    /// Any damage to the manifest — truncation or a bit flip anywhere —
    /// is a typed [`StorageError::ManifestCorrupt`], never a panic and
    /// never a silently empty store.
    #[test]
    fn manifest_damage_is_always_the_typed_error(
        batches in batches_strategy(),
        at in 0.0f64..1.0,
        bit in 0u8..8,
        damage in 0u32..2,
    ) {
        let dir = case_dir("manifest");
        build_store(&dir, &batches);
        let path = dir.join("MANIFEST");
        let mut bytes = std::fs::read(&path).unwrap();
        let at = ((bytes.len() as f64 * at) as usize).min(bytes.len() - 1);
        if damage == 0 {
            bytes.truncate(at);
        } else {
            bytes[at] ^= 1 << bit;
        }
        std::fs::write(&path, &bytes).unwrap();

        let err = open(&dir).expect_err("a damaged manifest must not open");
        prop_assert!(matches!(err, StorageError::ManifestCorrupt { .. }), "got {err:?}");
    }
}

/// Layered recovery: damage to the *active* WAL's tail must not touch
/// batches that already live in the base segment or a sealed WAL.
#[test]
fn a_torn_active_tail_spares_the_sealed_layers() {
    let dir = case_dir("layered");
    let live = open(&dir).unwrap();
    let mut model = BTreeMap::new();
    let put = |live: &LiveSource, model: &mut BTreeMap<ObjectId, Grade>, id: u64, q: f64| {
        live.upsert(ObjectId(id), Grade::clamped(q)).unwrap();
        model.insert(ObjectId(id), Grade::clamped(q));
    };
    // Layer 1: compacted into the base segment.
    for i in 0..30 {
        put(&live, &mut model, i, (i % 7) as f64 / 7.0);
    }
    assert!(live.flush().unwrap());
    // Layer 2: a sealed (frozen, not yet compacted) WAL.
    for i in 20..40 {
        put(&live, &mut model, i, 0.9);
    }
    assert!(live.freeze().unwrap());
    // Layer 3: the active WAL — two committed batches, then one to tear.
    put(&live, &mut model, 5, 0.123);
    live.delete(ObjectId(25)).unwrap();
    model.remove(&ObjectId(25));
    let committed = model.clone();
    live.upsert(ObjectId(41), Grade::ONE).unwrap(); // will be torn off
    drop(live);

    let manifest = Manifest::load(&dir).unwrap();
    assert!(manifest.wals.len() >= 2, "a sealed WAL plus the active one");
    let active = dir.join(manifest.wals.last().unwrap());
    let len = std::fs::metadata(&active).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&active)
        .unwrap()
        .set_len(len - 5)
        .unwrap();

    let live = open(&dir).unwrap();
    assert_state(&live, &committed, "base + sealed + committed active prefix");
    assert_eq!(live.snapshot().random_access(ObjectId(41)), None);
}
