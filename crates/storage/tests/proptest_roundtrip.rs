//! The round-trip property: a segment written from any graded list and
//! reopened must be **bit-identical** to a [`MemorySource`] over the same
//! pairs — the same entries in the same skeleton (tie) order, the same
//! random-access answers, the same Section-5 access counts under metering,
//! and the same resumed-paging output from a cold cursor. Disk is an
//! implementation detail; the paper's access contract is the observable.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use garlic_agg::iterated::min_agg;
use garlic_agg::Grade;
use garlic_core::access::{CountingSource, GradedSource, MemorySource, SetAccess, SortedCursor};
use garlic_core::algorithms::fa::fagin_topk;
use garlic_core::{GradedEntry, ObjectId};
use garlic_storage::{BlockCache, SegmentSource, SegmentWriter};
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn case_path() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("garlic-storage-proptest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("case-{}.seg", CASE.fetch_add(1, Ordering::Relaxed)))
}

/// Sparse pairs with deliberately collision-prone ids (deduplicated) and
/// quantized grades so ties are common — tie order is the property under
/// test.
fn pairs_strategy() -> impl Strategy<Value = Vec<(ObjectId, Grade)>> {
    proptest::collection::vec((0u64..200, 0u32..=8), 0..120).prop_map(|raw| {
        let mut seen = std::collections::HashSet::new();
        raw.into_iter()
            .filter(|(id, _)| seen.insert(*id))
            .map(|(id, g)| (ObjectId(id), Grade::clamped(g as f64 / 8.0)))
            .collect()
    })
}

/// Block sizes from one-entry blocks to the default page, so batch and
/// block boundaries land everywhere relative to each other.
fn block_size_strategy() -> impl Strategy<Value = usize> {
    (0usize..4).prop_map(|i| [16, 48, 160, 4096][i])
}

fn reopen(path: &PathBuf) -> SegmentSource {
    SegmentSource::open(path, Arc::new(BlockCache::new(32))).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Entries, tie order, random access, and the matching set all equal
    /// the in-memory source — under both a cold and a warm cache.
    #[test]
    fn segment_is_bit_identical_to_memory(
        pairs in pairs_strategy(),
        block_size in block_size_strategy(),
    ) {
        let path = case_path();
        SegmentWriter::with_block_size(block_size)
            .unwrap()
            .write_pairs(&path, pairs.clone())
            .unwrap();
        let seg = reopen(&path);
        let mem = MemorySource::from_pairs(pairs.clone());

        prop_assert_eq!(seg.len(), mem.len());
        for pass in ["cold", "warm"] {
            for rank in 0..=mem.len() {
                prop_assert_eq!(
                    seg.sorted_access(rank),
                    mem.sorted_access(rank),
                    "{} rank {}", pass, rank
                );
            }
            for probe in 0..220u64 {
                prop_assert_eq!(
                    seg.random_access(ObjectId(probe)),
                    mem.random_access(ObjectId(probe)),
                    "{} object {}", pass, probe
                );
            }
            prop_assert_eq!(seg.matching_set(), mem.matching_set(), "{}", pass);
        }
    }

    /// The batched cursor stream replays the positional stream for any
    /// batch size, and metering bills identically on both backends.
    #[test]
    fn cursor_stream_and_counts_match_memory(
        pairs in pairs_strategy(),
        block_size in block_size_strategy(),
        batch in 1usize..17,
    ) {
        let path = case_path();
        SegmentWriter::with_block_size(block_size)
            .unwrap()
            .write_pairs(&path, pairs.clone())
            .unwrap();
        let seg = CountingSource::new(reopen(&path));
        let mem = CountingSource::new(MemorySource::from_pairs(pairs));

        let mut seg_stream = Vec::new();
        let mut cursor = seg.open_sorted();
        while cursor.next_batch(&mut seg_stream, batch) > 0 {}
        let mut mem_stream = Vec::new();
        let mut cursor = mem.open_sorted();
        while cursor.next_batch(&mut mem_stream, batch) > 0 {}

        prop_assert_eq!(seg_stream, mem_stream);
        prop_assert_eq!(seg.stats(), mem.stats(), "identical Section-5 bills");
    }

    /// Block-grouped batched random access is observably the per-object
    /// loop: for arbitrary sparse probe sequences — duplicates, misses
    /// below/between/above the fences — the segment's `random_batch`
    /// answers exactly what `MemorySource` answers, positionally aligned,
    /// with identical Section-5 random bills, and touches each candidate
    /// table block at most once per batch.
    #[test]
    fn segment_random_batch_matches_memory_and_bills_identically(
        pairs in pairs_strategy(),
        block_size in block_size_strategy(),
        raw_probes in proptest::collection::vec(0u64..220, 0..80),
    ) {
        let path = case_path();
        SegmentWriter::with_block_size(block_size)
            .unwrap()
            .write_pairs(&path, pairs.clone())
            .unwrap();
        let cache = Arc::new(BlockCache::new(64));
        let seg = CountingSource::new(
            SegmentSource::open(&path, Arc::clone(&cache)).unwrap(),
        );
        let mem = CountingSource::new(MemorySource::from_pairs(pairs));
        let probes: Vec<ObjectId> = raw_probes.into_iter().map(ObjectId).collect();

        let mut from_seg = Vec::new();
        seg.random_batch(&probes, &mut from_seg);
        let mut from_mem = Vec::new();
        mem.random_batch(&probes, &mut from_mem);
        prop_assert_eq!(&from_seg, &from_mem);
        prop_assert_eq!(seg.stats(), mem.stats(), "identical random bills");

        // Probe-for-probe agreement with the per-object path too.
        let looped: Vec<Option<Grade>> =
            probes.iter().map(|&p| seg.random_access(p)).collect();
        prop_assert_eq!(&from_seg, &looped);

        // Block economy: the batch issued at most one cache request per
        // table block (every probe with a fence candidate maps to one).
        let entries_per_block = block_size / 16;
        let table_blocks = seg.inner().len().div_ceil(entries_per_block.max(1)) as u64;
        // The per-probe loop above polluted the counters; isolate one
        // batch's requests by re-running it against a cleared cache.
        cache.clear();
        let base = cache.stats();
        let mut again = Vec::new();
        seg.random_batch(&probes, &mut again);
        let after = cache.stats();
        let batch_requests = (after.hits + after.misses) - (base.hits + base.misses);
        prop_assert!(
            batch_requests <= table_blocks,
            "one batch issued {batch_requests} block requests over {table_blocks} table blocks"
        );
    }

    /// Fagin's algorithm over segment-backed sources returns the same
    /// top-k entries (objects, grades, tie order) with the same per-source
    /// Section-5 access counts as over memory-backed sources.
    #[test]
    fn fagin_topk_costs_the_same_on_disk(
        lists in proptest::collection::vec(
            proptest::collection::vec(0u32..=8, 1..40),
            1..4,
        ),
        k in 1usize..12,
    ) {
        let n = lists.iter().map(|l| l.len()).min().unwrap();
        let grades: Vec<Vec<Grade>> = lists
            .iter()
            .map(|l| l[..n].iter().map(|&g| Grade::clamped(g as f64 / 8.0)).collect())
            .collect();
        let k = k.min(n);

        let mem: Vec<CountingSource<MemorySource>> = grades
            .iter()
            .map(|g| CountingSource::new(MemorySource::from_grades(g)))
            .collect();
        let cache = Arc::new(BlockCache::new(64));
        let seg: Vec<CountingSource<SegmentSource>> = grades
            .iter()
            .map(|g| {
                let path = case_path();
                SegmentWriter::with_block_size(48)
                    .unwrap()
                    .write_grades(&path, g)
                    .unwrap();
                CountingSource::new(SegmentSource::open(&path, Arc::clone(&cache)).unwrap())
            })
            .collect();

        let agg = min_agg();
        let from_mem = fagin_topk(&mem, &agg, k).unwrap();
        let from_seg = fagin_topk(&seg, &agg, k).unwrap();

        prop_assert_eq!(from_seg.entries(), from_mem.entries(), "same answers, same tie order");
        for (s, m) in seg.iter().zip(&mem) {
            prop_assert_eq!(s.stats(), m.stats(), "same per-source access counts");
        }
    }

    /// Paging that stops mid-stream and resumes from a **cold** cursor — a
    /// fresh `SegmentSource` over a fresh cache, positioned by rank alone,
    /// as a process restart would — continues exactly where the warm
    /// stream left off.
    #[test]
    fn paging_resumes_from_a_cold_cursor(
        pairs in pairs_strategy(),
        block_size in block_size_strategy(),
        cut in 0usize..140,
    ) {
        let path = case_path();
        SegmentWriter::with_block_size(block_size)
            .unwrap()
            .write_pairs(&path, pairs.clone())
            .unwrap();
        let mem = MemorySource::from_pairs(pairs);
        let cut = cut.min(mem.len());

        // First process: page up to `cut` entries, remember only the rank.
        let mut first_leg: Vec<GradedEntry> = Vec::new();
        let resume_at = {
            let seg = reopen(&path);
            let mut cursor = seg.open_sorted();
            loop {
                let want = (cut - first_leg.len()).min(5);
                if want == 0 || cursor.next_batch(&mut first_leg, want) == 0 {
                    break;
                }
            }
            cursor.position()
        };

        // Second process: reopen cold, resume at the remembered rank.
        let seg = reopen(&path);
        let mut cursor = SortedCursor::at(&seg, resume_at);
        let mut second_leg = first_leg;
        while cursor.next_batch(&mut second_leg, 7) > 0 {}

        let reference: Vec<GradedEntry> =
            (0..mem.len()).map(|r| mem.sorted_access(r).unwrap()).collect();
        prop_assert_eq!(second_leg, reference, "stitched stream equals one-shot stream");
    }
}
