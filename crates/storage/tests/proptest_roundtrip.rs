//! The round-trip property: a segment written from any graded list and
//! reopened must be **bit-identical** to a [`MemorySource`] over the same
//! pairs — the same entries in the same skeleton (tie) order, the same
//! random-access answers, the same Section-5 access counts under metering,
//! and the same resumed-paging output from a cold cursor. Disk is an
//! implementation detail; the paper's access contract is the observable.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use garlic_agg::iterated::min_agg;
use garlic_agg::Grade;
use garlic_core::access::{CountingSource, GradedSource, MemorySource, SetAccess, SortedCursor};
use garlic_core::algorithms::fa::fagin_topk;
use garlic_core::{GradedEntry, ObjectId};
use garlic_storage::format::{FORMAT_V1, FORMAT_VERSION};
use garlic_storage::{BlockCache, SegmentSource, SegmentWriter};
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn case_path() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("garlic-storage-proptest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("case-{}.seg", CASE.fetch_add(1, Ordering::Relaxed)))
}

/// Sparse pairs with deliberately collision-prone ids (deduplicated) and
/// quantized grades so ties are common — tie order is the property under
/// test.
fn pairs_strategy() -> impl Strategy<Value = Vec<(ObjectId, Grade)>> {
    proptest::collection::vec((0u64..200, 0u32..=8), 0..120).prop_map(|raw| {
        let mut seen = std::collections::HashSet::new();
        raw.into_iter()
            .filter(|(id, _)| seen.insert(*id))
            .map(|(id, g)| (ObjectId(id), Grade::clamped(g as f64 / 8.0)))
            .collect()
    })
}

/// Block sizes from one-entry blocks to the default page, so batch and
/// block boundaries land everywhere relative to each other.
fn block_size_strategy() -> impl Strategy<Value = usize> {
    (0usize..4).prop_map(|i| [16, 48, 160, 4096][i])
}

/// Both on-disk format versions, so every property holds for each.
fn version_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![Just(FORMAT_V1), Just(FORMAT_VERSION)]
}

fn reopen(path: &PathBuf) -> SegmentSource {
    SegmentSource::open(path, Arc::new(BlockCache::new(32))).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Entries, tie order, random access, and the matching set all equal
    /// the in-memory source — under both a cold and a warm cache.
    #[test]
    fn segment_is_bit_identical_to_memory(
        pairs in pairs_strategy(),
        block_size in block_size_strategy(),
    ) {
        let path = case_path();
        SegmentWriter::with_block_size(block_size)
            .unwrap()
            .write_pairs(&path, pairs.clone())
            .unwrap();
        let seg = reopen(&path);
        let mem = MemorySource::from_pairs(pairs.clone());

        prop_assert_eq!(seg.len(), mem.len());
        for pass in ["cold", "warm"] {
            for rank in 0..=mem.len() {
                prop_assert_eq!(
                    seg.sorted_access(rank),
                    mem.sorted_access(rank),
                    "{} rank {}", pass, rank
                );
            }
            for probe in 0..220u64 {
                prop_assert_eq!(
                    seg.random_access(ObjectId(probe)),
                    mem.random_access(ObjectId(probe)),
                    "{} object {}", pass, probe
                );
            }
            prop_assert_eq!(seg.matching_set(), mem.matching_set(), "{}", pass);
        }
    }

    /// The batched cursor stream replays the positional stream for any
    /// batch size, and metering bills identically on both backends.
    #[test]
    fn cursor_stream_and_counts_match_memory(
        pairs in pairs_strategy(),
        block_size in block_size_strategy(),
        batch in 1usize..17,
    ) {
        let path = case_path();
        SegmentWriter::with_block_size(block_size)
            .unwrap()
            .write_pairs(&path, pairs.clone())
            .unwrap();
        let seg = CountingSource::new(reopen(&path));
        let mem = CountingSource::new(MemorySource::from_pairs(pairs));

        let mut seg_stream = Vec::new();
        let mut cursor = seg.open_sorted();
        while cursor.next_batch(&mut seg_stream, batch) > 0 {}
        let mut mem_stream = Vec::new();
        let mut cursor = mem.open_sorted();
        while cursor.next_batch(&mut mem_stream, batch) > 0 {}

        prop_assert_eq!(seg_stream, mem_stream);
        prop_assert_eq!(seg.stats(), mem.stats(), "identical Section-5 bills");
    }

    /// Block-grouped batched random access is observably the per-object
    /// loop: for arbitrary sparse probe sequences — duplicates, misses
    /// below/between/above the fences — the segment's `random_batch`
    /// answers exactly what `MemorySource` answers, positionally aligned,
    /// with identical Section-5 random bills, and touches each candidate
    /// table block at most once per batch.
    #[test]
    fn segment_random_batch_matches_memory_and_bills_identically(
        pairs in pairs_strategy(),
        block_size in block_size_strategy(),
        raw_probes in proptest::collection::vec(0u64..220, 0..80),
    ) {
        let path = case_path();
        SegmentWriter::with_block_size(block_size)
            .unwrap()
            .write_pairs(&path, pairs.clone())
            .unwrap();
        let cache = Arc::new(BlockCache::new(64));
        let seg = CountingSource::new(
            SegmentSource::open(&path, Arc::clone(&cache)).unwrap(),
        );
        let mem = CountingSource::new(MemorySource::from_pairs(pairs));
        let probes: Vec<ObjectId> = raw_probes.into_iter().map(ObjectId).collect();

        let mut from_seg = Vec::new();
        seg.random_batch(&probes, &mut from_seg);
        let mut from_mem = Vec::new();
        mem.random_batch(&probes, &mut from_mem);
        prop_assert_eq!(&from_seg, &from_mem);
        prop_assert_eq!(seg.stats(), mem.stats(), "identical random bills");

        // Probe-for-probe agreement with the per-object path too.
        let looped: Vec<Option<Grade>> =
            probes.iter().map(|&p| seg.random_access(p)).collect();
        prop_assert_eq!(&from_seg, &looped);

        // Block economy: the batch issued at most one cache request per
        // table block (every probe with a fence candidate maps to one).
        let entries_per_block = block_size / 16;
        let table_blocks = seg.inner().len().div_ceil(entries_per_block.max(1)) as u64;
        // The per-probe loop above polluted the counters; isolate one
        // batch's requests by re-running it against a cleared cache.
        cache.clear();
        let base = cache.stats();
        let mut again = Vec::new();
        seg.random_batch(&probes, &mut again);
        let after = cache.stats();
        let batch_requests = (after.hits + after.misses) - (base.hits + base.misses);
        prop_assert!(
            batch_requests <= table_blocks,
            "one batch issued {batch_requests} block requests over {table_blocks} table blocks"
        );
    }

    /// Fagin's algorithm over segment-backed sources returns the same
    /// top-k entries (objects, grades, tie order) with the same per-source
    /// Section-5 access counts as over memory-backed sources.
    #[test]
    fn fagin_topk_costs_the_same_on_disk(
        lists in proptest::collection::vec(
            proptest::collection::vec(0u32..=8, 1..40),
            1..4,
        ),
        k in 1usize..12,
    ) {
        let n = lists.iter().map(|l| l.len()).min().unwrap();
        let grades: Vec<Vec<Grade>> = lists
            .iter()
            .map(|l| l[..n].iter().map(|&g| Grade::clamped(g as f64 / 8.0)).collect())
            .collect();
        let k = k.min(n);

        let mem: Vec<CountingSource<MemorySource>> = grades
            .iter()
            .map(|g| CountingSource::new(MemorySource::from_grades(g)))
            .collect();
        let cache = Arc::new(BlockCache::new(64));
        let seg: Vec<CountingSource<SegmentSource>> = grades
            .iter()
            .map(|g| {
                let path = case_path();
                SegmentWriter::with_block_size(48)
                    .unwrap()
                    .write_grades(&path, g)
                    .unwrap();
                CountingSource::new(SegmentSource::open(&path, Arc::clone(&cache)).unwrap())
            })
            .collect();

        let agg = min_agg();
        let from_mem = fagin_topk(&mem, &agg, k).unwrap();
        let from_seg = fagin_topk(&seg, &agg, k).unwrap();

        prop_assert_eq!(from_seg.entries(), from_mem.entries(), "same answers, same tie order");
        for (s, m) in seg.iter().zip(&mem) {
            prop_assert_eq!(s.stats(), m.stats(), "same per-source access counts");
        }
    }

    /// A v1 segment and a v2 segment over the same pairs are observably
    /// one source: identical streams, tie order, random-access answers,
    /// matching sets, and Section-5 bills.
    #[test]
    fn v1_and_v2_formats_are_observably_identical(
        pairs in pairs_strategy(),
        block_size in block_size_strategy(),
        batch in 1usize..17,
    ) {
        let mut segs = Vec::new();
        for version in [FORMAT_V1, FORMAT_VERSION] {
            let path = case_path();
            SegmentWriter::with_block_size(block_size)
                .unwrap()
                .with_version(version)
                .unwrap()
                .write_pairs(&path, pairs.clone())
                .unwrap();
            segs.push(CountingSource::new(reopen(&path)));
        }
        let (v1, v2) = (&segs[0], &segs[1]);
        prop_assert_eq!(v1.inner().version(), FORMAT_V1);
        prop_assert_eq!(v2.inner().version(), FORMAT_VERSION);

        let mut streams = [Vec::new(), Vec::new()];
        for (seg, stream) in segs.iter().zip(streams.iter_mut()) {
            let mut cursor = seg.open_sorted();
            while cursor.next_batch(stream, batch) > 0 {}
        }
        let [s1, s2] = streams;
        prop_assert_eq!(s1, s2, "identical streams and tie order");
        for probe in 0..220u64 {
            prop_assert_eq!(
                v1.random_access(ObjectId(probe)),
                v2.random_access(ObjectId(probe)),
                "object {}", probe
            );
        }
        prop_assert_eq!(v1.matching_set(), v2.matching_set());
        prop_assert_eq!(v1.stats(), v2.stats(), "identical Section-5 bills");
    }

    /// A threshold-hinted cursor — with an arbitrary, possibly dirty hint
    /// — emits an exact prefix of the unbounded stream on every backend
    /// and format, is honest about why it stopped, bills exactly the
    /// entries it emitted, and resumes into the full stream once the
    /// stale hint is cleared.
    #[test]
    fn hinted_cursors_stay_exact_under_dirty_hints(
        pairs in pairs_strategy(),
        block_size in block_size_strategy(),
        version in version_strategy(),
        bound_num in 0u32..=10,
        batch in 1usize..17,
    ) {
        let path = case_path();
        SegmentWriter::with_block_size(block_size)
            .unwrap()
            .with_version(version)
            .unwrap()
            .write_pairs(&path, pairs.clone())
            .unwrap();
        let mem = MemorySource::from_pairs(pairs);
        let full: Vec<GradedEntry> =
            (0..mem.len()).map(|r| mem.sorted_access(r).unwrap()).collect();
        // Grades are quantized to ninths, the hint to tenths: hints land
        // on, between, above, and below every grade in the stream —
        // including hints no entry reaches (dirty-high) and the ZERO hint
        // that may never truncate.
        let bound = Grade::clamped(bound_num as f64 / 10.0);

        let seg = CountingSource::new(reopen(&path));
        let mut cursor = seg.open_sorted().with_bound(bound);
        let mut emitted = Vec::new();
        while cursor.next_batch(&mut emitted, batch) > 0 {}

        prop_assert_eq!(&emitted[..], &full[..emitted.len()], "exact prefix");
        prop_assert_eq!(
            seg.stats().sorted,
            emitted.len() as u64,
            "billed exactly the emitted entries"
        );
        if cursor.stopped_by_bound() {
            prop_assert!(
                full[emitted.len()..].iter().all(|e| e.grade < bound),
                "only entries strictly below the bound were withheld"
            );
        } else {
            prop_assert_eq!(emitted.len(), full.len(), "no stop means the whole stream");
        }

        // The hint was advisory: clear it and the cursor resumes into the
        // exact remainder of the stream.
        cursor.set_bound(None);
        while cursor.next_batch(&mut emitted, batch) > 0 {}
        prop_assert_eq!(emitted, full, "stitched stream equals the unbounded one");
    }

    /// Paging that stops mid-stream and resumes from a **cold** cursor — a
    /// fresh `SegmentSource` over a fresh cache, positioned by rank alone,
    /// as a process restart would — continues exactly where the warm
    /// stream left off.
    #[test]
    fn paging_resumes_from_a_cold_cursor(
        pairs in pairs_strategy(),
        block_size in block_size_strategy(),
        cut in 0usize..140,
    ) {
        let path = case_path();
        SegmentWriter::with_block_size(block_size)
            .unwrap()
            .write_pairs(&path, pairs.clone())
            .unwrap();
        let mem = MemorySource::from_pairs(pairs);
        let cut = cut.min(mem.len());

        // First process: page up to `cut` entries, remember only the rank.
        let mut first_leg: Vec<GradedEntry> = Vec::new();
        let resume_at = {
            let seg = reopen(&path);
            let mut cursor = seg.open_sorted();
            loop {
                let want = (cut - first_leg.len()).min(5);
                if want == 0 || cursor.next_batch(&mut first_leg, want) == 0 {
                    break;
                }
            }
            cursor.position()
        };

        // Second process: reopen cold, resume at the remembered rank.
        let seg = reopen(&path);
        let mut cursor = SortedCursor::at(&seg, resume_at);
        let mut second_leg = first_leg;
        while cursor.next_batch(&mut second_leg, 7) > 0 {}

        let reference: Vec<GradedEntry> =
            (0..mem.len()).map(|r| mem.sorted_access(r).unwrap()).collect();
        prop_assert_eq!(second_leg, reference, "stitched stream equals one-shot stream");
    }
}
