//! Corruption and truncation regression suite: every way a segment file
//! can be damaged must surface as a **typed** [`StorageError`] at open —
//! never a panic, never a silently wrong graded list. These are the
//! durability guarantees the README documents.

use std::path::PathBuf;
use std::sync::Arc;

use garlic_agg::Grade;
use garlic_core::GradedEntry;
use garlic_storage::format::{
    encode_entry, fnv1a64, Footer, ENTRY_LEN, FORMAT_VERSION, HEADER_MAGIC, TRAILER_MAGIC,
};
use garlic_storage::{BlockCache, SegmentSource, SegmentWriter, StorageError};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("garlic-storage-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A healthy multi-block segment to damage.
fn healthy(name: &str) -> PathBuf {
    let path = temp_path(name);
    let grades: Vec<Grade> = (0..64).map(|i| Grade::clamped(i as f64 / 64.0)).collect();
    SegmentWriter::with_block_size(64)
        .unwrap()
        .write_grades(&path, &grades)
        .unwrap();
    path
}

fn open(path: &PathBuf) -> Result<SegmentSource, StorageError> {
    SegmentSource::open(path, Arc::new(BlockCache::new(16)))
}

#[test]
fn healthy_segment_opens() {
    let path = healthy("healthy.seg");
    open(&path).unwrap();
}

#[test]
fn empty_file_is_truncated() {
    let path = temp_path("empty-file.seg");
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::Truncated { actual: 0, .. })
    ));
}

#[test]
fn foreign_file_is_bad_magic() {
    let path = temp_path("foreign.seg");
    std::fs::write(&path, vec![0x42; 4096]).unwrap();
    assert!(matches!(open(&path), Err(StorageError::BadMagic)));
}

#[test]
fn future_version_is_unsupported() {
    let path = healthy("future.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, bytes).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::UnsupportedVersion { found: 99 })
    ));
}

#[test]
fn truncated_copies_are_rejected_at_every_length() {
    // A partial copy can end anywhere: mid-blocks, mid-footer, mid-trailer.
    // Every cut must fail with a typed error (and the full file must open).
    let path = healthy("cuttable.seg");
    let bytes = std::fs::read(&path).unwrap();
    let cut_path = temp_path("cut.seg");
    for cut in [
        1,
        7,
        8,
        64,
        1000,
        bytes.len() - 24,
        bytes.len() - 8,
        bytes.len() - 1,
    ] {
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        let err = open(&cut_path).expect_err(&format!("cut at {cut} must not open"));
        assert!(
            matches!(
                err,
                StorageError::Truncated { .. }
                    | StorageError::FooterCorrupt { .. }
                    | StorageError::BadMagic
            ),
            "cut at {cut}: unexpected error {err}"
        );
    }
    std::fs::write(&cut_path, &bytes).unwrap();
    open(&cut_path).unwrap();
}

#[test]
fn flipped_data_block_bit_is_a_checksum_mismatch() {
    let path = healthy("bitrot-data.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    // First data block starts at byte 8.
    bytes[8 + 17] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::ChecksumMismatch { block: 0 })
    ));
}

#[test]
fn flipped_table_block_bit_is_a_checksum_mismatch() {
    let path = healthy("bitrot-table.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    // 64 entries in 64-byte blocks (4 entries each) = 16 data blocks; the
    // table region starts at block 16.
    bytes[8 + 16 * 64 + 3] ^= 0x80;
    std::fs::write(&path, bytes).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::ChecksumMismatch { block: 16 })
    ));
}

#[test]
fn flipped_footer_bit_is_footer_corrupt() {
    let path = healthy("bitrot-footer.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    let footer_offset = 8 + 32 * 64;
    bytes[footer_offset + 10] ^= 0x10;
    std::fs::write(&path, bytes).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));
}

/// Hand-builds a version-1 segment whose blocks carry *correct* checksums
/// over *bad* content — the case only deep verification catches.
fn forge(name: &str, entries: &[(u64, f64)], table: &[(u64, f64)], footer: Footer) -> PathBuf {
    let block_size = footer.block_size;
    let mut file = Vec::new();
    file.extend_from_slice(&HEADER_MAGIC);
    file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    let mut write_block = |pairs: &[(u64, f64)]| -> u64 {
        let mut block = vec![0u8; block_size];
        for (i, &(object, value)) in pairs.iter().enumerate() {
            // encode_entry goes through Grade, which rejects bad values;
            // forge raw bits instead when the grade is invalid.
            if let Ok(grade) = Grade::new(value) {
                encode_entry(
                    &mut block[i * ENTRY_LEN..(i + 1) * ENTRY_LEN],
                    GradedEntry::new(object, grade),
                );
            } else {
                block[i * ENTRY_LEN..i * ENTRY_LEN + 8].copy_from_slice(&object.to_le_bytes());
                block[i * ENTRY_LEN + 8..(i + 1) * ENTRY_LEN]
                    .copy_from_slice(&value.to_bits().to_le_bytes());
            }
        }
        let checksum = fnv1a64(&block);
        file.extend_from_slice(&block);
        checksum
    };
    let data_checksum = write_block(entries);
    let table_checksum = write_block(table);
    let footer = Footer {
        data_checksums: vec![data_checksum],
        table_checksums: vec![table_checksum],
        ..footer
    };
    let footer_bytes = footer.encode();
    let footer_offset = file.len() as u64;
    file.extend_from_slice(&footer_bytes);
    file.extend_from_slice(&footer_offset.to_le_bytes());
    file.extend_from_slice(&(footer_bytes.len() as u64).to_le_bytes());
    file.extend_from_slice(&TRAILER_MAGIC);
    let path = temp_path(name);
    std::fs::write(&path, file).unwrap();
    path
}

fn footer_skeleton() -> Footer {
    Footer {
        flags: 0,
        block_size: 64,
        num_entries: 3,
        ones: 0,
        data_blocks: 1,
        table_blocks: 1,
        data_checksums: vec![],
        table_checksums: vec![],
        table_first_ids: vec![0],
    }
}

#[test]
fn out_of_range_grade_is_corrupt_block() {
    let path = forge(
        "bad-grade.seg",
        &[(0, 2.0), (1, 0.5), (2, 0.1)],
        &[(0, 2.0), (1, 0.5), (2, 0.1)],
        footer_skeleton(),
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::CorruptBlock { block: 0, .. })
    ));
}

#[test]
fn broken_sort_order_is_corrupt_block() {
    // Grades ascend in the data region: checksums fine, order broken.
    let path = forge(
        "bad-order.seg",
        &[(0, 0.1), (1, 0.5), (2, 0.9)],
        &[(0, 0.1), (1, 0.5), (2, 0.9)],
        footer_skeleton(),
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::CorruptBlock { block: 0, .. })
    ));
}

#[test]
fn broken_tie_order_is_corrupt_block() {
    // Equal grades must ascend by object id — the skeleton is part of the
    // format, not a reader courtesy.
    let path = forge(
        "bad-ties.seg",
        &[(2, 0.5), (0, 0.5), (1, 0.5)],
        &[(0, 0.5), (1, 0.5), (2, 0.5)],
        footer_skeleton(),
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::CorruptBlock { block: 0, .. })
    ));
}

#[test]
fn duplicate_object_in_table_is_corrupt_block() {
    let path = forge(
        "dup-table.seg",
        &[(0, 0.9), (1, 0.5), (1, 0.1)],
        &[(0, 0.9), (1, 0.5), (1, 0.1)],
        footer_skeleton(),
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::CorruptBlock { block: 1, .. })
    ));
}

#[test]
fn lying_match_count_is_footer_corrupt() {
    let path = forge(
        "lying-ones.seg",
        &[(0, 0.9), (1, 0.5), (2, 0.1)],
        &[(0, 0.9), (1, 0.5), (2, 0.1)],
        Footer {
            ones: 2, // data region has zero grade-1 entries
            ..footer_skeleton()
        },
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));
}

#[test]
fn lying_crisp_flag_is_footer_corrupt() {
    let path = forge(
        "lying-crisp.seg",
        &[(0, 0.9), (1, 0.5), (2, 0.1)],
        &[(0, 0.9), (1, 0.5), (2, 0.1)],
        Footer {
            flags: garlic_storage::format::FLAG_CRISP,
            ..footer_skeleton()
        },
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));
}

#[test]
fn lying_fence_id_is_footer_corrupt() {
    let path = forge(
        "lying-fence.seg",
        &[(1, 0.9), (2, 0.5), (3, 0.1)],
        &[(1, 0.9), (2, 0.5), (3, 0.1)],
        Footer {
            table_first_ids: vec![0], // table actually starts at object 1
            ..footer_skeleton()
        },
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));
}

#[test]
fn divergent_regions_are_a_typed_error() {
    // Each region is internally flawless — valid checksums, valid grades,
    // correct sort order, correct fences — but they disagree on which
    // objects exist. Only the cross-region digest catches this.
    let path = forge(
        "divergent-objects.seg",
        &[(0, 0.9), (1, 0.5), (2, 0.1)],
        &[(0, 0.9), (1, 0.5), (3, 0.1)],
        footer_skeleton(),
    );
    assert!(matches!(open(&path), Err(StorageError::RegionMismatch)));

    // Same objects, one divergent grade: random access would lie.
    let path = forge(
        "divergent-grades.seg",
        &[(0, 0.9), (1, 0.5), (2, 0.1)],
        &[(0, 0.9), (1, 0.25), (2, 0.1)],
        footer_skeleton(),
    );
    assert!(matches!(open(&path), Err(StorageError::RegionMismatch)));
}

#[test]
fn forged_huge_block_size_is_a_typed_error() {
    // A self-consistent footer claiming block_size = 2^62 (a multiple of
    // 16, fits in u64) with one block per region: before geometry
    // hardening this overflowed the region arithmetic (panic in debug,
    // wrap + multi-EiB allocation in release). It must be a typed error.
    let footer = Footer {
        flags: 0,
        block_size: 1usize << 62,
        num_entries: 1,
        ones: 0,
        data_blocks: 1,
        table_blocks: 1,
        data_checksums: vec![0],
        table_checksums: vec![0],
        table_first_ids: vec![0],
    };
    let footer_bytes = footer.encode();
    let mut file = Vec::new();
    file.extend_from_slice(&HEADER_MAGIC);
    file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    let footer_offset = file.len() as u64;
    file.extend_from_slice(&footer_bytes);
    file.extend_from_slice(&footer_offset.to_le_bytes());
    file.extend_from_slice(&(footer_bytes.len() as u64).to_le_bytes());
    file.extend_from_slice(&TRAILER_MAGIC);
    let path = temp_path("huge-block.seg");
    std::fs::write(&path, file).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));
}

#[test]
fn oversized_block_size_is_rejected_writer_side() {
    use garlic_storage::format::MAX_BLOCK_SIZE;
    assert!(SegmentWriter::with_block_size(MAX_BLOCK_SIZE).is_ok());
    assert!(matches!(
        SegmentWriter::with_block_size(MAX_BLOCK_SIZE + 16),
        Err(StorageError::InvalidBlockSize { .. })
    ));
}

#[test]
fn swapped_region_order_is_detected() {
    // A writer bug that stored the table region first would present an
    // ascending "data" region — caught as a corrupt block.
    let path = forge(
        "swapped.seg",
        &[(0, 0.1), (1, 0.5), (2, 0.9)],
        &[(2, 0.9), (1, 0.5), (0, 0.1)],
        footer_skeleton(),
    );
    assert!(open(&path).is_err());
}
