//! Corruption and truncation regression suite: every way a segment file
//! can be damaged must surface as a **typed** [`StorageError`] at open —
//! never a panic, never a silently wrong graded list. These are the
//! durability guarantees the README documents.

use std::path::PathBuf;
use std::sync::Arc;

use garlic_agg::Grade;
use garlic_core::GradedEntry;
use garlic_storage::format::{
    encode_block_v2, encode_entry, fnv1a64, Footer, FooterV2, RegionKind, ENTRY_LEN, FORMAT_V1,
    FORMAT_VERSION, HEADER_MAGIC, TRAILER_MAGIC,
};
use garlic_storage::{BlockCache, SegmentSource, SegmentWriter, StorageError};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("garlic-storage-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A healthy multi-block segment (current format, v2) to damage.
fn healthy(name: &str) -> PathBuf {
    let path = temp_path(name);
    let grades: Vec<Grade> = (0..64).map(|i| Grade::clamped(i as f64 / 64.0)).collect();
    SegmentWriter::with_block_size(64)
        .unwrap()
        .write_grades(&path, &grades)
        .unwrap();
    path
}

/// The same segment in the legacy v1 layout, whose fixed-slot geometry the
/// byte-offset tests below rely on.
fn healthy_v1(name: &str) -> PathBuf {
    let path = temp_path(name);
    let grades: Vec<Grade> = (0..64).map(|i| Grade::clamped(i as f64 / 64.0)).collect();
    SegmentWriter::with_block_size(64)
        .unwrap()
        .with_version(FORMAT_V1)
        .unwrap()
        .write_grades(&path, &grades)
        .unwrap();
    path
}

/// Reads the footer offset out of a segment's trailer.
fn footer_offset(bytes: &[u8]) -> usize {
    u64::from_le_bytes(
        bytes[bytes.len() - 24..bytes.len() - 16]
            .try_into()
            .unwrap(),
    ) as usize
}

fn open(path: &PathBuf) -> Result<SegmentSource, StorageError> {
    SegmentSource::open(path, Arc::new(BlockCache::new(16)))
}

#[test]
fn healthy_segment_opens() {
    let path = healthy("healthy.seg");
    open(&path).unwrap();
}

#[test]
fn empty_file_is_truncated() {
    let path = temp_path("empty-file.seg");
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::Truncated { actual: 0, .. })
    ));
}

#[test]
fn foreign_file_is_bad_magic() {
    let path = temp_path("foreign.seg");
    std::fs::write(&path, vec![0x42; 4096]).unwrap();
    assert!(matches!(open(&path), Err(StorageError::BadMagic)));
}

#[test]
fn future_version_is_unsupported_and_names_both_sides() {
    let path = healthy("future.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, bytes).unwrap();
    let err = open(&path).unwrap_err();
    assert!(matches!(
        err,
        StorageError::UnsupportedVersion {
            found: 99,
            oldest_supported: FORMAT_V1,
            newest_supported: FORMAT_VERSION,
        }
    ));
    // The operator must learn both the file's version and what this build
    // reads, without digging through source.
    let message = format!("{err}");
    assert!(message.contains("99"), "{message}");
    assert!(
        message.contains(&format!("{FORMAT_V1} through {FORMAT_VERSION}")),
        "{message}"
    );
}

#[test]
fn ancient_version_is_unsupported() {
    let path = healthy("ancient.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4..8].copy_from_slice(&0u32.to_le_bytes());
    std::fs::write(&path, bytes).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::UnsupportedVersion { found: 0, .. })
    ));
}

#[test]
fn cross_version_opens_work_both_ways() {
    // A v1 file opens in a v2-default build; a v2 file written by the
    // default writer opens too. Compatibility is part of the format.
    let v1 = healthy_v1("cross-v1.seg");
    let v2 = healthy("cross-v2.seg");
    assert_eq!(open(&v1).unwrap().version(), FORMAT_V1);
    assert_eq!(open(&v2).unwrap().version(), FORMAT_VERSION);
}

#[test]
fn truncated_copies_are_rejected_at_every_length() {
    // A partial copy can end anywhere: mid-blocks, mid-footer, mid-trailer.
    // Every cut must fail with a typed error (and the full file must open).
    let path = healthy("cuttable.seg");
    let bytes = std::fs::read(&path).unwrap();
    let cut_path = temp_path("cut.seg");
    for cut in [
        1,
        7,
        8,
        64,
        1000,
        bytes.len() - 24,
        bytes.len() - 8,
        bytes.len() - 1,
    ] {
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        let err = open(&cut_path).expect_err(&format!("cut at {cut} must not open"));
        assert!(
            matches!(
                err,
                StorageError::Truncated { .. }
                    | StorageError::FooterCorrupt { .. }
                    | StorageError::BadMagic
            ),
            "cut at {cut}: unexpected error {err}"
        );
    }
    std::fs::write(&cut_path, &bytes).unwrap();
    open(&cut_path).unwrap();
}

#[test]
fn flipped_data_block_bit_is_a_checksum_mismatch() {
    let path = healthy_v1("bitrot-data.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    // First data block starts at byte 8.
    bytes[8 + 17] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::ChecksumMismatch { block: 0 })
    ));
}

#[test]
fn flipped_table_block_bit_is_a_checksum_mismatch() {
    let path = healthy_v1("bitrot-table.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    // 64 entries in 64-byte blocks (4 entries each) = 16 data blocks; the
    // table region starts at block 16.
    bytes[8 + 16 * 64 + 3] ^= 0x80;
    std::fs::write(&path, bytes).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::ChecksumMismatch { block: 16 })
    ));
}

#[test]
fn flipped_footer_bit_is_footer_corrupt() {
    let path = healthy_v1("bitrot-footer.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    let footer_offset = 8 + 32 * 64;
    bytes[footer_offset + 10] ^= 0x10;
    std::fs::write(&path, bytes).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));
}

#[test]
fn flipped_v2_data_block_bit_is_a_checksum_mismatch() {
    // v2 blocks are variable-length, but the first one still starts right
    // after the header.
    let path = healthy("bitrot-v2-data.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::ChecksumMismatch { block: 0 })
    ));
}

#[test]
fn flipped_v2_table_block_bit_is_a_checksum_mismatch() {
    // The byte immediately before the footer belongs to the last table
    // block (block 31 here: 16 data + 16 table).
    let path = healthy("bitrot-v2-table.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    let footer_at = footer_offset(&bytes);
    bytes[footer_at - 1] ^= 0x80;
    std::fs::write(&path, bytes).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::ChecksumMismatch { block: 31 })
    ));
}

#[test]
fn flipped_v2_footer_bit_is_footer_corrupt() {
    let path = healthy("bitrot-v2-footer.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    let footer_at = footer_offset(&bytes);
    bytes[footer_at + 10] ^= 0x10;
    std::fs::write(&path, bytes).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));
}

#[test]
fn truncated_v2_copies_are_rejected_at_every_length() {
    let path = healthy("cuttable-v2.seg");
    let bytes = std::fs::read(&path).unwrap();
    let cut_path = temp_path("cut-v2.seg");
    for cut in [
        9,
        100,
        bytes.len() / 2,
        bytes.len() - 25,
        bytes.len() - 24,
        bytes.len() - 1,
    ] {
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        let err = open(&cut_path).expect_err(&format!("cut at {cut} must not open"));
        assert!(
            matches!(
                err,
                StorageError::Truncated { .. }
                    | StorageError::FooterCorrupt { .. }
                    | StorageError::BadMagic
            ),
            "cut at {cut}: unexpected error {err}"
        );
    }
    std::fs::write(&cut_path, &bytes).unwrap();
    open(&cut_path).unwrap();
}

/// Hand-builds a version-1 segment whose blocks carry *correct* checksums
/// over *bad* content — the case only deep verification catches.
fn forge(name: &str, entries: &[(u64, f64)], table: &[(u64, f64)], footer: Footer) -> PathBuf {
    let block_size = footer.block_size;
    let mut file = Vec::new();
    file.extend_from_slice(&HEADER_MAGIC);
    file.extend_from_slice(&FORMAT_V1.to_le_bytes());
    let mut write_block = |pairs: &[(u64, f64)]| -> u64 {
        let mut block = vec![0u8; block_size];
        for (i, &(object, value)) in pairs.iter().enumerate() {
            // encode_entry goes through Grade, which rejects bad values;
            // forge raw bits instead when the grade is invalid.
            if let Ok(grade) = Grade::new(value) {
                encode_entry(
                    &mut block[i * ENTRY_LEN..(i + 1) * ENTRY_LEN],
                    GradedEntry::new(object, grade),
                );
            } else {
                block[i * ENTRY_LEN..i * ENTRY_LEN + 8].copy_from_slice(&object.to_le_bytes());
                block[i * ENTRY_LEN + 8..(i + 1) * ENTRY_LEN]
                    .copy_from_slice(&value.to_bits().to_le_bytes());
            }
        }
        let checksum = fnv1a64(&block);
        file.extend_from_slice(&block);
        checksum
    };
    let data_checksum = write_block(entries);
    let table_checksum = write_block(table);
    let footer = Footer {
        data_checksums: vec![data_checksum],
        table_checksums: vec![table_checksum],
        ..footer
    };
    let footer_bytes = footer.encode();
    let footer_offset = file.len() as u64;
    file.extend_from_slice(&footer_bytes);
    file.extend_from_slice(&footer_offset.to_le_bytes());
    file.extend_from_slice(&(footer_bytes.len() as u64).to_le_bytes());
    file.extend_from_slice(&TRAILER_MAGIC);
    let path = temp_path(name);
    std::fs::write(&path, file).unwrap();
    path
}

fn footer_skeleton() -> Footer {
    Footer {
        flags: 0,
        block_size: 64,
        num_entries: 3,
        ones: 0,
        data_blocks: 1,
        table_blocks: 1,
        data_checksums: vec![],
        table_checksums: vec![],
        table_first_ids: vec![0],
    }
}

#[test]
fn out_of_range_grade_is_corrupt_block() {
    let path = forge(
        "bad-grade.seg",
        &[(0, 2.0), (1, 0.5), (2, 0.1)],
        &[(0, 2.0), (1, 0.5), (2, 0.1)],
        footer_skeleton(),
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::CorruptBlock { block: 0, .. })
    ));
}

#[test]
fn broken_sort_order_is_corrupt_block() {
    // Grades ascend in the data region: checksums fine, order broken.
    let path = forge(
        "bad-order.seg",
        &[(0, 0.1), (1, 0.5), (2, 0.9)],
        &[(0, 0.1), (1, 0.5), (2, 0.9)],
        footer_skeleton(),
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::CorruptBlock { block: 0, .. })
    ));
}

#[test]
fn broken_tie_order_is_corrupt_block() {
    // Equal grades must ascend by object id — the skeleton is part of the
    // format, not a reader courtesy.
    let path = forge(
        "bad-ties.seg",
        &[(2, 0.5), (0, 0.5), (1, 0.5)],
        &[(0, 0.5), (1, 0.5), (2, 0.5)],
        footer_skeleton(),
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::CorruptBlock { block: 0, .. })
    ));
}

#[test]
fn duplicate_object_in_table_is_corrupt_block() {
    let path = forge(
        "dup-table.seg",
        &[(0, 0.9), (1, 0.5), (1, 0.1)],
        &[(0, 0.9), (1, 0.5), (1, 0.1)],
        footer_skeleton(),
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::CorruptBlock { block: 1, .. })
    ));
}

#[test]
fn lying_match_count_is_footer_corrupt() {
    let path = forge(
        "lying-ones.seg",
        &[(0, 0.9), (1, 0.5), (2, 0.1)],
        &[(0, 0.9), (1, 0.5), (2, 0.1)],
        Footer {
            ones: 2, // data region has zero grade-1 entries
            ..footer_skeleton()
        },
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));
}

#[test]
fn lying_crisp_flag_is_footer_corrupt() {
    let path = forge(
        "lying-crisp.seg",
        &[(0, 0.9), (1, 0.5), (2, 0.1)],
        &[(0, 0.9), (1, 0.5), (2, 0.1)],
        Footer {
            flags: garlic_storage::format::FLAG_CRISP,
            ..footer_skeleton()
        },
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));
}

#[test]
fn lying_fence_id_is_footer_corrupt() {
    let path = forge(
        "lying-fence.seg",
        &[(1, 0.9), (2, 0.5), (3, 0.1)],
        &[(1, 0.9), (2, 0.5), (3, 0.1)],
        Footer {
            table_first_ids: vec![0], // table actually starts at object 1
            ..footer_skeleton()
        },
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));
}

#[test]
fn divergent_regions_are_a_typed_error() {
    // Each region is internally flawless — valid checksums, valid grades,
    // correct sort order, correct fences — but they disagree on which
    // objects exist. Only the cross-region digest catches this.
    let path = forge(
        "divergent-objects.seg",
        &[(0, 0.9), (1, 0.5), (2, 0.1)],
        &[(0, 0.9), (1, 0.5), (3, 0.1)],
        footer_skeleton(),
    );
    assert!(matches!(open(&path), Err(StorageError::RegionMismatch)));

    // Same objects, one divergent grade: random access would lie.
    let path = forge(
        "divergent-grades.seg",
        &[(0, 0.9), (1, 0.5), (2, 0.1)],
        &[(0, 0.9), (1, 0.25), (2, 0.1)],
        footer_skeleton(),
    );
    assert!(matches!(open(&path), Err(StorageError::RegionMismatch)));
}

#[test]
fn forged_huge_block_size_is_a_typed_error() {
    // A self-consistent footer claiming block_size = 2^62 (a multiple of
    // 16, fits in u64) with one block per region: before geometry
    // hardening this overflowed the region arithmetic (panic in debug,
    // wrap + multi-EiB allocation in release). It must be a typed error.
    let footer = Footer {
        flags: 0,
        block_size: 1usize << 62,
        num_entries: 1,
        ones: 0,
        data_blocks: 1,
        table_blocks: 1,
        data_checksums: vec![0],
        table_checksums: vec![0],
        table_first_ids: vec![0],
    };
    let footer_bytes = footer.encode();
    let mut file = Vec::new();
    file.extend_from_slice(&HEADER_MAGIC);
    file.extend_from_slice(&FORMAT_V1.to_le_bytes());
    let footer_offset = file.len() as u64;
    file.extend_from_slice(&footer_bytes);
    file.extend_from_slice(&footer_offset.to_le_bytes());
    file.extend_from_slice(&(footer_bytes.len() as u64).to_le_bytes());
    file.extend_from_slice(&TRAILER_MAGIC);
    let path = temp_path("huge-block.seg");
    std::fs::write(&path, file).unwrap();
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));
}

#[test]
fn oversized_block_size_is_rejected_writer_side() {
    use garlic_storage::format::MAX_BLOCK_SIZE;
    assert!(SegmentWriter::with_block_size(MAX_BLOCK_SIZE).is_ok());
    assert!(matches!(
        SegmentWriter::with_block_size(MAX_BLOCK_SIZE + 16),
        Err(StorageError::InvalidBlockSize { .. })
    ));
}

/// Hand-builds a v2 segment whose blocks carry *correct* checksums, then
/// lets `tamper` damage the encoded blocks and/or footer before the
/// checksums and block lengths are (re)derived from the final block bytes —
/// so a tampered block still passes its checksum and only deep varint
/// verification can reject it.
fn forge_v2(
    name: &str,
    entries: &[GradedEntry],
    dict: Option<Vec<u64>>,
    tamper: impl FnOnce(&mut Vec<Vec<u8>>, &mut Vec<Vec<u8>>, &mut FooterV2),
) -> PathBuf {
    use garlic_storage::format::FLAG_GRADE_DICT;
    let block_size = 64;
    let per_block = block_size / ENTRY_LEN;
    let mut by_id = entries.to_vec();
    by_id.sort_by_key(|e| e.object);
    let encode_region = |region: &[GradedEntry], kind: RegionKind| -> Vec<Vec<u8>> {
        region
            .chunks(per_block)
            .map(|chunk| encode_block_v2(chunk, kind, dict.as_deref()))
            .collect()
    };
    let mut data_blocks = encode_region(entries, RegionKind::Data);
    let mut table_blocks = encode_region(&by_id, RegionKind::Table);
    let mut footer = FooterV2 {
        flags: if dict.is_some() { FLAG_GRADE_DICT } else { 0 },
        block_size,
        num_entries: entries.len() as u64,
        ones: entries.iter().filter(|e| e.grade == Grade::ONE).count() as u64,
        data_blocks: data_blocks.len() as u64,
        table_blocks: table_blocks.len() as u64,
        data_checksums: vec![],
        table_checksums: vec![],
        table_first_ids: by_id
            .chunks(per_block)
            .map(|chunk| chunk[0].object.0)
            .collect(),
        data_block_lens: vec![],
        table_block_lens: vec![],
        grade_max_bits: entries
            .chunks(per_block)
            .map(|chunk| chunk[0].grade.value().to_bits())
            .collect(),
        grade_min_bits: entries
            .chunks(per_block)
            .map(|chunk| chunk[chunk.len() - 1].grade.value().to_bits())
            .collect(),
        grade_dict: dict.clone().unwrap_or_default(),
    };
    tamper(&mut data_blocks, &mut table_blocks, &mut footer);
    footer.data_checksums = data_blocks.iter().map(|b| fnv1a64(b)).collect();
    footer.table_checksums = table_blocks.iter().map(|b| fnv1a64(b)).collect();
    footer.data_block_lens = data_blocks.iter().map(|b| b.len() as u64).collect();
    footer.table_block_lens = table_blocks.iter().map(|b| b.len() as u64).collect();

    let mut file = Vec::new();
    file.extend_from_slice(&HEADER_MAGIC);
    file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    for block in data_blocks.iter().chain(&table_blocks) {
        file.extend_from_slice(block);
    }
    let footer_bytes = footer.encode();
    let footer_offset = file.len() as u64;
    file.extend_from_slice(&footer_bytes);
    file.extend_from_slice(&footer_offset.to_le_bytes());
    file.extend_from_slice(&(footer_bytes.len() as u64).to_le_bytes());
    file.extend_from_slice(&TRAILER_MAGIC);
    let path = temp_path(name);
    std::fs::write(&path, file).unwrap();
    path
}

fn forge_entries() -> Vec<GradedEntry> {
    vec![
        GradedEntry::new(3u64, Grade::new(0.875).unwrap()),
        GradedEntry::new(2u64, Grade::new(0.75).unwrap()),
        GradedEntry::new(1u64, Grade::new(0.625).unwrap()),
        GradedEntry::new(0u64, Grade::new(0.5).unwrap()),
    ]
}

#[test]
fn untampered_v2_forgery_opens() {
    // The forge itself must be sound, or the negative tests prove nothing.
    let path = forge_v2("forge-v2-ok.seg", &forge_entries(), None, |_, _, _| {});
    open(&path).unwrap();
    let dict: Vec<u64> = forge_entries()
        .iter()
        .map(|e| e.grade.value().to_bits())
        .rev()
        .collect();
    let path = forge_v2(
        "forge-v2-ok-dict.seg",
        &forge_entries(),
        Some(dict),
        |_, _, _| {},
    );
    open(&path).unwrap();
}

#[test]
fn mid_varint_truncation_with_valid_checksum_is_corrupt_block() {
    // Cut the last byte of the first data block and recompute its checksum:
    // only the varint-frame decode can notice the damage.
    let path = forge_v2("forge-v2-cut.seg", &forge_entries(), None, |data, _, _| {
        data[0].pop();
    });
    assert!(matches!(
        open(&path),
        Err(StorageError::CorruptBlock { block: 0, .. })
    ));
}

#[test]
fn trailing_block_bytes_with_valid_checksum_are_corrupt_block() {
    let path = forge_v2(
        "forge-v2-trail.seg",
        &forge_entries(),
        None,
        |data, _, _| {
            data[0].push(0x7f);
        },
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::CorruptBlock { block: 0, .. })
    ));
}

#[test]
fn dictionary_index_out_of_range_is_corrupt_block() {
    // Encode against a 4-grade dictionary, then shrink the footer's copy:
    // surviving indices point past its end.
    let dict: Vec<u64> = forge_entries()
        .iter()
        .map(|e| e.grade.value().to_bits())
        .rev()
        .collect();
    let path = forge_v2(
        "forge-v2-dict.seg",
        &forge_entries(),
        Some(dict),
        |_, _, footer| {
            footer.grade_dict.truncate(2);
        },
    );
    assert!(matches!(
        open(&path),
        Err(StorageError::CorruptBlock { .. })
    ));
}

#[test]
fn lying_grade_fence_is_footer_corrupt() {
    // A fence claiming a higher max than the block holds would let a
    // threshold-hinted scan load (or bill) the wrong blocks; a fence
    // claiming a lower max would skip entries it must emit. Both lies are
    // self-consistent footers — only the open-time scan catches them.
    let raise_max = |_: &mut Vec<Vec<u8>>, _: &mut Vec<Vec<u8>>, footer: &mut FooterV2| {
        footer.grade_max_bits[0] = Grade::new(0.9375).unwrap().value().to_bits();
    };
    let path = forge_v2("forge-v2-fence-max.seg", &forge_entries(), None, raise_max);
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));

    let lower_min = |_: &mut Vec<Vec<u8>>, _: &mut Vec<Vec<u8>>, footer: &mut FooterV2| {
        footer.grade_min_bits[0] = Grade::new(0.25).unwrap().value().to_bits();
    };
    let path = forge_v2("forge-v2-fence-min.seg", &forge_entries(), None, lower_min);
    assert!(matches!(
        open(&path),
        Err(StorageError::FooterCorrupt { .. })
    ));
}

#[test]
fn v2_region_divergence_is_detected() {
    // Replace the table region with one that swaps a grade: every block
    // checksum is valid, both orders hold — only the cross-region digest
    // of canonical entry slots catches it.
    let path = forge_v2(
        "forge-v2-diverge.seg",
        &forge_entries(),
        None,
        |_, table, _| {
            let mut by_id = forge_entries();
            by_id.sort_by_key(|e| e.object);
            by_id[1].grade = Grade::new(0.3125).unwrap();
            *table = vec![encode_block_v2(&by_id, RegionKind::Table, None)];
        },
    );
    assert!(matches!(open(&path), Err(StorageError::RegionMismatch)));
}

#[test]
fn swapped_region_order_is_detected() {
    // A writer bug that stored the table region first would present an
    // ascending "data" region — caught as a corrupt block.
    let path = forge(
        "swapped.seg",
        &[(0, 0.1), (1, 0.5), (2, 0.9)],
        &[(2, 0.9), (1, 0.5), (0, 0.1)],
        footer_skeleton(),
    );
    assert!(open(&path).is_err());
}
