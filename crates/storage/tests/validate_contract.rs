//! The Section 4 access-contract audit (`garlic_core::validate`) run
//! against disk-backed sources — the exact vetting a middleware deployment
//! would run before registering a persistent collection, against both a
//! cold and a warm cache (cache state must never be observable in the
//! contract).

use std::path::PathBuf;
use std::sync::Arc;

use garlic_agg::Grade;
use garlic_core::access::{CountingSource, GradedSource};
use garlic_core::validate::validate_source;
use garlic_storage::{BlockCache, SegmentSource, SegmentWriter};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("garlic-storage-validate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn graded_segment(name: &str, block_size: usize) -> PathBuf {
    let path = temp_path(name);
    // 100 grades over an 11-point grid: plenty of ties, several blocks.
    let grades: Vec<Grade> = (0..100)
        .map(|i| Grade::clamped((i * 7 % 11) as f64 / 10.0))
        .collect();
    SegmentWriter::with_block_size(block_size)
        .unwrap()
        .write_grades(&path, &grades)
        .unwrap();
    path
}

#[test]
fn cold_segment_passes_the_audit() {
    let path = graded_segment("cold.seg", 64);
    let cache = Arc::new(BlockCache::new(64));
    let seg = SegmentSource::open(&path, Arc::clone(&cache)).unwrap();
    assert_eq!(cache.stats().resident, 0, "audit starts cold");
    validate_source(&seg).unwrap();
}

#[test]
fn warm_segment_passes_the_audit() {
    let path = graded_segment("warm.seg", 64);
    let seg = SegmentSource::open(&path, Arc::new(BlockCache::new(64))).unwrap();
    // Warm every block through both access paths, then audit again.
    let mut out = Vec::new();
    seg.sorted_batch(0, 100, &mut out);
    for entry in &out {
        seg.random_access(entry.object).unwrap();
    }
    assert!(seg.cache().stats().hits + seg.cache().stats().misses > 0);
    validate_source(&seg).unwrap();
    let warm = seg.cache().stats();
    assert!(warm.hits > 0, "warm audit served from cache");
}

#[test]
fn audit_passes_under_an_evicting_cache() {
    // A cache smaller than one region: every block is repeatedly evicted
    // and reloaded mid-audit; the stream must not care.
    let path = graded_segment("thrash.seg", 64);
    let cache = Arc::new(BlockCache::new(2));
    let seg = SegmentSource::open(&path, Arc::clone(&cache)).unwrap();
    validate_source(&seg).unwrap();
    assert!(cache.stats().evictions > 0, "the audit really did thrash");
}

#[test]
fn audit_cost_is_linear_on_disk_too() {
    // Same pin as the core contract tests: 2·len sorted + 2·len random
    // (one per-object pass plus one batched pass; the audit's deliberate
    // miss probes bill nothing) — block reads are not accesses; the
    // Section 5 bill must not change because the source pages from disk.
    let path = graded_segment("metered.seg", 64);
    let seg =
        CountingSource::new(SegmentSource::open(&path, Arc::new(BlockCache::new(64))).unwrap());
    validate_source(&seg).unwrap();
    let stats = seg.stats();
    assert_eq!(stats.sorted, 200);
    assert_eq!(stats.random, 200);
}

#[test]
fn owned_handles_pass_the_audit() {
    let path = graded_segment("arc.seg", 64);
    let seg: Arc<dyn GradedSource> =
        Arc::new(SegmentSource::open(&path, Arc::new(BlockCache::new(64))).unwrap());
    validate_source(&seg).unwrap();
}

#[test]
fn crisp_and_empty_segments_pass_the_audit() {
    let crisp_path = temp_path("crisp.seg");
    SegmentWriter::with_block_size(48)
        .unwrap()
        .write_grades(
            &crisp_path,
            &(0..20)
                .map(|i| Grade::from_bool(i % 3 == 0))
                .collect::<Vec<_>>(),
        )
        .unwrap();
    let crisp = SegmentSource::open(&crisp_path, Arc::new(BlockCache::new(8))).unwrap();
    assert!(crisp.is_crisp());
    validate_source(&crisp).unwrap();

    let empty_path = temp_path("empty.seg");
    SegmentWriter::new().write_grades(&empty_path, &[]).unwrap();
    let empty = SegmentSource::open(&empty_path, Arc::new(BlockCache::new(8))).unwrap();
    validate_source(&empty).unwrap();
}
