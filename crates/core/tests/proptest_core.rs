//! Property tests for the access layer: metering, complement sources, and
//! the source-contract validator, on arbitrary grade assignments.

use garlic_agg::Grade;
use garlic_core::access::{CountingSource, GradedSource, MemorySource};
use garlic_core::complement::ComplementSource;
use garlic_core::validate::validate_source;
use garlic_core::{AccessStats, ObjectId};
use proptest::prelude::*;

fn grades() -> impl Strategy<Value = Vec<Grade>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..=3).prop_map(|q| Grade::clamped(q as f64 / 3.0)),
            (0.0f64..=1.0).prop_map(Grade::clamped),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn memory_sources_always_validate(gs in grades()) {
        let source = MemorySource::from_grades(&gs);
        prop_assert!(validate_source(&source).is_ok());
    }

    #[test]
    fn complement_sources_always_validate(gs in grades()) {
        let source = ComplementSource::new(MemorySource::from_grades(&gs));
        prop_assert!(validate_source(&source).is_ok());
    }

    #[test]
    fn sorted_access_enumerates_every_object_once(gs in grades()) {
        let source = MemorySource::from_grades(&gs);
        let mut seen: Vec<ObjectId> =
            (0..gs.len()).map(|r| source.sorted_access(r).unwrap().object).collect();
        seen.sort();
        let expected: Vec<ObjectId> = (0..gs.len() as u64).map(ObjectId).collect();
        prop_assert_eq!(seen, expected);
        prop_assert!(source.sorted_access(gs.len()).is_none());
    }

    #[test]
    fn random_access_agrees_with_construction(gs in grades()) {
        let source = MemorySource::from_grades(&gs);
        for (i, g) in gs.iter().enumerate() {
            prop_assert_eq!(source.random_access(ObjectId(i as u64)), Some(*g));
        }
    }

    #[test]
    fn counting_is_exact(gs in grades(), sorted_n in 0usize..50, random_n in 0usize..50) {
        let source = CountingSource::new(MemorySource::from_grades(&gs));
        let mut expect_sorted = 0;
        for r in 0..sorted_n {
            if source.sorted_access(r % gs.len().max(1)).is_some() {
                expect_sorted += 1;
            }
        }
        let mut expect_random = 0;
        for r in 0..random_n {
            if source.random_access(ObjectId((r % gs.len().max(1)) as u64)).is_some() {
                expect_random += 1;
            }
        }
        prop_assert_eq!(source.stats(), AccessStats::new(expect_sorted, expect_random));
    }

    #[test]
    fn complement_random_access_is_involutive(gs in grades()) {
        let base = MemorySource::from_grades(&gs);
        let twice = ComplementSource::new(ComplementSource::new(base.clone()));
        for i in 0..gs.len() as u64 {
            let id = ObjectId(i);
            prop_assert!(twice
                .random_access(id)
                .unwrap()
                .approx_eq(base.random_access(id).unwrap(), 1e-12));
        }
    }

    #[test]
    fn complement_reverses_the_ranking(gs in grades()) {
        let base = MemorySource::from_grades(&gs);
        let comp = ComplementSource::new(base.clone());
        let n = gs.len();
        for r in 0..n {
            let fwd = base.sorted_access(r).unwrap();
            let bwd = comp.sorted_access(n - 1 - r).unwrap();
            prop_assert_eq!(fwd.object, bwd.object);
            prop_assert!(bwd.grade.approx_eq(fwd.grade.complement(), 1e-12));
        }
    }
}

/// The metering wrapper is transparent: answers through it are identical.
#[test]
fn counting_wrapper_is_transparent() {
    let g = |v: f64| Grade::new(v).unwrap();
    let gs = [g(0.4), g(0.9), g(0.1), g(0.6)];
    let plain = MemorySource::from_grades(&gs);
    let counted = CountingSource::new(MemorySource::from_grades(&gs));
    for r in 0..4 {
        assert_eq!(plain.sorted_access(r), counted.sorted_access(r));
    }
    for i in 0..4u64 {
        assert_eq!(
            plain.random_access(ObjectId(i)),
            counted.random_access(ObjectId(i))
        );
    }
}
