//! The cursor-based engine vs the seed positional algorithms.
//!
//! The batched engine must be *observably identical* to the positional
//! round-robin formulation the paper states: same answers, same grades, and
//! the same Section 5 access statistics, entry for entry. This suite pins
//! that equivalence with reference re-implementations of the seed
//! positional algorithms (`reference` module below, one virtual
//! `sorted_access(rank)` call per entry) and compares them against the
//! engine-backed public API — on random workloads and on sources produced
//! by all four subsystem families (relational, QBIC, text, cd_store).

use garlic_agg::iterated::{max_agg, min_agg, product_agg};
use garlic_agg::means::ArithmeticMean;
use garlic_agg::{Aggregation, Grade};
use garlic_core::access::{counted, total_stats, CountingSource, MemorySource};
use garlic_core::algorithms::b0_max::b0_max_topk;
use garlic_core::algorithms::fa::{fagin_run, fagin_topk, FaOptions};
use garlic_core::algorithms::fa_min::fagin_min_run;
use garlic_core::algorithms::naive::naive_topk;
use garlic_core::algorithms::resume::ResumableFa;
use garlic_core::{AccessStats, GradedSource, ObjectId, TopK};
use proptest::prelude::*;

/// Reference re-implementations of the seed *positional* algorithms: the
/// exact pre-engine control flow, one `sorted_access(rank)` per entry.
mod reference {
    use std::collections::HashMap;

    use super::*;

    pub struct Phase {
        pub m: usize,
        pub n: usize,
        pub grades: HashMap<ObjectId, Vec<Option<Grade>>>,
        pub ranks: HashMap<ObjectId, Vec<Option<usize>>>,
        pub matched: Vec<ObjectId>,
        pub depth: usize,
    }

    impl Phase {
        pub fn new(m: usize, n: usize) -> Self {
            Phase {
                m,
                n,
                grades: HashMap::new(),
                ranks: HashMap::new(),
                matched: Vec::new(),
                depth: 0,
            }
        }

        /// The seed round-robin loop: one positional access per list per
        /// level, stopping at the first depth with `k` matches.
        pub fn advance_until_matched<S: GradedSource>(&mut self, sources: &[S], k: usize) {
            while self.matched.len() < k && self.depth < self.n {
                for (i, source) in sources.iter().enumerate() {
                    let entry = source.sorted_access(self.depth).unwrap();
                    let g = self
                        .grades
                        .entry(entry.object)
                        .or_insert_with(|| vec![None; self.m]);
                    g[i] = Some(entry.grade);
                    self.ranks
                        .entry(entry.object)
                        .or_insert_with(|| vec![None; self.m])[i] = Some(self.depth);
                    if g.iter().filter(|x| x.is_some()).count() == self.m
                        && self.ranks[&entry.object].iter().all(Option::is_some)
                    {
                        self.matched.push(entry.object);
                    }
                }
                self.depth += 1;
            }
        }

        pub fn complete<S: GradedSource>(
            &mut self,
            sources: &[S],
            objects: impl IntoIterator<Item = ObjectId>,
        ) {
            for object in objects {
                let g = self
                    .grades
                    .entry(object)
                    .or_insert_with(|| vec![None; self.m]);
                for (i, source) in sources.iter().enumerate() {
                    if g[i].is_none() {
                        g[i] = Some(source.random_access(object).unwrap());
                    }
                }
            }
        }

        pub fn overall<A: Aggregation>(&self, object: ObjectId, agg: &A) -> Grade {
            let gs: Vec<Grade> = self.grades[&object].iter().map(|g| g.unwrap()).collect();
            agg.combine(&gs)
        }
    }

    /// Seed A₀ (no depth shrinking): sorted to k matches, complete every
    /// seen object, select.
    pub fn fagin<S: GradedSource, A: Aggregation>(sources: &[S], agg: &A, k: usize) -> TopK {
        let n = sources[0].len();
        let mut phase = Phase::new(sources.len(), n);
        phase.advance_until_matched(sources, k);
        let candidates: Vec<ObjectId> = phase
            .ranks
            .iter()
            .filter(|(_, ranks)| ranks.iter().any(Option::is_some))
            .map(|(&id, _)| id)
            .collect();
        phase.complete(sources, candidates.iter().copied());
        TopK::select(
            candidates
                .into_iter()
                .map(|id| (id, phase.overall(id, agg))),
            k,
        )
    }

    /// Seed A₀′: the min-specialised candidate rule of Proposition 4.3.
    pub fn fagin_min<S: GradedSource>(sources: &[S], k: usize) -> TopK {
        let n = sources[0].len();
        let mut phase = Phase::new(sources.len(), n);
        phase.advance_until_matched(sources, k);
        let (g0, i0) = phase
            .matched
            .iter()
            .map(|id| {
                let (list, grade) = phase.grades[id]
                    .iter()
                    .enumerate()
                    .map(|(i, g)| (i, g.unwrap()))
                    .min_by(|a, b| a.1.cmp(&b.1))
                    .unwrap();
                (grade, list)
            })
            .min_by(|a, b| a.0.cmp(&b.0))
            .unwrap();
        let candidates: Vec<ObjectId> = phase
            .ranks
            .iter()
            .filter(|(id, ranks)| ranks[i0].is_some() && phase.grades[id][i0].unwrap() >= g0)
            .map(|(&id, _)| id)
            .collect();
        phase.complete(sources, candidates.iter().copied());
        TopK::select(
            candidates.into_iter().map(|id| {
                (
                    id,
                    phase.grades[&id].iter().map(|g| g.unwrap()).min().unwrap(),
                )
            }),
            k,
        )
    }

    /// Seed B₀: positional top-k of every list, best shown grade wins.
    pub fn b0_max<S: GradedSource>(sources: &[S], k: usize) -> TopK {
        let mut h: HashMap<ObjectId, Grade> = HashMap::new();
        for source in sources {
            for rank in 0..k {
                let e = source.sorted_access(rank).unwrap();
                h.entry(e.object)
                    .and_modify(|g| *g = (*g).max(e.grade))
                    .or_insert(e.grade);
            }
        }
        TopK::select(h, k)
    }

    /// Seed naive: positional full scan of every list.
    pub fn naive<S: GradedSource, A: Aggregation>(sources: &[S], agg: &A, k: usize) -> TopK {
        let n = sources[0].len();
        let m = sources.len();
        let mut grades: HashMap<ObjectId, Vec<Grade>> = HashMap::with_capacity(n);
        for (i, source) in sources.iter().enumerate() {
            for rank in 0..n {
                let e = source.sorted_access(rank).unwrap();
                grades
                    .entry(e.object)
                    .or_insert_with(|| vec![Grade::ZERO; m])[i] = e.grade;
            }
        }
        TopK::select(grades.into_iter().map(|(id, gs)| (id, agg.combine(&gs))), k)
    }
}

fn db_strategy() -> impl Strategy<Value = Vec<Vec<Grade>>> {
    (1..=4usize, 1..=28usize).prop_flat_map(|(m, n)| {
        proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    // Quantised grades force ties, exercising skeleton
                    // tie-breaks and pivot/threshold tie handling.
                    (0u8..=4).prop_map(|q| Grade::clamped(q as f64 / 4.0)),
                    (0.0f64..=1.0).prop_map(Grade::clamped),
                ],
                n..=n,
            ),
            m..=m,
        )
    })
}

fn sources_of(db: &[Vec<Grade>]) -> Vec<MemorySource> {
    db.iter().map(|g| MemorySource::from_grades(g)).collect()
}

fn counted_of(db: &[Vec<Grade>]) -> Vec<CountingSource<MemorySource>> {
    counted(sources_of(db))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fa_matches_seed_positional_in_answers_and_stats(db in db_strategy(), k_frac in 0.0f64..=1.0) {
        let n = db[0].len();
        let k = ((k_frac * n as f64) as usize).clamp(1, n);
        for agg in [&min_agg() as &dyn Aggregation, &product_agg(), &ArithmeticMean] {
            let engine_sources = counted_of(&db);
            let engine_top = fagin_topk(&engine_sources, &agg, k).unwrap();
            let engine_stats = total_stats(&engine_sources);

            let ref_sources = counted_of(&db);
            let ref_top = reference::fagin(&ref_sources, &agg, k);
            let ref_stats = total_stats(&ref_sources);

            prop_assert!(engine_top.same_grades(&ref_top, 0.0), "{}", agg.name());
            // Stronger than grade equivalence: the slab engine and the
            // positional reference hand their candidates to the same
            // total-order selection, so entries — objects *and* tie order —
            // must be bit-identical, not merely interchangeable.
            prop_assert_eq!(engine_top.entries(), ref_top.entries(), "{}", agg.name());
            prop_assert_eq!(engine_stats, ref_stats, "{}", agg.name());
        }
    }

    /// The slab engine's batched `random_batch` completion vs the
    /// per-object loop: identical grades, identical misses, identical
    /// per-source Section 5 counts — for arbitrary probe sequences with
    /// duplicates and out-of-universe ids.
    #[test]
    fn memory_random_batch_is_observably_the_per_object_loop(
        db in db_strategy(),
        raw_probes in proptest::collection::vec(0u64..40, 0..60),
    ) {
        let probes: Vec<ObjectId> = raw_probes.into_iter().map(ObjectId).collect();
        for source in counted_of(&db) {
            let mut batched = Vec::new();
            source.random_batch(&probes, &mut batched);
            let batch_stats = source.stats();
            source.reset();
            let looped: Vec<Option<garlic_agg::Grade>> =
                probes.iter().map(|&p| source.random_access(p)).collect();
            prop_assert_eq!(&batched, &looped);
            prop_assert_eq!(batch_stats, source.stats());
        }
    }

    /// Paged sessions vs a straightforward reference pager (complete
    /// everything seen, hash-set returned filter, same selection): the
    /// slab session's high-water-mark and bitvec bookkeeping must be
    /// invisible — bit-identical page entries and per-source stats.
    #[test]
    fn paged_session_matches_reference_pager(db in db_strategy(), batch in 1usize..6) {
        let n = db[0].len();
        let m = db.len();
        let agg = min_agg();

        let engine_sources = counted_of(&db);
        let mut session = garlic_core::EngineSession::new(engine_sources, &agg).unwrap();

        let ref_sources = counted_of(&db);
        let mut phase = reference::Phase::new(m, n);
        let mut returned: std::collections::HashSet<ObjectId> = std::collections::HashSet::new();
        let mut cumulative = 0usize;

        loop {
            let page = session.next_batch(batch).unwrap();

            // Reference page: resume the positional loop to the cumulative
            // target, complete everything seen, select among not-returned.
            let target = (cumulative + batch).min(n);
            let take = target - cumulative;
            phase.advance_until_matched(&ref_sources, target);
            let seen: Vec<ObjectId> = phase.ranks.keys().copied().collect();
            phase.complete(&ref_sources, seen.iter().copied());
            let ref_page = TopK::select(
                seen.iter()
                    .filter(|id| !returned.contains(id))
                    .map(|&id| (id, phase.overall(id, &agg))),
                take,
            );
            for e in ref_page.entries() {
                returned.insert(e.object);
            }
            cumulative = target;

            prop_assert_eq!(page.entries(), ref_page.entries(), "page at {}", cumulative);
            for (a, b) in session.sources().iter().zip(&ref_sources) {
                prop_assert_eq!(a.stats(), b.stats(), "stats at {}", cumulative);
            }
            if page.is_empty() {
                break;
            }
        }
        prop_assert_eq!(session.returned(), n);
    }

    #[test]
    fn fa_min_matches_seed_positional_in_answers_and_stats(db in db_strategy(), k_frac in 0.0f64..=1.0) {
        let n = db[0].len();
        let k = ((k_frac * n as f64) as usize).clamp(1, n);

        let engine_sources = counted_of(&db);
        let engine_run = fagin_min_run(&engine_sources, k).unwrap();
        let engine_stats = total_stats(&engine_sources);

        let ref_sources = counted_of(&db);
        let ref_top = reference::fagin_min(&ref_sources, k);
        let ref_stats = total_stats(&ref_sources);

        prop_assert!(engine_run.topk.same_grades(&ref_top, 0.0));
        prop_assert_eq!(engine_stats, ref_stats);
    }

    #[test]
    fn b0_matches_seed_positional_in_answers_and_stats(db in db_strategy(), k_frac in 0.0f64..=1.0) {
        let n = db[0].len();
        let m = db.len();
        let k = ((k_frac * n as f64) as usize).clamp(1, n);

        let engine_sources = counted_of(&db);
        let engine_top = b0_max_topk(&engine_sources, k).unwrap();
        let engine_stats = total_stats(&engine_sources);

        let ref_sources = counted_of(&db);
        let ref_top = reference::b0_max(&ref_sources, k);
        let ref_stats = total_stats(&ref_sources);

        prop_assert!(engine_top.same_grades(&ref_top, 0.0));
        prop_assert_eq!(engine_stats, ref_stats);
        prop_assert_eq!(engine_stats, AccessStats::new((m * k) as u64, 0));
    }

    #[test]
    fn naive_matches_seed_positional_in_answers_and_stats(db in db_strategy(), k_frac in 0.0f64..=1.0) {
        let n = db[0].len();
        let m = db.len();
        let k = ((k_frac * n as f64) as usize).clamp(1, n);

        let engine_sources = counted_of(&db);
        let engine_top = naive_topk(&engine_sources, &min_agg(), k).unwrap();
        let engine_stats = total_stats(&engine_sources);

        let ref_sources = counted_of(&db);
        let ref_top = reference::naive(&ref_sources, &min_agg(), k);
        let ref_stats = total_stats(&ref_sources);

        prop_assert!(engine_top.same_grades(&ref_top, 0.0));
        prop_assert_eq!(engine_stats, ref_stats);
        prop_assert_eq!(engine_stats, AccessStats::new((m * n) as u64, 0));
    }

    #[test]
    fn resumable_paging_matches_seed_sorted_cost(db in db_strategy(), batch in 1usize..5) {
        // Paging through the whole result set: grades equal the one-shot
        // ranking and the sorted cost equals one evaluation at k = N
        // (m·N), the seed ResumableFa property.
        let n = db[0].len();
        let m = db.len();
        let sources = counted_of(&db);
        let agg = min_agg();
        let mut session = ResumableFa::new(&sources, &agg).unwrap();
        let mut collected: Vec<Grade> = Vec::new();
        loop {
            let chunk = session.next_batch(batch).unwrap();
            if chunk.is_empty() {
                break;
            }
            collected.extend(chunk.grades());
        }
        let stats = total_stats(&sources);
        prop_assert_eq!(collected.len(), n);
        prop_assert_eq!(stats.sorted, (m * n) as u64);

        let oneshot = reference::fagin(&sources_of(&db), &agg, n);
        for (got, want) in collected.iter().zip(oneshot.grades()) {
            prop_assert!(got.approx_eq(want, 0.0));
        }
    }

    // Bugfix-grade coverage for `FaOptions::shrink_depths` (the Section 4
    // per-list depth refinement).
    #[test]
    fn shrunk_depths_still_witness_k_matches_and_the_same_topk(db in db_strategy(), k_frac in 0.0f64..=1.0) {
        let n = db[0].len();
        let k = ((k_frac * n as f64) as usize).clamp(1, n);
        let sources = sources_of(&db);

        let plain = fagin_run(&sources, &min_agg(), k, FaOptions::default()).unwrap();
        let shrunk = fagin_run(
            &sources,
            &min_agg(),
            k,
            FaOptions { shrink_depths: true },
        )
        .unwrap();

        // (a) each Tᵢ is a real shrink: Tᵢ ≤ T, and never deeper than N.
        prop_assert_eq!(shrunk.per_list_depths.len(), sources.len());
        for &t_i in &shrunk.per_list_depths {
            prop_assert!(t_i <= plain.stop_depth);
            prop_assert!(t_i <= n);
        }

        // (b) the shrunk prefixes still witness k matches:
        // |∩ᵢ X^i_{Tᵢ}| ≥ k, recomputed from scratch off the raw sources.
        let mut witness: Option<std::collections::HashSet<ObjectId>> = None;
        for (source, &t_i) in sources.iter().zip(&shrunk.per_list_depths) {
            let prefix: std::collections::HashSet<ObjectId> =
                (0..t_i).map(|r| source.sorted_access(r).unwrap().object).collect();
            witness = Some(match witness {
                None => prefix,
                Some(w) => w.intersection(&prefix).copied().collect(),
            });
        }
        prop_assert!(witness.unwrap().len() >= k);

        // (c) the refinement never changes the answer, only the cost.
        prop_assert!(shrunk.topk.same_grades(&plain.topk, 0.0));
        prop_assert!(shrunk.candidates <= plain.candidates);
    }
}

/// The opt-in parallel sorted fetch vs the sequential default, on a scan
/// deep enough that the scoped-thread rounds actually trigger: identical
/// match order, identical per-source Section 5 counts, identical grade
/// vectors, and an identical paged top-k through `EngineSession`.
#[test]
fn parallel_fetch_is_bit_identical_on_a_deep_scan() {
    use garlic_core::Engine;

    let n = 5000usize; // > 2 × PARALLEL_LEVELS, so deep rounds parallelise
    let list = |mult: u64| {
        let grades: Vec<Grade> = (0..n as u64)
            .map(|i| Grade::clamped((i.wrapping_mul(mult) % n as u64) as f64 / n as f64))
            .collect();
        MemorySource::from_grades(&grades)
    };
    let lists = || vec![list(7919), list(104_729), list(613)];

    let mut parallel = Engine::open(counted(lists()))
        .unwrap()
        .with_parallel_fetch(true);
    parallel.advance_to_depth(n).unwrap();
    let mut sequential = Engine::open(counted(lists())).unwrap();
    sequential.advance_to_depth(n).unwrap();

    assert_eq!(parallel.matched(), sequential.matched());
    for (p, s) in parallel.sources().iter().zip(sequential.sources()) {
        assert_eq!(p.stats(), s.stats());
    }
    for id in (0..n as u64).step_by(617) {
        assert_eq!(
            parallel.grade_vector(ObjectId(id)),
            sequential.grade_vector(ObjectId(id)),
            "object {id}"
        );
    }

    // Paged selection on top of a parallel-fetch engine matches the
    // sequential session page for page (the session API wraps its own
    // engine, so compare both through one-shot selections instead).
    let agg = min_agg();
    let mut collected = Vec::new();
    let mut session = garlic_core::EngineSession::new(counted(lists()), &agg).unwrap();
    loop {
        let page = session.next_batch(997).unwrap();
        if page.is_empty() {
            break;
        }
        collected.extend_from_slice(page.entries());
    }
    let oneshot = fagin_topk(&lists(), &agg, n).unwrap();
    assert_eq!(collected.len(), n);
    for (got, want) in collected.iter().zip(oneshot.entries()) {
        assert_eq!(got.grade, want.grade);
    }
}

/// Engine-vs-reference equivalence on real subsystem sources — all four
/// families: relational (crisp matches-first), QBIC similarity rankings,
/// tf-idf text retrieval, and the cd_store demo trio spanning the three.
#[test]
fn engine_matches_seed_on_all_four_subsystem_families() {
    use garlic_subsys::{cd_store, AtomicQuery, QbicStore, Subsystem, Target, TextStore};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(170);
    let qbic = QbicStore::synthetic("qbic", 40, &mut rng);
    let text = TextStore::synthetic("text", "Body", 40, 30, 10, &mut rng);
    let mut rel = garlic_subsys::RelationalStore::new("rel", &["Artist"]);
    for i in 0..40 {
        rel.insert(vec![garlic_subsys::Value::text(if i % 4 == 0 {
            "Beatles"
        } else {
            "Kinks"
        })]);
    }
    let (demo_rel, demo_qbic, demo_text) = cd_store::demo_subsystems(&mut rng);

    // One workload of m = 2 lists per subsystem family.
    let workloads: Vec<(&str, Vec<std::sync::Arc<dyn GradedSource>>)> = vec![
        (
            "relational",
            vec![
                rel.evaluate(&AtomicQuery::new("Artist", Target::text("Beatles")))
                    .unwrap(),
                rel.evaluate(&AtomicQuery::new("Artist", Target::text("Kinks")))
                    .unwrap(),
            ],
        ),
        (
            "qbic",
            vec![
                qbic.evaluate(&AtomicQuery::new("Color", Target::text("red")))
                    .unwrap(),
                qbic.evaluate(&AtomicQuery::new("Shape", Target::text("round")))
                    .unwrap(),
            ],
        ),
        (
            "text",
            vec![
                text.evaluate(&AtomicQuery::new("Body", Target::terms(&["w1", "w2"])))
                    .unwrap(),
                text.evaluate(&AtomicQuery::new("Body", Target::terms(&["w3"])))
                    .unwrap(),
            ],
        ),
        (
            "cd_store",
            vec![
                demo_rel
                    .evaluate(&AtomicQuery::new("Artist", Target::text("Beatles")))
                    .unwrap(),
                demo_qbic
                    .evaluate(&AtomicQuery::new("AlbumColor", Target::text("red")))
                    .unwrap(),
                demo_text
                    .evaluate(&AtomicQuery::new("Review", Target::terms(&["rock"])))
                    .unwrap(),
            ],
        ),
    ];

    for (family, sources) in workloads {
        let n = sources[0].len();
        for k in [1, n / 2, n] {
            let k = k.max(1);

            let engine_sources = counted(sources.iter().collect::<Vec<_>>());
            let engine_top = fagin_topk(&engine_sources, &min_agg(), k).unwrap();
            let engine_stats = total_stats(&engine_sources);

            let ref_sources = counted(sources.iter().collect::<Vec<_>>());
            let ref_top = reference::fagin(&ref_sources, &min_agg(), k);
            let ref_stats = total_stats(&ref_sources);

            assert!(engine_top.same_grades(&ref_top, 0.0), "{family} A0 k={k}");
            assert_eq!(engine_stats, ref_stats, "{family} A0 k={k}");

            // A0', B0, naive on the same workload.
            let e = counted(sources.iter().collect::<Vec<_>>());
            let r = counted(sources.iter().collect::<Vec<_>>());
            let et = fagin_min_run(&e, k).unwrap().topk;
            let rt = reference::fagin_min(&r, k);
            assert!(et.same_grades(&rt, 0.0), "{family} A0' k={k}");
            assert_eq!(total_stats(&e), total_stats(&r), "{family} A0' k={k}");

            let e = counted(sources.iter().collect::<Vec<_>>());
            let r = counted(sources.iter().collect::<Vec<_>>());
            let et = b0_max_topk(&e, k).unwrap();
            let rt = reference::b0_max(&r, k);
            assert!(et.same_grades(&rt, 0.0), "{family} B0 k={k}");
            assert_eq!(total_stats(&e), total_stats(&r), "{family} B0 k={k}");

            let e = counted(sources.iter().collect::<Vec<_>>());
            let r = counted(sources.iter().collect::<Vec<_>>());
            let et = naive_topk(&e, &max_agg(), k).unwrap();
            let rt = reference::naive(&r, &max_agg(), k);
            assert!(et.same_grades(&rt, 0.0), "{family} naive k={k}");
            assert_eq!(total_stats(&e), total_stats(&r), "{family} naive k={k}");
        }
    }
}
