//! Integration coverage for the access-contract audit (`validate.rs`),
//! exercised through the crate's *public* surface only — the way a
//! middleware deployment would vet a third-party subsystem before
//! registering it (paper §4's interface assumptions).

use garlic_agg::Grade;
use garlic_core::access::{CountingSource, GradedSource, MemorySource};
use garlic_core::graded_set::GradedEntry;
use garlic_core::validate::{validate_source, SourceViolation};
use garlic_core::ObjectId;

fn g(v: f64) -> Grade {
    Grade::new(v).unwrap()
}

#[test]
fn well_behaved_memory_source_passes_the_audit() {
    let source = MemorySource::from_grades(&[g(0.9), g(0.1), g(0.5), g(0.5), g(0.0)]);
    assert_eq!(validate_source(&source), Ok(()));
}

#[test]
fn metered_source_passes_and_audit_cost_is_linear() {
    // The audit promises 2·len() sorted (one positional pass plus one
    // batched cursor pass) + 2·len() random accesses (one per-object pass
    // plus one batched pass; the batched pass's deliberate miss probes
    // bill nothing); the metering wrapper lets us hold it to that.
    let source = CountingSource::new(MemorySource::from_grades(&[g(0.7), g(0.2), g(0.4)]));
    assert_eq!(validate_source(&source), Ok(()));
    let stats = source.stats();
    assert_eq!(stats.sorted, 6);
    assert_eq!(stats.random, 6);
}

/// A source whose sorted stream *ascends* — the exact "non-monotone
/// subsystem" a buggy ranking engine would expose. Random access is
/// consistent, so the only contract breach is the ordering.
struct AscendingSource {
    grades: Vec<Grade>,
}

impl GradedSource for AscendingSource {
    fn len(&self) -> usize {
        self.grades.len()
    }
    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        self.grades
            .get(rank)
            .map(|&grade| GradedEntry::new(rank, grade))
    }
    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        self.grades.get(object.0 as usize).copied()
    }
}

#[test]
fn non_monotone_source_is_rejected_with_the_breaking_rank() {
    let source = AscendingSource {
        grades: vec![g(0.1), g(0.4), g(0.9)],
    };
    assert_eq!(
        validate_source(&source),
        Err(SourceViolation::NotDescending { rank: 1 })
    );
}

#[test]
fn constant_grades_are_monotone_enough() {
    // Ties everywhere are legal: "descending" is non-strict in the paper.
    let source = MemorySource::from_grades(&[g(0.5); 4]);
    assert_eq!(validate_source(&source), Ok(()));
}

#[test]
fn single_defect_deep_in_the_list_is_still_found() {
    // 0.30 at rank 8 followed by 0.31 at rank 9: one inversion, far from
    // the head — the audit must scan the whole list, not spot-check.
    struct OneInversion;
    impl GradedSource for OneInversion {
        fn len(&self) -> usize {
            10
        }
        fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
            let grade = match rank {
                r if r < 8 => Grade::clamped(1.0 - 0.05 * r as f64),
                8 => Grade::clamped(0.30),
                9 => Grade::clamped(0.31),
                _ => return None,
            };
            Some(GradedEntry::new(rank, grade))
        }
        fn random_access(&self, object: ObjectId) -> Option<Grade> {
            self.sorted_access(object.0 as usize).map(|e| e.grade)
        }
    }
    assert_eq!(
        validate_source(&OneInversion),
        Err(SourceViolation::NotDescending { rank: 9 })
    );
}
