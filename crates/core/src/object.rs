//! Object identity. The paper's formal framework (Section 5) calls the
//! database objects `1, ..., N`; we use dense zero-based 64-bit identifiers.

use std::fmt;

/// Identifies one object of the fixed object type that all subsystems grade
/// (Section 2: "all of the data ... deal\[s\] with the attributes of a specific
/// set of objects of some fixed type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// The identifier as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

impl From<usize> for ObjectId {
    fn from(v: usize) -> Self {
        ObjectId(v as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let id: ObjectId = 42usize.into();
        assert_eq!(id, ObjectId(42));
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "#42");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(ObjectId(2) < ObjectId(10));
    }
}
