//! Sharded scatter-gather over object-id ranges.
//!
//! A graded list is usually served by one source. [`ShardedSource`] splits
//! that role across `S` child sources, each owning a contiguous range of
//! object ids (the per-shard analogue of the segment footer's
//! `table_first_ids` block fences): shard `i` grades exactly the objects in
//! `fences[i] .. fences[i+1]`. Because the ranges partition the id space,
//! the global skeleton key — descending grade, ties by ascending object id
//! — is unique across shards, so a k-way merge of the per-shard sorted
//! runs reproduces the unsharded stream *bit for bit*: same entries, same
//! tie order, same Section 5 billing once a [`CountingSource`] wraps the
//! merged handle.
//!
//! The merge is demand-driven, which is where the paper's Section 5
//! threshold argument pays off across shards: each shard is only read as
//! deep as the merged prefix actually needs, so a top-k consumer that
//! stops at depth `T` costs roughly `T` shard entries in total — not the
//! `S × T` a naive scatter-gather (every shard scanned to the global
//! depth) pays. A shared atomic **grade frontier** — the lowest grade the
//! merge has emitted — governs per-shard prefetch: a shard whose last
//! yielded grade has fallen below the frontier cannot contribute soon, so
//! its refills drop to a minimal probe chunk while shards still above the
//! frontier stream large (optionally parallel) chunks. The frontier only
//! shapes *when* entries are fetched, never *which* entries are emitted,
//! so correctness never depends on it. [`ShardedSource::scan_stats`]
//! reports the realised early-termination savings.
//!
//! Random access routes each probe to its owning shard by binary search
//! over the shard fences ([`ShardedSource::shard_of`]), and batched random
//! access regroups probes per shard so block-backed shards keep their
//! one-fetch-per-block batching.
//!
//! [`CountingSource`]: crate::access::CountingSource

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use garlic_agg::Grade;

use crate::access::{BoundedBatch, GradedSource, SetAccess, SourceError};
use crate::fx::FxHashSet;
use crate::graded_set::GradedEntry;
use crate::object::ObjectId;

/// Smallest refill chunk: enough to learn a shard's next few heads without
/// committing to a deep read of a shard the frontier says is out of the
/// race.
const MIN_CHUNK: usize = 16;

/// Largest refill chunk per shard — bounds prefetch overshoot past the
/// depth the merge was asked for.
const MAX_CHUNK: usize = 4096;

/// Refills this large (per shard, with at least two shards hungry) are
/// fetched on scoped threads; smaller ones are not worth a spawn.
const PARALLEL_MIN_CHUNK: usize = 1024;

/// Cumulative scatter-gather counters of one [`ShardedSource`]: how deep
/// the merged stream went vs how many entries the shards actually served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardScanStats {
    /// Entries emitted by the merged stream (the global scan depth `T`).
    pub emitted: u64,
    /// Entries pulled from all shards together (`T` plus bounded prefetch
    /// overshoot; a naive scatter-gather would pay `shards × T`).
    pub consumed: u64,
    /// Number of shards.
    pub shards: usize,
}

impl ShardScanStats {
    /// Fraction of the naive scatter-gather cost (`shards × emitted`
    /// entries) the threshold cut avoided reading. 0 when nothing was
    /// emitted.
    pub fn early_termination_savings(&self) -> f64 {
        let naive = self.emitted.saturating_mul(self.shards as u64);
        if naive == 0 {
            return 0.0;
        }
        1.0 - (self.consumed.min(naive) as f64 / naive as f64)
    }
}

/// One shard's position in the demand-driven merge.
#[derive(Debug)]
struct ShardRun {
    /// Buffered entries not yet consumed by the merge (`buf[pos..]`).
    buf: Vec<GradedEntry>,
    pos: usize,
    /// The shard rank the next refill starts at.
    next_rank: usize,
    /// Whether the shard returned a short batch (no entries remain).
    exhausted: bool,
    /// Grade of the last entry this shard yielded — an upper bound on
    /// everything it still holds, compared against the frontier to size
    /// refills.
    last_grade: Option<Grade>,
    /// Whether this shard was quarantined and replaced by its zero-grade
    /// remainder (degraded reads; see
    /// [`ShardedSource::with_degraded_reads`]).
    dropped: bool,
}

impl ShardRun {
    fn new() -> Self {
        ShardRun {
            buf: Vec::new(),
            pos: 0,
            next_rank: 0,
            exhausted: false,
            last_grade: None,
            dropped: false,
        }
    }

    fn head(&self) -> Option<GradedEntry> {
        self.buf.get(self.pos).copied()
    }

    fn needs_refill(&self) -> bool {
        !self.exhausted && self.pos == self.buf.len()
    }
}

/// The guarded merge state: the merged prefix computed so far plus each
/// shard's buffered run. Positional sorted access is served out of
/// `merged`, which only ever grows — the stream is deterministic no matter
/// how callers batch it.
#[derive(Debug)]
struct MergeState {
    merged: Vec<GradedEntry>,
    runs: Vec<ShardRun>,
}

/// `S` child sources serving one logical graded list, partitioned by
/// object-id range. Implements the full [`GradedSource`] (+ [`SetAccess`])
/// contract; see the module docs for the merge, frontier, and routing
/// rules.
///
/// The merged prefix is cached internally (interior mutability), so a
/// source that was streamed deep once serves later shallow scans without
/// touching the shards again; [`reset_scan`](ShardedSource::reset_scan)
/// drops that cache for cold-path measurement.
#[derive(Debug)]
pub struct ShardedSource<S> {
    shards: Vec<S>,
    /// `fences[i]` = lowest object id shard `i` owns; ranges are
    /// contiguous and ascending.
    fences: Vec<u64>,
    len: usize,
    state: Mutex<MergeState>,
    /// Bits of the lowest merged grade emitted so far (grades are
    /// non-negative, so the f64 bit pattern orders like the value).
    frontier: AtomicU64,
    emitted: AtomicU64,
    consumed: AtomicU64,
    /// Exclusive end of the dense object-id universe when degraded reads
    /// are enabled; `None` means shard failures always fail the read.
    degrade_universe: Option<u64>,
    /// Lock-free mirror of the per-run dropped flags, for random-access
    /// routing and [`GradedSource::degraded`] without taking the merge
    /// lock.
    dropped: Vec<AtomicBool>,
}

impl<S: GradedSource> ShardedSource<S> {
    /// Assembles a sharded source from per-shard sources and their range
    /// fences (`fences[i]` = first object id owned by shard `i`).
    ///
    /// # Panics
    /// Panics if `shards` is empty, the lengths differ, or the fences are
    /// not strictly increasing — all wiring errors: the caller (segment
    /// opener, subsystem builder, or [`partition_pairs`]) is responsible
    /// for handing over a genuine partition of the id space.
    pub fn new(shards: Vec<S>, fences: Vec<u64>) -> Self {
        assert!(
            !shards.is_empty(),
            "a sharded source needs at least one shard"
        );
        assert_eq!(
            shards.len(),
            fences.len(),
            "one fence (lowest owned object id) per shard"
        );
        assert!(
            fences.windows(2).all(|w| w[0] < w[1]),
            "shard fences must be strictly increasing"
        );
        let len = shards.iter().map(|s| s.len()).sum();
        let runs = shards.iter().map(|_| ShardRun::new()).collect();
        let dropped = shards.iter().map(|_| AtomicBool::new(false)).collect();
        ShardedSource {
            shards,
            fences,
            len,
            state: Mutex::new(MergeState {
                merged: Vec::new(),
                runs,
            }),
            frontier: AtomicU64::new(Grade::ONE.value().to_bits()),
            emitted: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            degrade_universe: None,
            dropped,
        }
    }

    /// Opts in to degraded reads: when a shard read fails with a
    /// *quarantined* error, the shard is dropped from the scatter-gather
    /// and every object it still owed the stream is emitted with grade 0
    /// (the paper's "everything is graded, possibly zero" model), instead
    /// of failing the whole logical list. The merged stream keeps its
    /// exact length and descending-grade order, so callers above — the
    /// engine included — need no special casing; they only observe
    /// [`GradedSource::degraded`] flip to `true`.
    ///
    /// `universe` is the exclusive end of the dense object-id space.
    /// Degradation substitutes grades by *id range*, so it is only sound
    /// when every shard is dense over its fence range — this constructor
    /// checks that and panics otherwise (a wiring error, like the fence
    /// asserts in [`ShardedSource::new`]).
    pub fn with_degraded_reads(mut self, universe: u64) -> Self {
        assert!(
            universe >= self.fences[0] + self.len as u64,
            "universe end {universe} cannot hold {} dense entries from id {}",
            self.len,
            self.fences[0],
        );
        for (i, shard) in self.shards.iter().enumerate() {
            let lo = self.fences[i];
            let hi = self.fences.get(i + 1).copied().unwrap_or(universe);
            assert_eq!(
                shard.len() as u64,
                hi - lo,
                "degraded reads need dense shards: shard {i} covers ids {lo}..{hi}",
            );
        }
        self.degrade_universe = Some(universe);
        self
    }

    /// The merge lock, recovered from poisoning: a reader thread that
    /// panicked mid-merge leaves the guarded state consistent (buffers are
    /// cleared before any fallible shard read, and the merged prefix only
    /// grows by whole entries), so later readers may keep using it.
    fn state(&self) -> MutexGuard<'_, MergeState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The dense id range shard `shard` owns under degraded reads.
    fn shard_range(&self, shard: usize, universe: u64) -> std::ops::Range<u64> {
        let lo = self.fences[shard];
        let hi = self.fences.get(shard + 1).copied().unwrap_or(universe);
        lo..hi
    }

    /// Handles a failed shard read: under degraded reads a *quarantined*
    /// failure drops the shard — its unseen objects are appended to the
    /// run buffer as zero-grade entries (id-ascending, after any already
    /// buffered positive entries) and the run is marked exhausted, so the
    /// ordinary merge loop emits them last with no further reads. Any
    /// other failure (or no opt-in) propagates.
    fn drop_shard_or_fail(
        &self,
        state: &mut MergeState,
        shard: usize,
        err: SourceError,
    ) -> Result<(), SourceError> {
        let Some(universe) = self.degrade_universe else {
            return Err(err);
        };
        if !err.quarantined {
            return Err(err);
        }
        if state.runs[shard].dropped {
            return Ok(());
        }
        let range = self.shard_range(shard, universe);
        // Objects of this shard already emitted or still buffered keep
        // their true grades; everything else in the range becomes a zero.
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for entry in &state.merged {
            if range.contains(&entry.object.0) {
                seen.insert(entry.object.0);
            }
        }
        let run = &mut state.runs[shard];
        let survivors: Vec<GradedEntry> = run.buf[run.pos..].to_vec();
        run.buf.clear();
        run.pos = 0;
        let mut zero_ids: Vec<u64> = Vec::new();
        for entry in survivors {
            seen.insert(entry.object.0);
            if entry.grade > Grade::ZERO {
                run.buf.push(entry);
            } else {
                zero_ids.push(entry.object.0);
            }
        }
        zero_ids.extend(range.filter(|id| !seen.contains(id)));
        zero_ids.sort_unstable();
        run.buf.extend(zero_ids.into_iter().map(|id| GradedEntry {
            object: ObjectId(id),
            grade: Grade::ZERO,
        }));
        run.exhausted = true;
        run.dropped = true;
        run.last_grade = Some(Grade::ZERO);
        self.dropped[shard].store(true, Ordering::Release);
        Ok(())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The child sources, in fence order.
    pub fn shards(&self) -> &[S] {
        &self.shards
    }

    /// The shard owning `object`'s id range. Ids below the first fence are
    /// routed to shard 0, where they miss — same observable answer as the
    /// unsharded source.
    pub fn shard_of(&self, object: ObjectId) -> usize {
        self.fences
            .partition_point(|&f| f <= object.0)
            .saturating_sub(1)
    }

    /// Cumulative scatter-gather counters (see [`ShardScanStats`]).
    pub fn scan_stats(&self) -> ShardScanStats {
        ShardScanStats {
            emitted: self.emitted.load(Ordering::Relaxed),
            consumed: self.consumed.load(Ordering::Relaxed),
            shards: self.shards.len(),
        }
    }

    /// Drops the cached merged prefix and all shard buffers, returning the
    /// source to its just-built state (counters included; dropped shards
    /// are *not* resurrected — quarantine outlives the scan cache). The
    /// next sorted access replays the merge from the shards — this is how
    /// cold-path benchmarks measure the scatter-gather itself rather than
    /// the cache.
    pub fn reset_scan(&self) {
        let mut state = self.state();
        state.merged = Vec::new();
        for (shard, run) in state.runs.iter_mut().enumerate() {
            *run = ShardRun::new();
            if self.dropped[shard].load(Ordering::Acquire) {
                // Rebuild the zero-grade remainder for an already-dropped
                // shard rather than re-reading a quarantined source.
                run.dropped = true;
                run.exhausted = true;
                let universe = self
                    .degrade_universe
                    .expect("dropped flag implies degraded reads");
                run.buf
                    .extend(self.shard_range(shard, universe).map(|id| GradedEntry {
                        object: ObjectId(id),
                        grade: Grade::ZERO,
                    }));
                run.last_grade = Some(Grade::ZERO);
            }
        }
        self.frontier
            .store(Grade::ONE.value().to_bits(), Ordering::Relaxed);
        self.emitted.store(0, Ordering::Relaxed);
        self.consumed.store(0, Ordering::Relaxed);
    }

    /// Extends the merged prefix to `target` entries (or to exhaustion).
    fn try_ensure_merged(&self, state: &mut MergeState, target: usize) -> Result<(), SourceError> {
        // `grade < ZERO` is never true, so a ZERO bound never stops early.
        self.try_ensure_merged_bounded(state, target, Grade::ZERO)
            .map(|_| ())
    }

    /// Extends the merged prefix to `target` entries, additionally stopping
    /// as soon as the lowest merged grade falls strictly below `bound`: the
    /// skeleton order is descending, so everything still unmerged — in
    /// *every* shard — is then also below the bound, and no shard needs
    /// another refill. Returns `true` iff the stop was due to the bound.
    ///
    /// A shard failure either drops the shard (degraded reads + a
    /// quarantined error) or aborts with the merged prefix unextended
    /// beyond already-completed rounds, so a later retry resumes exactly
    /// where this call left off.
    fn try_ensure_merged_bounded(
        &self,
        state: &mut MergeState,
        target: usize,
        bound: Grade,
    ) -> Result<bool, SourceError> {
        let target = target.min(self.len);
        loop {
            if state.merged.last().is_some_and(|e| e.grade < bound) {
                return Ok(true);
            }
            if state.merged.len() >= target {
                return Ok(false);
            }
            self.try_refill(state, target)?;
            // Pop the best head: highest grade, ties by lowest object id.
            // Every non-exhausted shard has a buffered head after refill,
            // so this comparison sees the true global next entry.
            let best = state
                .runs
                .iter()
                .enumerate()
                .filter_map(|(i, run)| run.head().map(|e| (i, e)))
                .max_by(|(_, a), (_, b)| a.grade.cmp(&b.grade).then(b.object.cmp(&a.object)));
            let Some((winner, entry)) = best else {
                return Ok(false); // every shard exhausted before `target`
            };
            state.runs[winner].pos += 1;
            state.merged.push(entry);
            self.frontier
                .store(entry.grade.value().to_bits(), Ordering::Relaxed);
            self.emitted
                .store(state.merged.len() as u64, Ordering::Relaxed);
        }
    }

    /// Refills every shard whose buffer ran dry. Shards whose last yielded
    /// grade is still at/above the frontier stream demand-sized chunks;
    /// shards already below it get [`MIN_CHUNK`] probes. Large refills of
    /// two or more shards run on scoped threads.
    ///
    /// Retry safety: a failing shard's buffer is cleared before the read
    /// and left empty by the `try_sorted_batch` contract, with `next_rank`
    /// unadvanced — so retrying the refill re-reads from the same rank and
    /// no entry is lost or duplicated. Other shards that succeeded in the
    /// same round keep their refilled buffers.
    fn try_refill(&self, state: &mut MergeState, target: usize) -> Result<(), SourceError> {
        let remaining = target.saturating_sub(state.merged.len());
        if remaining == 0 {
            return Ok(());
        }
        let hungry = state.runs.iter().filter(|r| r.needs_refill()).count();
        if hungry == 0 {
            return Ok(());
        }
        let frontier = Grade::clamped(f64::from_bits(self.frontier.load(Ordering::Relaxed)));
        let live = state.runs.iter().filter(|r| !r.exhausted).count().max(1);
        let demand = (remaining / live + 1).clamp(MIN_CHUNK, MAX_CHUNK);
        let chunk_for = |run: &ShardRun| match run.last_grade {
            Some(last) if last < frontier => MIN_CHUNK,
            _ => demand,
        };

        let mut total = 0usize;
        let mut failures: Vec<(usize, SourceError)> = Vec::new();
        let parallel = hungry >= 2 && demand >= PARALLEL_MIN_CHUNK;
        if parallel {
            std::thread::scope(|scope| {
                let mut pending = Vec::new();
                for (index, (run, shard)) in state.runs.iter_mut().zip(&self.shards).enumerate() {
                    if !run.needs_refill() {
                        continue;
                    }
                    let chunk = chunk_for(run);
                    pending.push((
                        index,
                        scope.spawn(move || {
                            run.buf.clear();
                            run.pos = 0;
                            let got = shard.try_sorted_batch(run.next_rank, chunk, &mut run.buf)?;
                            finish_refill(run, got, chunk);
                            Ok(got)
                        }),
                    ));
                }
                for (index, handle) in pending {
                    match handle.join().expect("refill thread") {
                        Ok(got) => total += got,
                        Err(e) => failures.push((index, e)),
                    }
                }
            });
        } else {
            for (index, (run, shard)) in state.runs.iter_mut().zip(&self.shards).enumerate() {
                if !run.needs_refill() {
                    continue;
                }
                let chunk = chunk_for(run);
                run.buf.clear();
                run.pos = 0;
                match shard.try_sorted_batch(run.next_rank, chunk, &mut run.buf) {
                    Ok(got) => {
                        finish_refill(run, got, chunk);
                        total += got;
                    }
                    Err(e) => failures.push((index, e)),
                }
            }
        }
        self.consumed.fetch_add(total as u64, Ordering::Relaxed);
        for (index, err) in failures {
            self.drop_shard_or_fail(state, index, err)?;
        }
        Ok(())
    }
}

fn finish_refill(run: &mut ShardRun, got: usize, chunk: usize) {
    run.next_rank += got;
    if got < chunk {
        run.exhausted = true;
    }
    if let Some(last) = run.buf.last() {
        run.last_grade = Some(last.grade);
    }
}

impl<S: GradedSource> GradedSource for ShardedSource<S> {
    fn len(&self) -> usize {
        self.len
    }

    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        let mut state = self.state();
        self.try_ensure_merged(&mut state, rank.saturating_add(1))
            .unwrap_or_else(|e| panic!("shard failure on infallible sorted path: {e}"));
        state.merged.get(rank).copied()
    }

    fn sorted_batch(&self, start: usize, count: usize, out: &mut Vec<GradedEntry>) -> usize {
        self.try_sorted_batch(start, count, out)
            .unwrap_or_else(|e| panic!("shard failure on infallible sorted path: {e}"))
    }

    fn try_sorted_batch(
        &self,
        start: usize,
        count: usize,
        out: &mut Vec<GradedEntry>,
    ) -> Result<usize, SourceError> {
        let mut state = self.state();
        self.try_ensure_merged(&mut state, start.saturating_add(count))?;
        let merged = &state.merged;
        let from = start.min(merged.len());
        let to = start.saturating_add(count).min(merged.len());
        out.extend_from_slice(&merged[from..to]);
        Ok(to - from)
    }

    /// Bound-aware merge: stops extending the merged prefix — and thus
    /// refilling *any* shard — once the lowest merged grade falls strictly
    /// below the bound, instead of merging all the way to `start + count`.
    /// Fence-skipping shards then never even see requests for the fenced-out
    /// depths. Emitted entries are still an exact prefix of the unbounded
    /// stream (the default-impl contract), and a prefix already cached by a
    /// deeper earlier scan is served in full rather than re-truncated.
    fn sorted_batch_bounded(
        &self,
        start: usize,
        count: usize,
        bound: Grade,
        out: &mut Vec<GradedEntry>,
    ) -> BoundedBatch {
        self.try_sorted_batch_bounded(start, count, bound, out)
            .unwrap_or_else(|e| panic!("shard failure on infallible sorted path: {e}"))
    }

    fn try_sorted_batch_bounded(
        &self,
        start: usize,
        count: usize,
        bound: Grade,
        out: &mut Vec<GradedEntry>,
    ) -> Result<BoundedBatch, SourceError> {
        let mut state = self.state();
        let stopped =
            self.try_ensure_merged_bounded(&mut state, start.saturating_add(count), bound)?;
        let merged = &state.merged;
        let from = start.min(merged.len());
        let to = start.saturating_add(count).min(merged.len());
        out.extend_from_slice(&merged[from..to]);
        Ok(BoundedBatch {
            appended: to - from,
            truncated: stopped && to - from < count,
        })
    }

    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        let shard = self.shard_of(object);
        if self.dropped[shard].load(Ordering::Acquire) {
            let universe = self.degrade_universe.unwrap_or(0);
            return self
                .shard_range(shard, universe)
                .contains(&object.0)
                .then_some(Grade::ZERO);
        }
        self.shards[shard].random_access(object)
    }

    /// Routes each probe to its owning shard by fence lookup, forwards one
    /// grouped batch per shard (so block-backed shards batch their own
    /// I/O), and scatters the answers back into probe order.
    fn random_batch(&self, objects: &[ObjectId], out: &mut Vec<Option<Grade>>) {
        self.try_random_batch(objects, out)
            .unwrap_or_else(|e| panic!("shard failure on infallible random path: {e}"))
    }

    fn try_random_batch(
        &self,
        objects: &[ObjectId],
        out: &mut Vec<Option<Grade>>,
    ) -> Result<(), SourceError> {
        let base = out.len();
        out.resize(base + objects.len(), None);
        // Group probe positions by shard; single-shard batches forward
        // straight through.
        let mut groups: Vec<(Vec<usize>, Vec<ObjectId>)> = (0..self.shards.len())
            .map(|_| (Vec::new(), Vec::new()))
            .collect();
        for (slot, &object) in objects.iter().enumerate() {
            let shard = self.shard_of(object);
            groups[shard].0.push(slot);
            groups[shard].1.push(object);
        }
        let mut answers = Vec::new();
        for (shard, (slots, probes)) in groups.into_iter().enumerate() {
            if probes.is_empty() {
                continue;
            }
            answers.clear();
            if !self.dropped[shard].load(Ordering::Acquire) {
                match self.shards[shard].try_random_batch(&probes, &mut answers) {
                    Ok(()) => {}
                    Err(e) => {
                        answers.clear();
                        let mut state = self.state();
                        if let Err(e) = self.drop_shard_or_fail(&mut state, shard, e) {
                            // `out` unchanged on error, per the contract.
                            out.truncate(base);
                            return Err(e);
                        }
                    }
                }
            }
            if self.dropped[shard].load(Ordering::Acquire) {
                // A quarantined shard answers every in-universe probe with
                // grade zero — the sorted stream's zero-fill, mirrored.
                let universe = self.degrade_universe.unwrap_or(0);
                let range = self.shard_range(shard, universe);
                answers.clear();
                answers.extend(
                    probes
                        .iter()
                        .map(|p| range.contains(&p.0).then_some(Grade::ZERO)),
                );
            }
            debug_assert_eq!(answers.len(), probes.len(), "one slot per probe");
            for (slot, grade) in slots.into_iter().zip(answers.drain(..)) {
                out[base + slot] = grade;
            }
        }
        Ok(())
    }

    fn degraded(&self) -> bool {
        self.dropped.iter().any(|flag| flag.load(Ordering::Acquire))
    }
}

impl<S: SetAccess> SetAccess for ShardedSource<S> {
    /// The union of the shards' grade-1 sets. Order is unspecified by the
    /// contract; this yields shard order (ascending id ranges), each
    /// shard's own enumeration order within.
    fn matching_set(&self) -> Vec<ObjectId> {
        self.try_matching_set()
            .unwrap_or_else(|e| panic!("shard failure on infallible set path: {e}"))
    }

    /// Fallible union: a quarantined shard under degraded reads
    /// contributes nothing (its objects all read as grade zero), any other
    /// failure propagates.
    fn try_matching_set(&self) -> Result<Vec<ObjectId>, SourceError> {
        let mut set = Vec::new();
        for (index, shard) in self.shards.iter().enumerate() {
            if self.dropped[index].load(Ordering::Acquire) {
                continue;
            }
            match shard.try_matching_set() {
                Ok(part) => set.extend(part),
                Err(e) => {
                    let mut state = self.state();
                    self.drop_shard_or_fail(&mut state, index, e)?;
                }
            }
        }
        Ok(set)
    }
}

/// Splits `(object, grade)` pairs into at most `shards` contiguous,
/// id-ascending, balanced runs — the canonical shard layout both the
/// in-memory subsystem and the segment writer build from. Returns fewer
/// runs when there are fewer pairs than shards; every returned run is
/// non-empty.
///
/// # Panics
/// Panics if `shards` is zero.
pub fn partition_pairs(
    mut pairs: Vec<(ObjectId, Grade)>,
    shards: usize,
) -> Vec<Vec<(ObjectId, Grade)>> {
    assert!(shards > 0, "cannot partition into zero shards");
    pairs.sort_by_key(|(object, _)| *object);
    if pairs.is_empty() {
        return Vec::new();
    }
    let per_shard = pairs.len().div_ceil(shards);
    let mut runs = Vec::with_capacity(shards);
    let mut rest = pairs.as_slice();
    while !rest.is_empty() {
        let cut = per_shard.min(rest.len());
        runs.push(rest[..cut].to_vec());
        rest = &rest[cut..];
    }
    runs
}

impl ShardedSource<crate::access::MemorySource> {
    /// Builds an in-memory sharded source by partitioning `pairs` into at
    /// most `shards` contiguous id ranges ([`partition_pairs`]).
    ///
    /// # Panics
    /// Panics if `pairs` is empty, repeats an object, or `shards` is zero.
    pub fn from_pairs(pairs: Vec<(ObjectId, Grade)>, shards: usize) -> Self {
        let runs = partition_pairs(pairs, shards);
        assert!(!runs.is_empty(), "cannot shard an empty graded list");
        for run in &runs {
            for w in run.windows(2) {
                assert_ne!(w[0].0, w[1].0, "object {} graded twice", w[0].0);
            }
        }
        let fences = runs.iter().map(|run| run[0].0 .0).collect();
        let sources = runs
            .into_iter()
            .map(crate::access::MemorySource::from_pairs)
            .collect();
        ShardedSource::new(sources, fences)
    }

    /// Builds an in-memory sharded source over a dense grade vector
    /// (object `i` gets `grades[i]`).
    ///
    /// # Panics
    /// Panics if `grades` is empty or `shards` is zero.
    pub fn from_grades(grades: &[Grade], shards: usize) -> Self {
        let pairs = grades
            .iter()
            .enumerate()
            .map(|(i, &g)| (ObjectId::from(i), g))
            .collect();
        ShardedSource::from_pairs(pairs, shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{CountingSource, MemorySource};

    fn g(v: f64) -> Grade {
        Grade::clamped(v)
    }

    /// A deterministic pseudo-random graded list with heavy ties (11
    /// distinct grades), the regime where tie order is easiest to break.
    fn pairs(n: usize, seed: u64) -> Vec<(ObjectId, Grade)> {
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (ObjectId(i as u64), g((x >> 33) as f64 % 11.0 / 10.0))
            })
            .collect()
    }

    fn unsharded(pairs: &[(ObjectId, Grade)]) -> MemorySource {
        MemorySource::from_pairs(pairs.to_vec())
    }

    #[test]
    fn early_termination_savings_zero_emission_edge_case() {
        // Regression: with nothing emitted the naive denominator is 0 —
        // savings must read 0.0, not NaN, even when shards prefetched.
        let stats = ShardScanStats {
            emitted: 0,
            consumed: 0,
            shards: 4,
        };
        assert_eq!(stats.early_termination_savings(), 0.0);
        let prefetched = ShardScanStats {
            emitted: 0,
            consumed: 64,
            shards: 4,
        };
        assert_eq!(prefetched.early_termination_savings(), 0.0);
        // And through a real source: stats before any scan report 0.
        let sharded = ShardedSource::from_pairs(pairs(100, 3), 4);
        let stats = sharded.scan_stats();
        assert_eq!(stats.emitted, 0);
        assert_eq!(stats.early_termination_savings(), 0.0);
    }

    #[test]
    fn early_termination_savings_single_shard_edge_case() {
        // Regression: with S = 1 the "naive" scatter-gather IS the merged
        // scan, so there is nothing to save — the clamp (`consumed` can
        // exceed `emitted` by bounded prefetch overshoot) must pin the
        // savings to exactly 0, never a negative fraction.
        let stats = ShardScanStats {
            emitted: 100,
            consumed: 116, // overshoot past the merged depth
            shards: 1,
        };
        assert_eq!(stats.early_termination_savings(), 0.0);
        let sharded = ShardedSource::from_pairs(pairs(200, 9), 1);
        let mut out = Vec::new();
        sharded.sorted_batch(0, 50, &mut out);
        let stats = sharded.scan_stats();
        assert_eq!(stats.shards, 1);
        assert!(stats.consumed >= stats.emitted);
        assert_eq!(stats.early_termination_savings(), 0.0);
    }

    #[test]
    fn merged_stream_is_bit_identical_to_unsharded() {
        let data = pairs(500, 7);
        let flat = unsharded(&data);
        for shards in [1, 2, 3, 7] {
            let sharded = ShardedSource::from_pairs(data.clone(), shards);
            assert_eq!(sharded.len(), flat.len());
            let mut want = Vec::new();
            flat.sorted_batch(0, 500, &mut want);
            let mut got = Vec::new();
            sharded.sorted_batch(0, 500, &mut got);
            assert_eq!(got, want, "S={shards}: entries and tie order");
        }
    }

    #[test]
    fn batch_size_never_changes_the_stream() {
        let data = pairs(300, 21);
        let flat = unsharded(&data);
        let sharded = ShardedSource::from_pairs(data, 3);
        let mut want = Vec::new();
        flat.sorted_batch(0, 300, &mut want);
        for batch in [1, 7, 64, 301] {
            let fresh = ShardedSource::from_pairs(
                want.iter().map(|e| (e.object, e.grade)).collect::<Vec<_>>(),
                3,
            );
            for source in [&sharded, &fresh] {
                let mut got = Vec::new();
                while source.sorted_batch(got.len(), batch, &mut got) > 0 {}
                assert_eq!(got, want, "batch={batch}");
            }
        }
    }

    #[test]
    fn positional_access_matches_the_batched_stream() {
        let data = pairs(120, 3);
        let sharded = ShardedSource::from_pairs(data.clone(), 7);
        let flat = unsharded(&data);
        for rank in [0usize, 1, 63, 119, 120, 500] {
            assert_eq!(sharded.sorted_access(rank), flat.sorted_access(rank));
        }
    }

    #[test]
    fn random_access_routes_by_fence() {
        let data = pairs(200, 11);
        let sharded = ShardedSource::from_pairs(data.clone(), 4);
        let flat = unsharded(&data);
        for id in 0..210u64 {
            assert_eq!(
                sharded.random_access(ObjectId(id)),
                flat.random_access(ObjectId(id)),
                "object {id}"
            );
        }
    }

    #[test]
    fn random_batch_aligns_and_bills_like_the_loop() {
        let data = pairs(100, 5);
        let sharded = CountingSource::new(ShardedSource::from_pairs(data.clone(), 3));
        let flat = CountingSource::new(unsharded(&data));
        let probes: Vec<ObjectId> = [0u64, 99, 55, 1000, 55, 3, 42]
            .into_iter()
            .map(ObjectId)
            .collect();
        let mut a = vec![Some(g(1.0))]; // pre-existing entry must survive
        let mut b = vec![Some(g(1.0))];
        sharded.random_batch(&probes, &mut a);
        flat.random_batch(&probes, &mut b);
        assert_eq!(a, b);
        assert_eq!(sharded.stats(), flat.stats(), "identical §5 billing");
    }

    #[test]
    fn billing_through_a_counting_wrapper_matches_unsharded() {
        let data = pairs(400, 17);
        for shards in [1, 2, 3, 7] {
            let sharded = CountingSource::new(ShardedSource::from_pairs(data.clone(), shards));
            let flat = CountingSource::new(unsharded(&data));
            let mut a = Vec::new();
            let mut b = Vec::new();
            sharded.sorted_batch(0, 123, &mut a);
            flat.sorted_batch(0, 123, &mut b);
            sharded.sorted_access(200);
            flat.sorted_access(200);
            assert_eq!(a, b);
            assert_eq!(sharded.stats(), flat.stats(), "S={shards}");
        }
    }

    #[test]
    fn matching_set_unions_the_shards() {
        let grades: Vec<Grade> = [1.0, 0.0, 1.0, 0.5, 1.0, 0.0, 1.0, 1.0]
            .iter()
            .map(|&v| g(v))
            .collect();
        let sharded = ShardedSource::from_grades(&grades, 3);
        let mut set = sharded.matching_set();
        set.sort();
        let mut want = unsharded(
            &grades
                .iter()
                .enumerate()
                .map(|(i, &gr)| (ObjectId(i as u64), gr))
                .collect::<Vec<_>>(),
        )
        .matching_set();
        want.sort();
        assert_eq!(set, want);
        // Billed as sorted access through the counting wrapper, same
        // count as the unsharded enumeration.
        let counted = CountingSource::new(ShardedSource::from_grades(&grades, 3));
        assert_eq!(counted.matching_set().len(), want.len());
        assert_eq!(counted.stats().sorted, want.len() as u64);
    }

    #[test]
    fn early_termination_beats_naive_scatter_gather() {
        let data = pairs(4000, 31);
        let sharded = ShardedSource::from_pairs(data, 4);
        let mut out = Vec::new();
        sharded.sorted_batch(0, 200, &mut out);
        let stats = sharded.scan_stats();
        assert_eq!(stats.emitted, 200);
        assert!(
            stats.consumed < 4 * stats.emitted,
            "demand-driven merge must beat S×T: consumed {} vs naive {}",
            stats.consumed,
            4 * stats.emitted
        );
        assert!(stats.early_termination_savings() > 0.0);
    }

    #[test]
    fn bounded_scan_is_an_exact_prefix_that_stops_every_shard_early() {
        let data = pairs(4000, 41);
        let flat = unsharded(&data);
        let mut full = Vec::new();
        flat.sorted_batch(0, 4000, &mut full);
        let sharded = ShardedSource::from_pairs(data, 4);
        // A cursor hinted with a high stop threshold (the engine's k-th
        // score frontier in real use) must emit an exact prefix, be honest
        // about truncation, and stop the merge long before depth N.
        let bound = g(0.8);
        let mut cursor = sharded.open_sorted().with_bound(bound);
        let mut got = Vec::new();
        while cursor.next_batch(&mut got, 256) > 0 {}
        assert!(cursor.stopped_by_bound());
        assert_eq!(got[..], full[..got.len()], "exact prefix");
        assert!(
            full[got.len()..].iter().all(|e| e.grade < bound),
            "only entries strictly below the bound were withheld"
        );
        let stats = sharded.scan_stats();
        assert!(
            (stats.emitted as usize) < full.len() / 2,
            "merge stopped early: emitted {} of {}",
            stats.emitted,
            full.len()
        );
        // A dirty (too-low) bound and a ZERO bound are the full stream.
        let fresh = ShardedSource::from_pairs(
            full.iter().map(|e| (e.object, e.grade)).collect::<Vec<_>>(),
            4,
        );
        let mut all = Vec::new();
        let mut cursor = fresh.open_sorted().with_bound(Grade::ZERO);
        while cursor.next_batch(&mut all, 256) > 0 {}
        assert!(!cursor.stopped_by_bound());
        assert_eq!(all, full);
    }

    #[test]
    fn reset_scan_replays_the_identical_stream() {
        let data = pairs(600, 13);
        let sharded = ShardedSource::from_pairs(data, 4);
        let mut first = Vec::new();
        sharded.sorted_batch(0, 600, &mut first);
        sharded.reset_scan();
        assert_eq!(sharded.scan_stats().consumed, 0);
        let mut second = Vec::new();
        sharded.sorted_batch(0, 600, &mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn partition_is_contiguous_balanced_and_complete() {
        let data = pairs(103, 9);
        let runs = partition_pairs(data.clone(), 4);
        assert_eq!(runs.len(), 4);
        let total: usize = runs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 103);
        for w in runs.windows(2) {
            assert!(w[0].last().unwrap().0 < w[1][0].0, "ranges ascend");
        }
        // More shards than pairs: every run non-empty, fewer runs.
        let tiny = partition_pairs(pairs(3, 1), 7);
        assert_eq!(tiny.len(), 3);
        assert!(tiny.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn single_shard_degenerates_to_the_plain_source() {
        let data = pairs(50, 2);
        let sharded = ShardedSource::from_pairs(data.clone(), 1);
        let flat = unsharded(&data);
        let mut a = Vec::new();
        let mut b = Vec::new();
        sharded.sorted_batch(0, 50, &mut a);
        flat.sorted_batch(0, 50, &mut b);
        assert_eq!(a, b);
        assert_eq!(sharded.shard_count(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_fences_are_a_wiring_error() {
        let a = MemorySource::from_pairs(vec![(ObjectId(5), g(0.5))]);
        let b = MemorySource::from_pairs(vec![(ObjectId(0), g(0.5))]);
        let _ = ShardedSource::new(vec![a, b], vec![5, 0]);
    }

    #[test]
    fn concurrent_readers_see_one_consistent_stream() {
        let data = pairs(800, 23);
        let flat = unsharded(&data);
        let mut want = Vec::new();
        flat.sorted_batch(0, 800, &mut want);
        let sharded = std::sync::Arc::new(ShardedSource::from_pairs(data, 4));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sharded = std::sync::Arc::clone(&sharded);
                let want = &want;
                scope.spawn(move || {
                    let mut got = Vec::new();
                    while sharded.sorted_batch(got.len(), 97, &mut got) > 0 {}
                    assert_eq!(&got, want);
                });
            }
        });
    }
}
