//! Negated atomic queries as ranked sources.
//!
//! Section 7 observes that for the negation `¬Q` under the standard rule
//! `μ_{¬Q}(x) = 1 − μ_Q(x)`, the sorted order of `¬Q` is exactly the
//! *reverse* of the sorted order of `Q` ("the top object according to the
//! permutation π_Q is the bottom object according to π_{¬Q}").
//!
//! [`ComplementSource`] implements that observation as an adapter: it turns
//! any [`GradedSource`] for `Q` into a full sorted/random-access source for
//! `¬Q` at zero extra storage. Combined with negation-normal form (see
//! `garlic-middleware`), this lets algorithm A₀ evaluate *any* Boolean
//! query whose negations sit on atoms — including the provably hard
//! `Q ∧ ¬Q`, where A₀ is correct but necessarily linear (Theorem 7.1).

use garlic_agg::Grade;

use crate::access::{BoundedBatch, GradedSource, SourceError};
use crate::graded_set::GradedEntry;
use crate::object::ObjectId;

/// The graded source of `¬Q`, derived from the source of `Q`: grades are
/// complemented, sorted access runs the underlying list backwards.
///
/// Each sorted access here costs one sorted access on the underlying list
/// (the subsystem streams from its bottom); each random access costs one
/// random access. The Section 5 cost model is therefore preserved
/// one-to-one, which is what makes Theorem 7.1's lower bound meaningful
/// for this adapter.
#[derive(Debug, Clone)]
pub struct ComplementSource<S> {
    inner: S,
}

impl<S: GradedSource> ComplementSource<S> {
    /// Wraps the source of `Q` as the source of `¬Q`.
    pub fn new(inner: S) -> Self {
        ComplementSource { inner }
    }

    /// The underlying source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: GradedSource> GradedSource for ComplementSource<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        let n = self.inner.len();
        if rank >= n {
            return None;
        }
        // The worst object under Q is the best under ¬Q.
        let entry = self.inner.sorted_access(n - 1 - rank)?;
        Some(GradedEntry {
            object: entry.object,
            grade: entry.grade.complement(),
        })
    }

    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        self.inner.random_access(object).map(Grade::complement)
    }

    /// Native batched probing: one batched probe of the underlying list,
    /// complementing the hits in place — so a block-grouping inner source
    /// (e.g. a disk segment) keeps its one-fetch-per-block plan under
    /// negation.
    fn random_batch(&self, objects: &[ObjectId], out: &mut Vec<Option<Grade>>) {
        let base = out.len();
        self.inner.random_batch(objects, out);
        for grade in &mut out[base..] {
            *grade = grade.map(Grade::complement);
        }
    }

    /// Native batched streaming: one batched read of the *tail* of the
    /// underlying list, emitted in reverse with complemented grades.
    fn sorted_batch(&self, start: usize, count: usize, out: &mut Vec<GradedEntry>) -> usize {
        let n = self.inner.len();
        if start >= n {
            return 0;
        }
        let take = count.min(n - start);
        // Complement ranks [start, start + take) are inner ranks
        // (n - start - take, n - start], walked backwards.
        let mut tail = Vec::with_capacity(take);
        let got = self.inner.sorted_batch(n - start - take, take, &mut tail);
        debug_assert_eq!(got, take, "inner list advertised {n} entries");
        out.extend(tail.iter().rev().map(|e| GradedEntry {
            object: e.object,
            grade: e.grade.complement(),
        }));
        take
    }

    /// Fallible paths forward to the inner source's `try_*` overrides so a
    /// disk-backed list under negation reports a typed error instead of
    /// panicking.
    fn try_sorted_batch(
        &self,
        start: usize,
        count: usize,
        out: &mut Vec<GradedEntry>,
    ) -> Result<usize, SourceError> {
        let n = self.inner.len();
        if start >= n {
            return Ok(0);
        }
        let take = count.min(n - start);
        let mut tail = Vec::with_capacity(take);
        let got = self
            .inner
            .try_sorted_batch(n - start - take, take, &mut tail)?;
        debug_assert_eq!(got, take, "inner list advertised {n} entries");
        out.extend(tail.iter().rev().map(|e| GradedEntry {
            object: e.object,
            grade: e.grade.complement(),
        }));
        Ok(take)
    }

    fn try_random_batch(
        &self,
        objects: &[ObjectId],
        out: &mut Vec<Option<Grade>>,
    ) -> Result<(), SourceError> {
        let base = out.len();
        self.inner.try_random_batch(objects, out)?;
        for grade in &mut out[base..] {
            *grade = grade.map(Grade::complement);
        }
        Ok(())
    }

    /// The reversed stream cannot translate the bound to the inner list's
    /// orientation block-for-block, so bounded reads chunk the fallible
    /// unbounded path and stop once the (descending) complemented stream
    /// dips below the bound — the same contract as the trait default.
    fn try_sorted_batch_bounded(
        &self,
        start: usize,
        count: usize,
        bound: Grade,
        out: &mut Vec<GradedEntry>,
    ) -> Result<BoundedBatch, SourceError> {
        const CHUNK: usize = 256;
        let mut appended = 0;
        while appended < count {
            let take = (count - appended).min(CHUNK);
            let got = self.try_sorted_batch(start + appended, take, out)?;
            appended += got;
            if got < take {
                return Ok(BoundedBatch {
                    appended,
                    truncated: false,
                });
            }
            if out.last().is_some_and(|e| e.grade < bound) {
                return Ok(BoundedBatch {
                    appended,
                    truncated: true,
                });
            }
        }
        Ok(BoundedBatch {
            appended,
            truncated: out.last().is_some_and(|e| e.grade < bound) && appended > 0,
        })
    }

    fn degraded(&self) -> bool {
        self.inner.degraded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MemorySource;
    use crate::algorithms::fa::fagin_topk;
    use crate::algorithms::naive::naive_topk;
    use garlic_agg::iterated::min_agg;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn base() -> MemorySource {
        MemorySource::from_grades(&[g(0.9), g(0.2), g(0.6), g(0.4)])
    }

    #[test]
    fn sorted_access_is_reversed_and_complemented() {
        let c = ComplementSource::new(base());
        // Base sorted order: 0(.9), 2(.6), 3(.4), 1(.2).
        // Complement order: 1(.8), 3(.6), 2(.4), 0(.1).
        let order: Vec<(u64, f64)> = (0..4)
            .map(|r| {
                let e = c.sorted_access(r).unwrap();
                (e.object.0, e.grade.value())
            })
            .collect();
        assert_eq!(order[0].0, 1);
        assert!((order[0].1 - 0.8).abs() < 1e-12);
        assert_eq!(order[3].0, 0);
        assert!((order[3].1 - 0.1).abs() < 1e-12);
        assert_eq!(c.sorted_access(4), None);
    }

    #[test]
    fn complement_grades_descend() {
        let c = ComplementSource::new(base());
        let grades: Vec<Grade> = (0..4).map(|r| c.sorted_access(r).unwrap().grade).collect();
        assert!(grades.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn batched_streaming_matches_positional_reversal() {
        let c = ComplementSource::new(base());
        for batch_size in 1..=5 {
            let mut cursor = crate::access::SortedCursor::new(&c);
            let mut streamed = Vec::new();
            while cursor.next_batch(&mut streamed, batch_size) > 0 {}
            let positional: Vec<GradedEntry> =
                (0..4).map(|r| c.sorted_access(r).unwrap()).collect();
            assert_eq!(streamed, positional, "batch size {batch_size}");
        }
    }

    #[test]
    fn random_access_complements() {
        let c = ComplementSource::new(base());
        assert!(c
            .random_access(ObjectId(0))
            .unwrap()
            .approx_eq(g(0.1), 1e-12));
        assert_eq!(c.random_access(ObjectId(99)), None);
    }

    #[test]
    fn batched_random_access_complements_like_the_per_object_path() {
        let c = ComplementSource::new(base());
        let probes = [ObjectId(0), ObjectId(99), ObjectId(2), ObjectId(0)];
        let mut batched = Vec::new();
        c.random_batch(&probes, &mut batched);
        let looped: Vec<Option<Grade>> = probes.iter().map(|&p| c.random_access(p)).collect();
        assert_eq!(batched, looped);
    }

    #[test]
    fn double_complement_is_identity() {
        let cc = ComplementSource::new(ComplementSource::new(base()));
        for r in 0..4 {
            let orig = base().sorted_access(r).unwrap();
            let twice = cc.sorted_access(r).unwrap();
            assert_eq!(orig.object, twice.object);
            assert!(orig.grade.approx_eq(twice.grade, 1e-12));
        }
    }

    #[test]
    fn hard_query_via_complement_matches_semantics() {
        // Q ∧ ¬Q over the complement adapter: the winner is the object
        // with grade closest to 1/2 (here object 2, min(.6, .4) = .4).
        let q = base();
        let not_q = ComplementSource::new(base());
        let sources: Vec<Box<dyn GradedSource>> = vec![Box::new(q), Box::new(not_q)];
        let fast = fagin_topk(&sources, &min_agg(), 1).unwrap();
        let slow = naive_topk(&sources, &min_agg(), 1).unwrap();
        assert!(fast.same_grades(&slow, 1e-12));
        assert_eq!(fast.best().unwrap().object, ObjectId(2));
        assert!(fast.best().unwrap().grade.approx_eq(g(0.4), 1e-12));
    }
}
