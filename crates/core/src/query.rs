//! Boolean queries over atomic subqueries and their graded semantics
//! (Sections 2–3).
//!
//! Queries are Boolean combinations of atomic queries; each atomic query
//! assigns every object a grade, and a [`Calculus`] (a choice of t-norm,
//! t-conorm, and negation) extends the grading to compound queries:
//!
//! * `μ_{A ∧ B}(x) = t(μ_A(x), μ_B(x))`
//! * `μ_{A ∨ B}(x) = s(μ_A(x), μ_B(x))`
//! * `μ_{¬A}(x)    = n(μ_A(x))`
//!
//! With the standard calculus (min/max/1−x) these are Zadeh's rules, which
//! are the *unique* monotone rules preserving logical equivalence of ∧/∨
//! queries (Theorem 3.1) — property-tested below and in the integration
//! suite.

use garlic_agg::negation::StandardNegation;
use garlic_agg::tconorms::Maximum;
use garlic_agg::tnorms::Minimum;
use garlic_agg::{Grade, Negation, TCoNorm, TNorm};
use std::collections::BTreeSet;

/// Index of an atomic subquery within a query's atom universe. The concrete
/// meaning of an atom (e.g. `Artist = "Beatles"`) lives in the middleware
/// layer; the core algebra only needs identity.
pub type AtomId = usize;

/// A Boolean combination of atomic queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// An atomic query `X = t`, identified by index.
    Atom(AtomId),
    /// Conjunction of subqueries (graded by the calculus's t-norm).
    And(Vec<Query>),
    /// Disjunction of subqueries (graded by the calculus's t-conorm).
    Or(Vec<Query>),
    /// Negation of a subquery (graded by the calculus's negation).
    Not(Box<Query>),
}

impl Query {
    /// Convenience constructor: `a ∧ b`.
    pub fn and(a: Query, b: Query) -> Query {
        Query::And(vec![a, b])
    }

    /// Convenience constructor: `a ∨ b`.
    pub fn or(a: Query, b: Query) -> Query {
        Query::Or(vec![a, b])
    }

    /// Convenience constructor: `¬a`. (Deliberately named like the logic
    /// operator; this is a static constructor, not `std::ops::Not`.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Query) -> Query {
        Query::Not(Box::new(a))
    }

    /// The set of atoms mentioned by the query.
    pub fn atoms(&self) -> BTreeSet<AtomId> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<AtomId>) {
        match self {
            Query::Atom(a) => {
                out.insert(*a);
            }
            Query::And(qs) | Query::Or(qs) => {
                for q in qs {
                    q.collect_atoms(out);
                }
            }
            Query::Not(q) => q.collect_atoms(out),
        }
    }

    /// Whether the query is negation-free (the fragment Theorem 3.1's
    /// equivalence-preservation statement covers).
    pub fn is_positive(&self) -> bool {
        match self {
            Query::Atom(_) => true,
            Query::And(qs) | Query::Or(qs) => qs.iter().all(Query::is_positive),
            Query::Not(_) => false,
        }
    }

    /// Grades the query on one object, given that object's grade under each
    /// atom.
    ///
    /// # Panics
    /// Panics if an atom id is out of range of `atom_grades`.
    pub fn grade<T, S, N>(&self, atom_grades: &[Grade], calculus: &Calculus<T, S, N>) -> Grade
    where
        T: TNorm,
        S: TCoNorm,
        N: Negation,
    {
        match self {
            Query::Atom(a) => atom_grades[*a],
            Query::And(qs) => qs
                .iter()
                .map(|q| q.grade(atom_grades, calculus))
                .fold(Grade::ONE, |acc, g| calculus.tnorm.t(acc, g)),
            Query::Or(qs) => qs
                .iter()
                .map(|q| q.grade(atom_grades, calculus))
                .fold(Grade::ZERO, |acc, g| calculus.conorm.s(acc, g)),
            Query::Not(q) => calculus.negation.negate(q.grade(atom_grades, calculus)),
        }
    }
}

/// A choice of connective semantics: one t-norm for ∧, one t-conorm for ∨,
/// one negation for ¬.
#[derive(Debug, Clone, Copy)]
pub struct Calculus<T = Minimum, S = Maximum, N = StandardNegation> {
    /// Semantics of conjunction.
    pub tnorm: T,
    /// Semantics of disjunction.
    pub conorm: S,
    /// Semantics of negation.
    pub negation: N,
}

impl Calculus {
    /// Zadeh's standard rules: min / max / 1−x.
    pub fn standard() -> Calculus<Minimum, Maximum, StandardNegation> {
        Calculus {
            tnorm: Minimum,
            conorm: Maximum,
            negation: StandardNegation,
        }
    }
}

impl<T: TNorm, S: TCoNorm, N: Negation> Calculus<T, S, N> {
    /// Builds a calculus from arbitrary connectives.
    pub fn new(tnorm: T, conorm: S, negation: N) -> Self {
        Calculus {
            tnorm,
            conorm,
            negation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garlic_agg::tconorms::AlgebraicSum;
    use garlic_agg::tnorms::AlgebraicProduct;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn grades() -> Vec<Grade> {
        vec![g(0.3), g(0.8), g(0.6)]
    }

    #[test]
    fn standard_rules_evaluate() {
        let c = Calculus::standard();
        let q = Query::and(Query::Atom(0), Query::Atom(1));
        assert_eq!(q.grade(&grades(), &c), g(0.3));
        let q = Query::or(Query::Atom(0), Query::Atom(1));
        assert_eq!(q.grade(&grades(), &c), g(0.8));
        let q = Query::not(Query::Atom(1));
        assert!(q.grade(&grades(), &c).approx_eq(g(0.2), 1e-12));
    }

    #[test]
    fn crisp_restriction_recovers_propositional_logic() {
        // Conservative extension: on {0,1} grades the standard rules are
        // classical logic.
        let c = Calculus::standard();
        for a in [Grade::ZERO, Grade::ONE] {
            for b in [Grade::ZERO, Grade::ONE] {
                let v = [a, b];
                let and = Query::and(Query::Atom(0), Query::Atom(1)).grade(&v, &c);
                let or = Query::or(Query::Atom(0), Query::Atom(1)).grade(&v, &c);
                let not = Query::not(Query::Atom(0)).grade(&v, &c);
                assert_eq!(and == Grade::ONE, a == Grade::ONE && b == Grade::ONE);
                assert_eq!(or == Grade::ONE, a == Grade::ONE || b == Grade::ONE);
                assert_eq!(not == Grade::ONE, a == Grade::ZERO);
            }
        }
    }

    #[test]
    fn min_max_preserve_idempotence_product_does_not() {
        // Theorem 3.1's flavour: A ∧ A ≡ A under min, but not under product.
        let std_c = Calculus::standard();
        let prod_c = Calculus::new(AlgebraicProduct, AlgebraicSum, StandardNegation);
        let aa = Query::and(Query::Atom(0), Query::Atom(0));
        let a = Query::Atom(0);
        let v = [g(0.5)];
        assert_eq!(aa.grade(&v, &std_c), a.grade(&v, &std_c));
        assert!(aa.grade(&v, &prod_c) < a.grade(&v, &prod_c)); // 0.25 < 0.5
    }

    #[test]
    fn distributivity_under_min_max() {
        // A ∧ (B ∨ C) ≡ (A ∧ B) ∨ (A ∧ C) under the standard calculus.
        let c = Calculus::standard();
        let lhs = Query::and(Query::Atom(0), Query::or(Query::Atom(1), Query::Atom(2)));
        let rhs = Query::or(
            Query::and(Query::Atom(0), Query::Atom(1)),
            Query::and(Query::Atom(0), Query::Atom(2)),
        );
        for a in garlic_agg::grade_grid(4) {
            for b in garlic_agg::grade_grid(4) {
                for d in garlic_agg::grade_grid(4) {
                    let v = [a, b, d];
                    assert_eq!(lhs.grade(&v, &c), rhs.grade(&v, &c));
                }
            }
        }
    }

    #[test]
    fn atom_collection_and_positivity() {
        let q = Query::and(
            Query::Atom(2),
            Query::or(Query::Atom(0), Query::not(Query::Atom(2))),
        );
        assert_eq!(q.atoms().into_iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!q.is_positive());
        assert!(Query::and(Query::Atom(0), Query::Atom(1)).is_positive());
    }

    #[test]
    fn hard_query_peaks_at_half() {
        // Section 7: μ_{Q ∧ ¬Q}(x) = 1/2 exactly when μ_Q(x) = 1/2, and 1/2
        // is the maximum possible value.
        let c = Calculus::standard();
        let q = Query::and(Query::Atom(0), Query::not(Query::Atom(0)));
        assert_eq!(q.grade(&[Grade::HALF], &c), Grade::HALF);
        for v in garlic_agg::grade_grid(20) {
            assert!(q.grade(&[v], &c) <= Grade::HALF);
        }
    }

    #[test]
    fn empty_connectives_have_units() {
        let c = Calculus::standard();
        assert_eq!(Query::And(vec![]).grade(&[], &c), Grade::ONE);
        assert_eq!(Query::Or(vec![]).grade(&[], &c), Grade::ZERO);
    }
}
