//! Source-contract validation.
//!
//! The algorithms assume every [`GradedSource`] honours the Section 4
//! interface: sorted access descends, every object appears exactly once,
//! and random access agrees with sorted access. A buggy subsystem breaking
//! any of these silently corrupts top-k answers, so middleware deployments
//! can run this (linear-cost) audit against a new subsystem before
//! registering it.

use std::collections::HashSet;

use crate::access::GradedSource;
use crate::object::ObjectId;

/// A violation of the graded-source contract.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceViolation {
    /// Sorted access produced a grade larger than its predecessor's.
    NotDescending {
        /// The rank at which the order broke.
        rank: usize,
    },
    /// An object appeared twice under sorted access.
    DuplicateObject {
        /// The object.
        object: ObjectId,
        /// The second rank it appeared at.
        rank: usize,
    },
    /// Sorted access ended before `len()` entries.
    TruncatedList {
        /// The rank where the stream ended.
        rank: usize,
        /// The advertised length.
        len: usize,
    },
    /// Random access disagrees with the grade shown under sorted access.
    InconsistentGrade {
        /// The object.
        object: ObjectId,
    },
    /// Random access failed for an object the list contains.
    MissingRandomAccess {
        /// The object.
        object: ObjectId,
    },
    /// The batched cursor stream diverged from positional sorted access.
    InconsistentCursor {
        /// The rank at which the streams diverged.
        rank: usize,
    },
    /// Batched random access disagrees with per-object random access (a
    /// wrong grade, a wrong miss, or a misaligned batch).
    InconsistentRandomBatch {
        /// The probe index at which the answers diverged.
        probe: usize,
    },
}

impl std::fmt::Display for SourceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceViolation::NotDescending { rank } => {
                write!(f, "sorted access not descending at rank {rank}")
            }
            SourceViolation::DuplicateObject { object, rank } => {
                write!(
                    f,
                    "object {object} shown twice (second time at rank {rank})"
                )
            }
            SourceViolation::TruncatedList { rank, len } => {
                write!(f, "sorted stream ended at rank {rank} of advertised {len}")
            }
            SourceViolation::InconsistentGrade { object } => {
                write!(f, "random access disagrees with sorted grade for {object}")
            }
            SourceViolation::MissingRandomAccess { object } => {
                write!(f, "random access failed for listed object {object}")
            }
            SourceViolation::InconsistentCursor { rank } => {
                write!(
                    f,
                    "cursor stream diverges from sorted access at rank {rank}"
                )
            }
            SourceViolation::InconsistentRandomBatch { probe } => {
                write!(
                    f,
                    "batched random access diverges from per-object access at probe {probe}"
                )
            }
        }
    }
}

/// Audits a source against the full contract — positional sorted access,
/// random access, the batched cursor stream, and batched random access.
/// Costs `2·len()` sorted (one positional pass, one batched pass) plus
/// `2·len()` random accesses (one per-object pass, one batched pass).
pub fn validate_source<S: GradedSource>(source: &S) -> Result<(), SourceViolation> {
    let n = source.len();
    let mut seen: HashSet<ObjectId> = HashSet::with_capacity(n);
    let mut positional = Vec::with_capacity(n);
    let mut prev = None;
    for rank in 0..n {
        let Some(entry) = source.sorted_access(rank) else {
            return Err(SourceViolation::TruncatedList { rank, len: n });
        };
        positional.push(entry);
        if let Some(p) = prev {
            if entry.grade > p {
                return Err(SourceViolation::NotDescending { rank });
            }
        }
        prev = Some(entry.grade);
        if !seen.insert(entry.object) {
            return Err(SourceViolation::DuplicateObject {
                object: entry.object,
                rank,
            });
        }
        match source.random_access(entry.object) {
            None => {
                return Err(SourceViolation::MissingRandomAccess {
                    object: entry.object,
                })
            }
            Some(g) if g != entry.grade => {
                return Err(SourceViolation::InconsistentGrade {
                    object: entry.object,
                })
            }
            Some(_) => {}
        }
    }

    // The cursor contract: batched streaming must replay the positional
    // stream exactly, for any batch size (here an arbitrary uneven one, so
    // batch boundaries land mid-list).
    let mut cursor = crate::access::SortedCursor::new(source);
    let mut streamed = Vec::with_capacity(n);
    while cursor.next_batch(&mut streamed, 7) > 0 {}
    if streamed.len() != n {
        return Err(SourceViolation::InconsistentCursor {
            rank: streamed.len().min(n),
        });
    }
    for (rank, (a, b)) in streamed.iter().zip(&positional).enumerate() {
        if a != b {
            return Err(SourceViolation::InconsistentCursor { rank });
        }
    }

    // The batched random-access contract: one positionally aligned answer
    // per probe, agreeing with per-object access on hits, misses (an id no
    // listed object uses, probed twice to also cover duplicates), and
    // interleavings thereof.
    let miss = (0..=n as u64)
        .map(ObjectId)
        .find(|id| !seen.contains(id))
        .expect("n + 1 candidate ids cannot all be listed");
    let probes: Vec<ObjectId> = positional
        .iter()
        .map(|e| e.object)
        .chain([miss, miss])
        .collect();
    let mut batched = Vec::with_capacity(probes.len());
    source.random_batch(&probes, &mut batched);
    if batched.len() != probes.len() {
        return Err(SourceViolation::InconsistentRandomBatch {
            probe: batched.len().min(probes.len()),
        });
    }
    // Listed probes must answer the grade the (already-verified) per-object
    // path produced; the miss probes must answer whatever per-object access
    // answers for the unlisted id (None for an honest source — billed
    // nothing, keeping the audit at 2·len random accesses total).
    let expected_miss = source.random_access(miss);
    for (probe, (expected, answer)) in positional
        .iter()
        .map(|e| Some(e.grade))
        .chain([expected_miss, expected_miss])
        .zip(&batched)
        .enumerate()
    {
        if *answer != expected {
            return Err(SourceViolation::InconsistentRandomBatch { probe });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MemorySource;
    use crate::complement::ComplementSource;
    use crate::graded_set::GradedEntry;
    use garlic_agg::Grade;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    #[test]
    fn memory_source_is_valid() {
        let s = MemorySource::from_grades(&[g(0.4), g(0.9), g(0.1)]);
        validate_source(&s).unwrap();
    }

    #[test]
    fn complement_source_is_valid() {
        let s = ComplementSource::new(MemorySource::from_grades(&[g(0.4), g(0.9), g(0.1)]));
        validate_source(&s).unwrap();
    }

    /// A deliberately broken source for failure injection.
    struct Broken {
        kind: u8,
    }

    impl GradedSource for Broken {
        fn len(&self) -> usize {
            3
        }
        fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
            match (self.kind, rank) {
                // kind 0: ascending grades.
                (0, r) if r < 3 => Some(GradedEntry::new(r, Grade::clamped(r as f64 / 3.0))),
                // kind 1: duplicate object.
                (1, r) if r < 3 => Some(GradedEntry::new(0usize, g(0.5))),
                // kind 2: truncated stream.
                (2, 0) => Some(GradedEntry::new(0usize, g(0.5))),
                (2, _) => None,
                // kind 3: random access disagrees.
                (3, r) if r < 3 => Some(GradedEntry::new(r, g(0.5))),
                // kind 4: random access missing.
                (4, r) if r < 3 => Some(GradedEntry::new(r, g(0.5))),
                _ => None,
            }
        }
        fn random_access(&self, object: ObjectId) -> Option<Grade> {
            match self.kind {
                3 => Some(g(0.1)),
                4 => None,
                0 => Some(Grade::clamped(object.0 as f64 / 3.0)),
                _ => Some(g(0.5)),
            }
        }
    }

    #[test]
    fn detects_every_violation_kind() {
        assert!(matches!(
            validate_source(&Broken { kind: 0 }),
            Err(SourceViolation::NotDescending { .. })
        ));
        assert!(matches!(
            validate_source(&Broken { kind: 1 }),
            Err(SourceViolation::DuplicateObject { .. })
        ));
        assert!(matches!(
            validate_source(&Broken { kind: 2 }),
            Err(SourceViolation::TruncatedList { .. })
        ));
        assert!(matches!(
            validate_source(&Broken { kind: 3 }),
            Err(SourceViolation::InconsistentGrade { .. })
        ));
        assert!(matches!(
            validate_source(&Broken { kind: 4 }),
            Err(SourceViolation::MissingRandomAccess { .. })
        ));
    }

    #[test]
    fn violation_messages_name_the_problem() {
        let err = validate_source(&Broken { kind: 0 }).unwrap_err();
        assert!(format!("{err}").contains("descending"));
    }

    /// A source whose batch path disagrees with its positional path.
    struct LyingCursor(MemorySource);

    impl GradedSource for LyingCursor {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
            self.0.sorted_access(rank)
        }
        fn random_access(&self, object: ObjectId) -> Option<Grade> {
            self.0.random_access(object)
        }
        fn sorted_batch(&self, start: usize, count: usize, out: &mut Vec<GradedEntry>) -> usize {
            // Streams the list *backwards* — violating the cursor contract.
            let n = self.0.len();
            if start >= n {
                return 0;
            }
            let take = count.min(n - start);
            for i in 0..take {
                out.push(self.0.sorted_access(n - 1 - start - i).unwrap());
            }
            take
        }
    }

    #[test]
    fn detects_cursor_divergence() {
        let broken = LyingCursor(MemorySource::from_grades(&[g(0.4), g(0.9), g(0.1)]));
        assert!(matches!(
            validate_source(&broken),
            Err(SourceViolation::InconsistentCursor { .. })
        ));
    }

    /// A source whose batched random path disagrees with per-object access.
    struct LyingBatch(MemorySource);

    impl GradedSource for LyingBatch {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
            self.0.sorted_access(rank)
        }
        fn random_access(&self, object: ObjectId) -> Option<Grade> {
            self.0.random_access(object)
        }
        fn random_batch(&self, objects: &[ObjectId], out: &mut Vec<Option<Grade>>) {
            // Answers every probe — even ones the source does not grade.
            out.extend(objects.iter().map(|_| Some(g(0.5))));
        }
    }

    #[test]
    fn detects_random_batch_divergence() {
        let broken = LyingBatch(MemorySource::from_grades(&[g(0.4), g(0.9), g(0.1)]));
        let err = validate_source(&broken).unwrap_err();
        assert!(matches!(
            err,
            SourceViolation::InconsistentRandomBatch { .. }
        ));
        assert!(format!("{err}").contains("batched random access"));
    }
}
