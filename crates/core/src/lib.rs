//! # garlic-core — graded sets, the access model, and Fagin's Algorithm
//!
//! The core of the reproduction of Fagin, *Combining Fuzzy Information from
//! Multiple Systems* (PODS 1996 / JCSS 1999):
//!
//! * [`graded_set`] — graded (fuzzy) sets, the paper's answer semantics
//!   (Section 2);
//! * [`access`] — the sorted-access / random-access subsystem contract,
//!   batched sorted cursors, and the metering wrapper (Section 4);
//! * [`cost`] — the middleware cost model `c₁S + c₂R` (Section 5);
//! * [`query`] — Boolean queries over atoms with calculus-parameterised
//!   graded semantics (Sections 2–3);
//! * [`algorithms`] — A₀ (Fagin's Algorithm), A₀′, B₀, the median
//!   algorithm, Ullman's algorithm, the filtered strategy, the naive
//!   baselines, and resumable paging (Sections 4, 9, Remark 6.1), all
//!   built as thin shells over one unified, batching
//!   [`engine`](algorithms::engine);
//! * [`complement`] — negated atoms as reversed, grade-complemented
//!   sources (the Section 7 `π_{¬Q}` observation);
//! * [`sharded`] — scatter-gather over object-id-range shards: a
//!   tie-order-stable demand-driven k-way merge with a shared grade
//!   frontier, bit-identical to the unsharded stream (Section 5's
//!   threshold argument applied across shards);
//! * [`fx`] — the vendored fast hash keying every hot-path map (engine
//!   slot resolution, random-access indexes, block-cache keys);
//! * [`validate`] — a linear audit of the access contract, for vetting
//!   subsystems before registration.
//!
//! ## Quick example
//!
//! ```
//! use garlic_core::access::MemorySource;
//! use garlic_core::algorithms::fa::fagin_topk;
//! use garlic_agg::{Grade, iterated::min_agg};
//!
//! let color = MemorySource::from_grades(&[
//!     Grade::new(0.9).unwrap(), Grade::new(0.3).unwrap(), Grade::new(0.7).unwrap(),
//! ]);
//! let shape = MemorySource::from_grades(&[
//!     Grade::new(0.2).unwrap(), Grade::new(0.8).unwrap(), Grade::new(0.6).unwrap(),
//! ]);
//! let top = fagin_topk(&[color, shape], &min_agg(), 1).unwrap();
//! assert_eq!(top.best().unwrap().object.0, 2); // min(0.7, 0.6) wins
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod algorithms;
pub mod complement;
pub mod cost;
pub mod fx;
pub mod graded_set;
pub mod object;
pub mod query;
pub mod sharded;
pub mod topk;
pub mod validate;

pub use access::{
    CountingSource, GradedSource, MemorySource, SetAccess, SortedCursor, SourceError,
};
pub use algorithms::engine::{B0Session, Engine, EngineProfile, EngineSession};
pub use complement::ComplementSource;
pub use cost::{AccessStats, CostModel};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet};
pub use graded_set::{GradedEntry, GradedSet};
pub use object::ObjectId;
pub use query::{Calculus, Query};
pub use sharded::{ShardScanStats, ShardedSource};
pub use topk::{TopK, TopKError};
