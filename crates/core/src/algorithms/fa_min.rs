//! Algorithm A₀′ — the min-specialised variant (Proposition 4.3 /
//! Theorem 4.4).
//!
//! For the standard fuzzy conjunction (`t = min`), Proposition 4.3
//! strengthens Proposition 4.1: let `x₀` minimise the overall grade within
//! the matched set `L`, attained in list `i₀` with grade `g₀`. Any object
//! that beats a member of `∩ᵢ X^i_T` must then lie in `X^{i₀}_T` itself —
//! so the random-access phase only needs the **candidates**
//! `{x ∈ X^{i₀}_T : μ_{A_{i₀}}(x) ≥ g₀}` rather than the whole union of
//! prefixes. The saving is the constant-factor improvement measured by
//! experiment E11.
//!
//! A thin shell over the shared [`engine`](crate::algorithms::engine):
//! only the candidate-selection rule above is A₀′-specific.

use garlic_agg::Grade;

use crate::access::GradedSource;
use crate::object::ObjectId;
use crate::topk::{validate_inputs, TopK, TopKError};

use super::engine::Engine;

/// Diagnostics from one run of A₀′.
#[derive(Debug, Clone)]
pub struct FaMinRun {
    /// The top-k answers.
    pub topk: TopK,
    /// The sorted depth `T` at which the phase stopped.
    pub stop_depth: usize,
    /// The threshold grade `g₀` (the least overall grade in the matched set).
    pub threshold: Grade,
    /// The pivot list `i₀` whose prefix contains every possible winner.
    pub pivot_list: usize,
    /// Number of candidate objects sent to the random-access phase.
    pub candidates: usize,
}

/// Runs algorithm A₀′ for the standard fuzzy conjunction
/// `A₁ ∧ ... ∧ A_m` (aggregation fixed to min) and returns the answers.
pub fn fagin_min_topk<S>(sources: &[S], k: usize) -> Result<TopK, TopKError>
where
    S: GradedSource,
{
    fagin_min_run(sources, k).map(|run| run.topk)
}

/// Runs algorithm A₀′ with diagnostics.
pub fn fagin_min_run<S>(sources: &[S], k: usize) -> Result<FaMinRun, TopKError>
where
    S: GradedSource,
{
    validate_inputs(sources, k)?;

    // Sorted access phase — identical to A₀'s (batched, on the engine).
    let mut engine = Engine::open(sources.iter().collect())?;
    engine.advance_until_matched(k)?;
    let stop_depth = engine.depth();

    // Random access phase. Find x₀ ∈ L with least overall grade; its
    // minimising list is i₀ and grade g₀. All grades of matched objects are
    // already known from sorted access.
    let m = engine.m();
    let (g0, i0) = engine
        .matched()
        .iter()
        .map(|id| {
            let v = engine.view(*id).expect("matched objects are seen");
            let (list, grade) = (0..m)
                .map(|i| (i, v.grade(i).expect("matched objects are fully graded")))
                .min_by(|a, b| a.1.cmp(&b.1))
                .expect("m >= 1");
            (grade, list)
        })
        .min_by(|a, b| a.0.cmp(&b.0))
        .expect("matched set has at least k >= 1 members");

    // Candidates: objects of X^{i₀}_T whose grade there is at least g₀.
    let candidates: Vec<ObjectId> = engine
        .views()
        .filter(|v| v.rank(i0).is_some() && v.grade(i0).expect("rank implies grade") >= g0)
        .map(|v| v.id())
        .collect();
    let candidate_count = candidates.len();
    debug_assert!(
        candidate_count >= k,
        "the matched set is contained in the candidate set"
    );

    // "For each candidate x, do random access to each subsystem j ≠ i₀."
    engine.complete_grades(candidates.iter().copied())?;

    // Computation phase: overall grade is the min of the (borrowed, never
    // cloned) slab grade slice.
    let topk = TopK::select(
        candidates.into_iter().map(|id| {
            let grade = engine
                .grade_slice(id)
                .expect("candidate grades were completed")
                .iter()
                .min()
                .copied()
                .expect("m >= 1");
            (id, grade)
        }),
        k,
    );

    Ok(FaMinRun {
        topk,
        stop_depth,
        threshold: g0,
        pivot_list: i0,
        candidates: candidate_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{counted, total_stats, MemorySource};
    use crate::algorithms::fa::{fagin_run, FaOptions};
    use crate::algorithms::naive::naive_topk;
    use garlic_agg::iterated::min_agg;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn sources() -> Vec<MemorySource> {
        vec![
            MemorySource::from_grades(&[g(1.0), g(0.8), g(0.6), g(0.4)]),
            MemorySource::from_grades(&[g(0.3), g(0.5), g(0.7), g(0.9)]),
        ]
    }

    #[test]
    fn agrees_with_naive() {
        for k in 1..=4 {
            let fast = fagin_min_topk(&sources(), k).unwrap();
            let slow = naive_topk(&sources(), &min_agg(), k).unwrap();
            assert!(fast.same_grades(&slow, 0.0), "k = {k}");
        }
    }

    #[test]
    fn candidates_never_exceed_a0_union() {
        // A₀′ restricts random access to one list's prefix; A₀ uses the
        // whole union — Proposition 4.3's point.
        let a0 = fagin_run(&sources(), &min_agg(), 1, FaOptions::default()).unwrap();
        let a0p = fagin_min_run(&sources(), 1).unwrap();
        assert!(a0p.candidates <= a0.candidates);
        assert_eq!(a0p.stop_depth, a0.stop_depth); // identical sorted phase
    }

    #[test]
    fn random_cost_at_most_candidates_times_m_minus_1() {
        let cs = counted(sources());
        let run = fagin_min_run(&cs, 1).unwrap();
        let stats = total_stats(&cs);
        assert!(stats.random <= (run.candidates * (cs.len() - 1)) as u64);
    }

    #[test]
    fn threshold_is_least_matched_grade() {
        let run = fagin_min_run(&sources(), 1).unwrap();
        // Matched objects are 1 (min .5) and 2 (min .6) at depth 3; x₀ is
        // object 1 with grade .5 attained in list 1.
        assert_eq!(run.threshold, g(0.5));
        assert_eq!(run.pivot_list, 1);
    }

    #[test]
    fn rejects_invalid_k() {
        assert!(fagin_min_topk(&sources(), 0).is_err());
        assert!(fagin_min_topk(&sources(), 5).is_err());
    }

    #[test]
    fn three_lists() {
        let s = vec![
            MemorySource::from_grades(&[g(0.9), g(0.1), g(0.5), g(0.7), g(0.3)]),
            MemorySource::from_grades(&[g(0.2), g(0.8), g(0.4), g(0.6), g(1.0)]),
            MemorySource::from_grades(&[g(0.5), g(0.5), g(0.5), g(0.5), g(0.5)]),
        ];
        for k in 1..=5 {
            let fast = fagin_min_topk(&s, k).unwrap();
            let slow = naive_topk(&s, &min_agg(), k).unwrap();
            assert!(fast.same_grades(&slow, 0.0), "k = {k}");
        }
    }
}
