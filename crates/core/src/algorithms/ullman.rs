//! Ullman's algorithm (Section 9) — exploiting extra distributional
//! knowledge for `m = 2`, `t = min`.
//!
//! Stream list 1 under sorted access; probe list 2 by random access for each
//! object as it appears; stop as soon as an object's list-2 grade is at
//! least its list-1 grade. No unseen object can then beat the best object
//! seen, because unseen objects have list-1 grade (hence overall grade)
//! bounded by the current stream grade.
//!
//! The performance depends on the grade distributions (the paper's whole
//! point — Section 9 is about how *additional assumptions* change the
//! optimal strategy):
//!
//! * list-1 grades bounded above by, say, 0.9 and list-2 grades uniform →
//!   expected **constant** cost (≈ 10 objects for the 0.9 bound);
//! * both lists uniform → Θ(√N) expected cost (Ariel Landau's analysis),
//!   i.e. no better than A₀.
//!
//! Experiment E09 reproduces both regimes.

use garlic_agg::Grade;

use crate::access::GradedSource;
use crate::topk::{validate_inputs, TopK, TopKError};

/// Diagnostics from a run of Ullman's algorithm.
#[derive(Debug, Clone)]
pub struct UllmanRun {
    /// The top-k answers.
    pub topk: TopK,
    /// How many objects were streamed from list 1 before stopping.
    pub probes: usize,
}

/// Ullman's algorithm exactly as stated in Section 9 (top-1 only):
/// stop at the first object whose list-2 grade reaches its list-1 grade.
pub fn ullman_top1<S>(sources: &[S]) -> Result<TopK, TopKError>
where
    S: GradedSource,
{
    require_two(sources)?;
    let n = validate_inputs(sources, 1)?;

    let mut best: Option<(crate::object::ObjectId, Grade)> = None;
    let mut probes = 0;
    for rank in 0..n {
        let entry = sources[0].sorted_access(rank).expect("rank < N");
        let g2 = sources[1]
            .random_access(entry.object)
            .expect("every source grades every object");
        probes += 1;
        let overall = entry.grade.min(g2);
        if best.is_none_or(|(_, g)| overall > g) {
            best = Some((entry.object, overall));
        }
        // "Stop if and when an object x is found such that μ_{A2}(x) >= μ_{A1}(x)."
        if g2 >= entry.grade {
            break;
        }
    }
    let (object, grade) = best.expect("N >= 1");
    let _ = probes;
    Ok(TopK::select([(object, grade)], 1))
}

/// The natural top-k generalisation (the paper notes "it is easy to see how
/// to modify this algorithm to obtain the top k answers"): stop once `k`
/// seen objects have overall grades at least the current list-1 stream
/// grade — no unseen object can beat them.
pub fn ullman_topk<S>(sources: &[S], k: usize) -> Result<TopK, TopKError>
where
    S: GradedSource,
{
    ullman_run(sources, k).map(|run| run.topk)
}

/// [`ullman_topk`] with diagnostics.
pub fn ullman_run<S>(sources: &[S], k: usize) -> Result<UllmanRun, TopKError>
where
    S: GradedSource,
{
    require_two(sources)?;
    let n = validate_inputs(sources, k)?;

    let mut seen: Vec<(crate::object::ObjectId, Grade)> = Vec::new();
    let mut probes = 0;
    for rank in 0..n {
        let entry = sources[0].sorted_access(rank).expect("rank < N");
        let g2 = sources[1]
            .random_access(entry.object)
            .expect("every source grades every object");
        probes += 1;
        seen.push((entry.object, entry.grade.min(g2)));

        // Threshold: unseen objects have list-1 grade <= entry.grade, so
        // overall grade <= entry.grade.
        let at_least_threshold = seen.iter().filter(|(_, g)| *g >= entry.grade).count();
        if at_least_threshold >= k {
            break;
        }
    }
    Ok(UllmanRun {
        topk: TopK::select(seen, k),
        probes,
    })
}

fn require_two<S: GradedSource>(sources: &[S]) -> Result<(), TopKError> {
    if sources.len() != 2 {
        return Err(TopKError::WrongArity {
            expected: 2,
            actual: sources.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{counted, total_stats, MemorySource};
    use crate::algorithms::naive::naive_topk;
    use crate::object::ObjectId;
    use garlic_agg::iterated::min_agg;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn sources() -> Vec<MemorySource> {
        vec![
            MemorySource::from_grades(&[g(1.0), g(0.8), g(0.6), g(0.4), g(0.2)]),
            MemorySource::from_grades(&[g(0.3), g(0.5), g(0.7), g(0.9), g(0.1)]),
        ]
    }

    #[test]
    fn top1_agrees_with_naive() {
        let fast = ullman_top1(&sources()).unwrap();
        let slow = naive_topk(&sources(), &min_agg(), 1).unwrap();
        assert!(fast.same_grades(&slow, 0.0));
    }

    #[test]
    fn topk_agrees_with_naive() {
        for k in 1..=5 {
            let fast = ullman_topk(&sources(), k).unwrap();
            let slow = naive_topk(&sources(), &min_agg(), k).unwrap();
            assert!(fast.same_grades(&slow, 0.0), "k = {k}");
        }
    }

    #[test]
    fn stops_immediately_on_early_witness() {
        // Object 0 has grades (1.0, 1.0): the very first probe satisfies
        // μ2 >= μ1 and the answer is found with one probe per list.
        let s = counted(vec![
            MemorySource::from_grades(&[g(1.0), g(0.5), g(0.4)]),
            MemorySource::from_grades(&[g(1.0), g(0.2), g(0.3)]),
        ]);
        let top = ullman_top1(&s).unwrap();
        assert_eq!(top.best().unwrap().object, ObjectId(0));
        let stats = total_stats(&s);
        assert_eq!(stats.sorted, 1);
        assert_eq!(stats.random, 1);
    }

    #[test]
    fn run_reports_probe_count() {
        let run = ullman_run(&sources(), 1).unwrap();
        // List 1 order: 0(1.0), 1(.8), 2(.6), 3(.4).
        // Probes: obj0 g2=.3 <1.0; obj1 g2=.5<.8; obj2 g2=.7>=.6 stop.
        assert_eq!(run.probes, 3);
        assert_eq!(run.topk.best().unwrap().object, ObjectId(2));
    }

    #[test]
    fn requires_exactly_two_lists() {
        let three = vec![
            MemorySource::from_grades(&[g(0.1)]),
            MemorySource::from_grades(&[g(0.1)]),
            MemorySource::from_grades(&[g(0.1)]),
        ];
        assert!(matches!(
            ullman_top1(&three),
            Err(TopKError::WrongArity { expected: 2, .. })
        ));
    }

    #[test]
    fn exhausts_gracefully_when_no_witness_appears() {
        // List-2 grades always strictly below list-1 grades: the paper's
        // "if such an object x is never found, then continue until all
        // objects have been seen".
        let s = vec![
            MemorySource::from_grades(&[g(0.9), g(0.8), g(0.7)]),
            MemorySource::from_grades(&[g(0.1), g(0.2), g(0.3)]),
        ];
        let fast = ullman_top1(&s).unwrap();
        let slow = naive_topk(&s, &min_agg(), 1).unwrap();
        assert!(fast.same_grades(&slow, 0.0));
    }
}
