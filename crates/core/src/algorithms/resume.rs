//! Result-set resumption: "the algorithm has the nice feature that after
//! finding the top k answers, in order to find the next k best answers we
//! can 'continue where we left off'" (Section 4).
//!
//! [`ResumableFa`] keeps A₀'s sorted-phase state alive between batches:
//! asking for the next `k` answers resumes sorted access at the stored
//! depth, and grades already fetched (by either access kind) are never
//! re-fetched, so the cumulative middleware cost of paging through the
//! result set equals the cost of one A₀ run at the total `k`.
//!
//! This is now a thin borrowing shell over
//! [`EngineSession`](crate::algorithms::engine::EngineSession) — the
//! source-owning resumable session the middleware pages every strategy
//! with; use that type directly when the session should own its sources.

use garlic_agg::Aggregation;

use crate::access::GradedSource;
use crate::topk::{TopK, TopKError};

use super::engine::EngineSession;

/// An A₀ session that pages through the ranked result set batch by batch.
pub struct ResumableFa<'a, S, A> {
    session: EngineSession<&'a S, &'a A>,
}

impl<'a, S, A> ResumableFa<'a, S, A>
where
    S: GradedSource,
    A: Aggregation,
{
    /// Opens a session over the given sources and monotone aggregation.
    pub fn new(sources: &'a [S], agg: &'a A) -> Result<Self, TopKError> {
        Ok(ResumableFa {
            session: EngineSession::new(sources.iter().collect(), agg)?,
        })
    }

    /// How many answers have been handed out so far.
    pub fn returned(&self) -> usize {
        self.session.returned()
    }

    /// Returns the next `k` best answers (fewer if the database is
    /// exhausted), continuing where the previous batch left off.
    pub fn next_batch(&mut self, k: usize) -> Result<TopK, TopKError> {
        self.session.next_batch(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{counted, total_stats, MemorySource};
    use crate::algorithms::fa::fagin_topk;
    use garlic_agg::iterated::min_agg;
    use garlic_agg::Grade;
    use std::collections::HashSet;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn sources() -> Vec<MemorySource> {
        vec![
            MemorySource::from_grades(&[g(1.0), g(0.8), g(0.6), g(0.4), g(0.2), g(0.9)]),
            MemorySource::from_grades(&[g(0.3), g(0.5), g(0.7), g(0.9), g(0.1), g(0.8)]),
        ]
    }

    #[test]
    fn two_batches_equal_one_double_batch() {
        let s = sources();
        let agg = min_agg();
        let mut session = ResumableFa::new(&s, &agg).unwrap();
        let first = session.next_batch(2).unwrap();
        let second = session.next_batch(2).unwrap();

        let all4 = fagin_topk(&s, &agg, 4).unwrap();
        let mut paged: Vec<_> = first.grades();
        paged.extend(second.grades());
        assert_eq!(paged, all4.grades());
    }

    #[test]
    fn batches_never_repeat_objects() {
        let s = sources();
        let agg = min_agg();
        let mut session = ResumableFa::new(&s, &agg).unwrap();
        let a = session.next_batch(3).unwrap();
        let b = session.next_batch(3).unwrap();
        let mut ids = a.objects();
        ids.extend(b.objects());
        let distinct: HashSet<_> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), ids.len());
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn exhaustion_yields_short_then_empty_batches() {
        let s = sources();
        let agg = min_agg();
        let mut session = ResumableFa::new(&s, &agg).unwrap();
        let first = session.next_batch(5).unwrap();
        assert_eq!(first.len(), 5);
        let second = session.next_batch(5).unwrap();
        assert_eq!(second.len(), 1);
        let third = session.next_batch(5).unwrap();
        assert!(third.is_empty());
    }

    #[test]
    fn paging_costs_no_more_than_one_shot() {
        let paged_sources = counted(sources());
        let agg = min_agg();
        let mut session = ResumableFa::new(&paged_sources, &agg).unwrap();
        session.next_batch(2).unwrap();
        session.next_batch(2).unwrap();
        let paged_cost = total_stats(&paged_sources);

        let oneshot_sources = counted(sources());
        fagin_topk(&oneshot_sources, &agg, 4).unwrap();
        let oneshot_cost = total_stats(&oneshot_sources);

        assert_eq!(paged_cost.sorted, oneshot_cost.sorted);
        // Random accesses may differ (the first batch completes grades for
        // objects the one-shot run would only learn later via sorted
        // access), but no (object, list) pair is ever fetched twice, so the
        // total across both access kinds is bounded by m·N.
        assert!(paged_cost.unweighted() <= (2 * 6) as u64);
    }

    #[test]
    fn zero_k_batch_rejected() {
        let s = sources();
        let agg = min_agg();
        let mut session = ResumableFa::new(&s, &agg).unwrap();
        assert!(session.next_batch(0).is_err());
    }
}
