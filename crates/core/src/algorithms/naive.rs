//! The naive algorithm (Section 4): retrieve *every* object's grade from
//! *every* subsystem, aggregate, and sort.
//!
//! Its middleware cost is exactly `m·N` sorted accesses — linear in the
//! database size — which is the baseline both bounds of the paper are
//! measured against, and the optimum for the provably hard query of
//! Section 7.
//!
//! A thin shell over the shared [`engine`](crate::algorithms::engine): the
//! exhaustive scan is one batched stream of every list to depth `N`, after
//! which every grade vector is complete without any random access.

use garlic_agg::Aggregation;

use crate::access::GradedSource;
use crate::object::ObjectId;
use crate::topk::{validate_inputs, TopK, TopKError};

use super::engine::Engine;

/// Evaluates `F_t(A_1, ..., A_m)` by exhaustively streaming every list
/// (steps 1–3 of the paper's naive algorithm) and returns the top `k`
/// answers.
pub fn naive_topk<S, A>(sources: &[S], agg: &A, k: usize) -> Result<TopK, TopKError>
where
    S: GradedSource,
    A: Aggregation,
{
    let n = validate_inputs(sources, k)?;

    // "Have the subsystem ... output explicitly the graded set consisting of
    // all pairs (x, μ(x)) for every object x."
    let mut engine = Engine::open(sources.iter().collect())?;
    engine.advance_to_depth(n)?;

    // "Use this information to compute μ(x) for every object x." At full
    // depth every list has shown every object, so all vectors are complete
    // — scored straight off the slab slices into the bounded-heap
    // selection, with no per-object clone or intermediate candidate Vec.
    let mut scratch = Vec::new();
    Ok(TopK::select(
        engine.views().map(|v| {
            let grades = v
                .grades()
                .expect("full-depth streams complete every grade vector");
            (v.id(), agg.combine_reusing(grades, &mut scratch))
        }),
        k,
    ))
}

/// The naive algorithm implemented with **zero sorted accesses**: probe
/// every object in every list by random access.
///
/// Theorem 6.6 (the sorted-access-cost lower bound) must exclude exactly
/// this algorithm — it has *no* sorted cost at all, at the price of a
/// linear (`m·N`) random cost — which is why that theorem is stated only
/// for algorithms whose unweighted cost stays below `N`.
pub fn naive_random_topk<S, A>(sources: &[S], agg: &A, k: usize) -> Result<TopK, TopKError>
where
    S: GradedSource,
    A: Aggregation,
{
    let n = validate_inputs(sources, k)?;
    let m = sources.len();
    let mut scored = Vec::with_capacity(n);
    for x in 0..n as u64 {
        let id = ObjectId(x);
        let mut grades = Vec::with_capacity(m);
        for source in sources {
            grades.push(
                source
                    .random_access(id)
                    .expect("every source grades every object"),
            );
        }
        scored.push((id, agg.combine(&grades)));
    }
    Ok(TopK::select(scored, k))
}

/// Like [`naive_topk`] but grades *all* `N` objects (the `k = N` case the
/// paper's Remark 5.2 discusses: every entry must be accessed). Useful as a
/// ground-truth oracle in tests.
pub fn naive_all<S, A>(sources: &[S], agg: &A) -> Result<TopK, TopKError>
where
    S: GradedSource,
    A: Aggregation,
{
    let n = sources.first().map(|s| s.len()).unwrap_or(0);
    if n == 0 {
        return Err(TopKError::NoSources);
    }
    naive_topk(sources, agg, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{counted, total_stats, MemorySource};
    use garlic_agg::iterated::{min_agg, product_agg};
    use garlic_agg::Grade;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn sources() -> Vec<MemorySource> {
        vec![
            MemorySource::from_grades(&[g(1.0), g(0.8), g(0.6), g(0.4)]),
            MemorySource::from_grades(&[g(0.3), g(0.5), g(0.7), g(0.9)]),
        ]
    }

    #[test]
    fn min_conjunction_hand_check() {
        // Overall min grades: obj0: .3, obj1: .5, obj2: .6, obj3: .4.
        let top = naive_topk(&sources(), &min_agg(), 2).unwrap();
        assert_eq!(top.objects(), vec![ObjectId(2), ObjectId(1)]);
        assert_eq!(top.grades(), vec![g(0.6), g(0.5)]);
    }

    #[test]
    fn product_conjunction_hand_check() {
        // Products: .3, .4, .42, .36 → top-1 is obj2.
        let top = naive_topk(&sources(), &product_agg(), 1).unwrap();
        assert_eq!(top.objects(), vec![ObjectId(2)]);
    }

    #[test]
    fn cost_is_exactly_m_times_n() {
        let cs = counted(sources());
        naive_topk(&cs, &min_agg(), 1).unwrap();
        let stats = total_stats(&cs);
        assert_eq!(stats.sorted, 2 * 4);
        assert_eq!(stats.random, 0);
    }

    #[test]
    fn naive_all_grades_everything() {
        let all = naive_all(&sources(), &min_agg()).unwrap();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn random_only_variant_agrees_and_has_zero_sorted_cost() {
        let cs = counted(sources());
        let via_random = naive_random_topk(&cs, &min_agg(), 2).unwrap();
        let stats = total_stats(&cs);
        assert_eq!(
            stats.sorted, 0,
            "Theorem 6.6's escape hatch: no sorted access"
        );
        assert_eq!(stats.random, 2 * 4);

        let via_sorted = naive_topk(&sources(), &min_agg(), 2).unwrap();
        assert!(via_random.same_grades(&via_sorted, 0.0));
    }

    #[test]
    fn rejects_bad_k() {
        assert!(naive_topk(&sources(), &min_agg(), 0).is_err());
        assert!(naive_topk(&sources(), &min_agg(), 5).is_err());
    }
}
