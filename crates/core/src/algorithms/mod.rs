//! The query-evaluation algorithms of the paper.
//!
//! | Module | Paper reference | Applies to |
//! |---|---|---|
//! | [`naive`] | §4, "obvious naive algorithm" | any aggregation |
//! | [`fa`] (algorithm A₀ — *Fagin's Algorithm*) | §4, Theorem 4.2 | monotone aggregations |
//! | [`fa_min`] (algorithm A₀′) | §4, Prop. 4.3 / Theorem 4.4 | min |
//! | [`b0_max`] (algorithm B₀) | §4, Theorem 4.5 | max |
//! | [`order_stat`] (median & friends) | Remark 6.1, identity (13) | j-th largest |
//! | [`ullman`] | §9 | min, m = 2 |
//! | [`filtered`] ("Beatles" strategy) | §4 opening example | zero-annihilating aggregations with one crisp conjunct |
//! | [`resume`] | §4, "continue where we left off" | monotone aggregations |
//!
//! All algorithms speak to subsystems exclusively through
//! [`crate::access::GradedSource`] (sorted + random access), so
//! wrapping the sources in
//! [`CountingSource`](crate::access::CountingSource) measures exactly the
//! middleware cost of Section 5.

pub mod b0_max;
pub mod fa;
pub mod fa_min;
pub mod filtered;
pub mod naive;
pub mod order_stat;
pub mod resume;
pub mod ullman;

use std::collections::HashMap;

use garlic_agg::Grade;

use crate::access::GradedSource;
use crate::object::ObjectId;

/// What the sorted-access phase knows about one object: the grade and rank
/// observed in each list (if seen there), plus how many lists have shown it.
#[derive(Debug, Clone)]
pub(crate) struct Partial {
    /// `grades[i]` is `Some` once list `i` has revealed this object — via
    /// either access kind.
    pub grades: Vec<Option<Grade>>,
    /// `ranks[i]` is `Some(r)` iff the object appeared at rank `r` under
    /// *sorted* access to list `i` (random access reveals no rank).
    pub ranks: Vec<Option<usize>>,
    /// Number of lists that have shown the object under sorted access.
    pub seen_sorted: usize,
}

impl Partial {
    fn new(m: usize) -> Self {
        Partial {
            grades: vec![None; m],
            ranks: vec![None; m],
            seen_sorted: 0,
        }
    }

    /// All grades known (random-access phase complete for this object).
    pub fn complete(&self) -> bool {
        self.grades.iter().all(Option::is_some)
    }

    /// The full grade vector; panics if incomplete.
    pub fn grade_vec(&self) -> Vec<Grade> {
        self.grades
            .iter()
            .map(|g| g.expect("grade vector incomplete"))
            .collect()
    }
}

/// The state of algorithm A₀'s sorted-access phase, shared by A₀, A₀′ and
/// the resumable variant. Round-robin sorted access keeps every list at the
/// same depth, which is the paper's uniform `T`.
#[derive(Debug)]
pub(crate) struct SortedPhase {
    /// Number of lists, `m`.
    pub m: usize,
    /// Database size, `N`.
    pub n: usize,
    /// Everything seen so far.
    pub partial: HashMap<ObjectId, Partial>,
    /// Objects seen in *every* list under sorted access — the paper's
    /// matched set `L`, in match order.
    pub matched: Vec<ObjectId>,
    /// Common depth already consumed from every list (the paper's `T` once
    /// the phase stops).
    pub depth: usize,
}

impl SortedPhase {
    pub fn new(m: usize, n: usize) -> Self {
        SortedPhase {
            m,
            n,
            partial: HashMap::new(),
            matched: Vec::new(),
            depth: 0,
        }
    }

    /// Runs sorted access round-robin until at least `k` objects have been
    /// seen in every list ("wait until there are at least k matches"), or
    /// the lists are exhausted. Idempotent for already-achieved targets, so
    /// the resumable algorithm can call it repeatedly with growing `k`.
    pub fn advance_until_matched<S: GradedSource>(&mut self, sources: &[S], k: usize) {
        debug_assert_eq!(sources.len(), self.m);
        while self.matched.len() < k && self.depth < self.n {
            for (i, source) in sources.iter().enumerate() {
                let entry = source
                    .sorted_access(self.depth)
                    .expect("depth < N implies a sorted entry");
                let m = self.m;
                let p = self
                    .partial
                    .entry(entry.object)
                    .or_insert_with(|| Partial::new(m));
                debug_assert!(
                    p.ranks[i].is_none(),
                    "object {} shown twice by list {i}",
                    entry.object
                );
                p.grades[i] = Some(entry.grade);
                p.ranks[i] = Some(self.depth);
                p.seen_sorted += 1;
                if p.seen_sorted == self.m {
                    self.matched.push(entry.object);
                }
            }
            self.depth += 1;
        }
    }

    /// Completes the grade vectors of the given objects by random access
    /// ("if x ∈ X^j_T then μ_Aj(x) has already been determined, so random
    /// access is not needed"). Objects never seen before get fresh entries.
    pub fn complete_grades<S: GradedSource>(
        &mut self,
        sources: &[S],
        objects: impl IntoIterator<Item = ObjectId>,
    ) {
        for object in objects {
            let m = self.m;
            let p = self
                .partial
                .entry(object)
                .or_insert_with(|| Partial::new(m));
            for (i, source) in sources.iter().enumerate() {
                if p.grades[i].is_none() {
                    let grade = source
                        .random_access(object)
                        .expect("every source grades every object");
                    p.grades[i] = Some(grade);
                }
            }
        }
    }

    /// The overall grade of an object under `agg`, if its vector is
    /// complete.
    pub fn overall<A: garlic_agg::Aggregation>(&self, object: ObjectId, agg: &A) -> Option<Grade> {
        let p = self.partial.get(&object)?;
        if !p.complete() {
            return None;
        }
        Some(agg.combine(&p.grade_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MemorySource;
    use garlic_agg::iterated::min_agg;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    /// Two 4-object lists with opposite orders.
    fn sources() -> Vec<MemorySource> {
        vec![
            MemorySource::from_grades(&[g(1.0), g(0.8), g(0.6), g(0.4)]),
            MemorySource::from_grades(&[g(0.3), g(0.5), g(0.7), g(0.9)]),
        ]
    }

    #[test]
    fn advance_finds_first_match() {
        let s = sources();
        let mut phase = SortedPhase::new(2, 4);
        phase.advance_until_matched(&s, 1);
        // List 0 order: 0,1,2,3. List 1 order: 3,2,1,0.
        // Depth 1: {0},{3}. Depth 2: {0,1},{3,2}: no match yet.
        // Depth 3: {0,1,2},{3,2,1}: objects 1 and 2 match.
        assert_eq!(phase.depth, 3);
        assert_eq!(phase.matched.len(), 2);
    }

    #[test]
    fn advance_is_idempotent_and_resumable() {
        let s = sources();
        let mut phase = SortedPhase::new(2, 4);
        phase.advance_until_matched(&s, 1);
        let depth = phase.depth;
        phase.advance_until_matched(&s, 1);
        assert_eq!(phase.depth, depth); // no extra work
        phase.advance_until_matched(&s, 4);
        assert_eq!(phase.depth, 4);
        assert_eq!(phase.matched.len(), 4);
    }

    #[test]
    fn complete_grades_fills_missing_slots() {
        let s = sources();
        let mut phase = SortedPhase::new(2, 4);
        phase.advance_until_matched(&s, 1);
        // Object 0 was seen only in list 0 (rank 0); complete it.
        assert!(!phase.partial[&ObjectId(0)].complete());
        phase.complete_grades(&s, [ObjectId(0)]);
        assert!(phase.partial[&ObjectId(0)].complete());
        assert_eq!(
            phase.overall(ObjectId(0), &min_agg()),
            Some(g(0.3)) // min(1.0, 0.3)
        );
    }

    #[test]
    fn overall_is_none_until_complete() {
        let s = sources();
        let mut phase = SortedPhase::new(2, 4);
        phase.advance_until_matched(&s, 1);
        assert_eq!(phase.overall(ObjectId(0), &min_agg()), None);
        assert_eq!(phase.overall(ObjectId(99), &min_agg()), None);
    }
}
