//! The query-evaluation algorithms of the paper.
//!
//! | Module | Paper reference | Applies to |
//! |---|---|---|
//! | [`naive`] | §4, "obvious naive algorithm" | any aggregation |
//! | [`fa`] (algorithm A₀ — *Fagin's Algorithm*) | §4, Theorem 4.2 | monotone aggregations |
//! | [`fa_min`] (algorithm A₀′) | §4, Prop. 4.3 / Theorem 4.4 | min |
//! | [`b0_max`] (algorithm B₀) | §4, Theorem 4.5 | max |
//! | [`order_stat`] (median & friends) | Remark 6.1, identity (13) | j-th largest |
//! | [`ullman`] | §9 | min, m = 2 |
//! | [`filtered`] ("Beatles" strategy) | §4 opening example | zero-annihilating aggregations with one crisp conjunct |
//! | [`resume`] | §4, "continue where we left off" | monotone aggregations |
//!
//! All of the A₀-family modules are thin, paper-annotated shells over one
//! [`engine`] — the shared round-robin sorted phase, candidate bookkeeping,
//! and random-access completion, built on the batched cursor layer of
//! [`crate::access`]. Algorithms speak to subsystems exclusively through
//! [`crate::access::GradedSource`] (sorted + random access), so wrapping
//! the sources in [`CountingSource`](crate::access::CountingSource)
//! measures exactly the middleware cost of Section 5 — batched streaming
//! included (the engine consumes entry-for-entry what the positional loop
//! would; see [`engine`]).

pub mod b0_max;
pub mod engine;
pub mod fa;
pub mod fa_min;
pub mod filtered;
pub mod naive;
pub mod order_stat;
pub mod resume;
pub mod ullman;
