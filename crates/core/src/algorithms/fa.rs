//! Algorithm A₀ — **Fagin's Algorithm** (Section 4, Theorem 4.2).
//!
//! Returns the top-k answers for any *monotone* query `F_t(A_1, ..., A_m)`
//! in three phases:
//!
//! 1. **Sorted access** — stream every list in parallel (round-robin, so all
//!    lists sit at a common depth `T`) until at least `k` objects have been
//!    seen in *every* list (the matched set `L`).
//! 2. **Random access** — for every object seen anywhere, fetch its missing
//!    grades from the other lists.
//! 3. **Computation** — aggregate, and output the `k` best with their
//!    grades.
//!
//! Correctness rests on Proposition 4.1: the prefixes `X^i_T` are upwards
//! closed, so any object beating a member of `∩ᵢ X^i_T` lies in `∪ᵢ X^i_T`
//! and was therefore graded in phase 2. Under independence the middleware
//! cost is `O(N^((m-1)/m) · k^(1/m))` with arbitrarily high probability
//! (Theorem 5.3) — the headline result this repository reproduces
//! empirically in experiments E01–E03.
//!
//! The paper also sketches a refinement: "instead of using a uniform value
//! of T, we might find Tᵢ ≤ T for each i such that `∩ᵢ X^i_{Tᵢ}` contains k
//! members ... which could lead to fewer random accesses." Enable it with
//! [`FaOptions::shrink_depths`].
//!
//! This module is a thin shell over the shared
//! [`engine`](crate::algorithms::engine): phases 1–2 are the engine's
//! batched sorted streaming and random-access completion, with identical
//! Section 5 access counts to the positional formulation.

use garlic_agg::Aggregation;

use crate::access::GradedSource;
use crate::object::ObjectId;
use crate::topk::{validate_inputs, TopK, TopKError};

use super::engine::Engine;

/// Tuning knobs for algorithm A₀.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaOptions {
    /// After the sorted phase, shrink each list's prefix from the uniform
    /// `T` to a per-list `Tᵢ ≤ T` that still witnesses `k` matches, and
    /// restrict the random-access phase to `∪ᵢ X^i_{Tᵢ}`. Saves random
    /// accesses at no extra sorted cost (the Section 4 refinement).
    pub shrink_depths: bool,
}

/// Diagnostics from one run of A₀, for the experiment harness.
#[derive(Debug, Clone)]
pub struct FaRun {
    /// The top-k answers.
    pub topk: TopK,
    /// The uniform sorted depth `T` at which the phase stopped.
    pub stop_depth: usize,
    /// Per-list depths `Tᵢ` actually used for the random-access phase
    /// (all equal to `stop_depth` unless shrinking was enabled).
    pub per_list_depths: Vec<usize>,
    /// Size of the matched set `L` when the sorted phase stopped.
    pub matched: usize,
    /// Number of distinct objects whose grade vectors were completed (the
    /// size of the random-access candidate set).
    pub candidates: usize,
}

/// Runs algorithm A₀ and returns only the answers.
///
/// The aggregation must be monotone (Theorem 4.2's hypothesis); this is
/// debug-asserted from the declared property.
pub fn fagin_topk<S, A>(sources: &[S], agg: &A, k: usize) -> Result<TopK, TopKError>
where
    S: GradedSource,
    A: Aggregation,
{
    fagin_run(sources, agg, k, FaOptions::default()).map(|run| run.topk)
}

/// Runs algorithm A₀ with options, returning diagnostics alongside the
/// answers.
pub fn fagin_run<S, A>(
    sources: &[S],
    agg: &A,
    k: usize,
    options: FaOptions,
) -> Result<FaRun, TopKError>
where
    S: GradedSource,
    A: Aggregation,
{
    validate_inputs(sources, k)?;
    let m = sources.len();
    debug_assert!(
        agg.is_monotone(),
        "A0 is only guaranteed correct for monotone aggregations (Theorem 4.2)"
    );

    // Phase 1: sorted access until k matches (batched round-robin streaming
    // on the shared engine).
    let mut engine = Engine::open(sources.iter().collect())?;
    engine.advance_until_matched(k)?;
    let stop_depth = engine.depth();
    let matched = engine.matched().len();
    debug_assert!(matched >= k);

    // Optional refinement: per-list depths Tᵢ ≤ T still witnessing k matches.
    let per_list_depths = if options.shrink_depths {
        shrink_depths(&engine, k)
    } else {
        vec![stop_depth; m]
    };

    // Phase 2: random access for every object inside some (possibly shrunk)
    // prefix.
    let candidates: Vec<ObjectId> = engine
        .views()
        .filter(|v| {
            per_list_depths
                .iter()
                .enumerate()
                .any(|(i, &t_i)| v.rank(i).is_some_and(|r| r < t_i))
        })
        .map(|v| v.id())
        .collect();
    let candidate_count = candidates.len();
    engine.complete_grades(candidates.iter().copied())?;

    // Phase 3: computation, scoring straight off the slab's grade slices
    // (no per-candidate clone; `scratch` serves aggregations that need an
    // owned working buffer).
    let mut scratch = Vec::new();
    let topk = TopK::select(
        candidates.into_iter().map(|id| {
            let grades = engine
                .grade_slice(id)
                .expect("candidate grades were completed");
            (id, agg.combine_reusing(grades, &mut scratch))
        }),
        k,
    );

    Ok(FaRun {
        topk,
        stop_depth,
        per_list_depths,
        matched,
        candidates: candidate_count,
    })
}

/// Chooses per-list depths `Tᵢ ≤ T` such that `∩ᵢ X^i_{Tᵢ}` still contains
/// `k` objects: pick the `k` matched objects with the earliest worst rank,
/// then clamp each list at the deepest rank any chosen object needs there.
fn shrink_depths<S: GradedSource>(engine: &Engine<S>, k: usize) -> Vec<usize> {
    let m = engine.m();
    let mut by_worst_rank: Vec<(usize, &ObjectId)> = engine
        .matched()
        .iter()
        .map(|id| {
            let v = engine.view(*id).expect("matched objects are seen");
            let worst = (0..m)
                .map(|i| {
                    v.rank(i)
                        .expect("matched objects have a rank in every list")
                })
                .max()
                .expect("m >= 1");
            (worst, id)
        })
        .collect();
    by_worst_rank.sort_by_key(|&(worst, id)| (worst, *id));

    let mut depths = vec![0usize; m];
    for &(_, id) in by_worst_rank.iter().take(k) {
        let v = engine.view(*id).expect("matched objects are seen");
        for (i, depth) in depths.iter_mut().enumerate() {
            let r = v.rank(i).expect("matched");
            *depth = (*depth).max(r + 1);
        }
    }
    depths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{counted, total_stats, MemorySource};
    use crate::algorithms::naive::naive_topk;
    use garlic_agg::iterated::{min_agg, product_agg};
    use garlic_agg::means::ArithmeticMean;
    use garlic_agg::Grade;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn sources() -> Vec<MemorySource> {
        vec![
            MemorySource::from_grades(&[g(1.0), g(0.8), g(0.6), g(0.4)]),
            MemorySource::from_grades(&[g(0.3), g(0.5), g(0.7), g(0.9)]),
        ]
    }

    #[test]
    fn agrees_with_naive_on_hand_example() {
        for k in 1..=4 {
            let fa = fagin_topk(&sources(), &min_agg(), k).unwrap();
            let naive = naive_topk(&sources(), &min_agg(), k).unwrap();
            assert!(fa.same_grades(&naive, 0.0), "k = {k}");
        }
    }

    #[test]
    fn works_for_product_and_mean() {
        let fa = fagin_topk(&sources(), &product_agg(), 2).unwrap();
        let naive = naive_topk(&sources(), &product_agg(), 2).unwrap();
        assert!(fa.same_grades(&naive, 1e-12));

        let fa = fagin_topk(&sources(), &ArithmeticMean, 2).unwrap();
        let naive = naive_topk(&sources(), &ArithmeticMean, 2).unwrap();
        assert!(fa.same_grades(&naive, 1e-12));
    }

    #[test]
    fn reports_stop_depth() {
        let run = fagin_run(&sources(), &min_agg(), 1, FaOptions::default()).unwrap();
        // From the SortedPhase test: first match appears at depth 3.
        assert_eq!(run.stop_depth, 3);
        assert_eq!(run.matched, 2);
        assert_eq!(run.per_list_depths, vec![3, 3]);
    }

    #[test]
    fn shrink_never_increases_candidates() {
        let plain = fagin_run(&sources(), &min_agg(), 1, FaOptions::default()).unwrap();
        let shrunk = fagin_run(
            &sources(),
            &min_agg(),
            1,
            FaOptions {
                shrink_depths: true,
            },
        )
        .unwrap();
        assert!(shrunk.candidates <= plain.candidates);
        assert!(shrunk
            .per_list_depths
            .iter()
            .all(|&t| t <= plain.stop_depth));
        assert!(shrunk.topk.same_grades(&plain.topk, 0.0));
    }

    #[test]
    fn no_random_access_for_sorted_seen_grades() {
        // Objects seen in both lists by sorted access need zero random
        // accesses; here depth reaches 4 of 4 for k = 4, so all grades come
        // from sorted access.
        let cs = counted(sources());
        fagin_topk(&cs, &min_agg(), 4).unwrap();
        assert_eq!(total_stats(&cs).random, 0);
    }

    #[test]
    fn k_equals_n_grades_whole_database() {
        // Remark 5.2: with k = N the cost is necessarily linear.
        let cs = counted(sources());
        let top = fagin_topk(&cs, &min_agg(), 4).unwrap();
        assert_eq!(top.len(), 4);
        assert_eq!(total_stats(&cs).sorted, 8);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(matches!(
            fagin_topk(&sources(), &min_agg(), 0),
            Err(TopKError::ZeroK)
        ));
        assert!(matches!(
            fagin_topk(&sources(), &min_agg(), 9),
            Err(TopKError::KTooLarge { .. })
        ));
    }

    #[test]
    fn single_list_degenerates_to_prefix() {
        let s = vec![MemorySource::from_grades(&[g(0.1), g(0.9), g(0.5)])];
        let top = fagin_topk(&s, &min_agg(), 2).unwrap();
        assert_eq!(top.objects(), vec![ObjectId(1), ObjectId(2)]);
    }
}
