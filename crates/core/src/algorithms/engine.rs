//! The unified top-k execution engine.
//!
//! Every A₀-family algorithm in this crate shares the same three moving
//! parts (Section 4):
//!
//! 1. a **round-robin sorted phase** that streams all `m` lists in parallel
//!    at a common depth `T`;
//! 2. **candidate bookkeeping** — which grades and ranks each object has
//!    revealed so far;
//! 3. a **random-access completion** step that fills the missing grades of
//!    a chosen candidate set.
//!
//! [`Engine`] packages those parts once, on top of the *batched* cursor
//! layer of [`crate::access`]: sorted streaming goes through
//! [`GradedSource::sorted_batch`] and grade completion through
//! [`GradedSource::random_batch`], so block-backed sources see a handful of
//! large requests instead of millions of virtual calls. The algorithm
//! modules (`fa`, `fa_min`, `b0_max`, `filtered`, `naive`, `resume`) are
//! thin, paper-annotated shells over this engine.
//!
//! # The slab
//!
//! Bookkeeping is data-oriented and allocation-free on the hot path. The
//! per-object `HashMap<ObjectId, Partial>` of earlier revisions — two
//! heap-allocated `Vec<Option<_>>`s per candidate, SipHash on every
//! observation — is replaced by a [`Slab`]:
//!
//! * an `ObjectId → u32` **slot map** keyed by the vendored [`crate::fx`]
//!   hash (a few arithmetic ops per lookup);
//! * **m-strided flat arrays**: slot `s`'s grades live at
//!   `grades[s·m .. s·m+m]`, its sorted ranks at the same stride in a
//!   `Vec<u32>` — one contiguous allocation each, grown geometrically, no
//!   per-object boxes, and the grade vector of a completed object is a
//!   *borrowable slice* ([`Engine::grade_slice`]) so scoring never clones;
//! * per-slot `u64` **seen-bitmasks** (one word per 64 lists) for both
//!   access kinds, making "has list i shown this object?" a bit test and
//!   "is the grade vector complete?" an O(1) word compare for `m ≤ 64`.
//!
//! # Exact Section 5 cost preservation
//!
//! Batching is an access-plan optimisation, not a semantic change: the
//! engine consumes *exactly* the entries the paper's positional round-robin
//! loop would, in the same interleaved order, so measured
//! [`AccessStats`](crate::cost::AccessStats) are identical entry-for-entry
//! to the seed positional implementations (property-tested in
//! `tests/engine_equivalence.rs`). The trick is a pair of lower bounds on
//! the stop depth `T` of the "wait until k matches" phase, which let the
//! engine pull large batches without overshooting:
//!
//! * the matched set at depth `T` is contained in every prefix `X^i_T`, so
//!   `T ≥ k` always;
//! * one depth step reveals `m` new `(list, object)` pairs and an object
//!   matches only when its *last* pair arrives, so at most `m` objects can
//!   match per step: from a state with `c` matches at depth `d`,
//!   `T ≥ d + ⌈(k − c)/m⌉`.
//!
//! Within the region these bounds cover, batches are as large as the bound
//! allows; past it the engine degrades gracefully to single-level rounds,
//! never reading an entry the positional algorithm would not. The
//! random-access phase likewise bills one access per `(object, list)` pair
//! whether completed one by one or via [`GradedSource::random_batch`].
//!
//! # Sessions
//!
//! [`EngineSession`] keeps an engine alive between top-k requests: asking
//! for the next `k` answers resumes the sorted phase at the stored depth
//! ("continue where we left off", Section 4), so paging through a ranked
//! result set costs the same sorted accesses as one evaluation at the
//! cumulative `k`. Each page completes — and scores, once, through the
//! zero-alloc [`Aggregation::combine_reusing`] path — only the slots
//! discovered since the previous page (a high-water mark over the slab;
//! completed grade vectors stay complete, so cached scores stay valid),
//! and the returned-set is a slot-indexed bitvec. Per-page work beyond
//! the fresh slots is therefore one bounded-heap selection over the
//! cached score array (unreturned candidates must re-compete every page;
//! the aggregation itself is never re-run). [`B0Session`] is the
//! analogous session for the max-disjunction algorithm B₀, whose paging
//! cost is `m·k` cumulative.
//!
//! Both sessions expose their **k-th score frontier**
//! ([`EngineSession::frontier`], [`B0Session::frontier`]) — the overall
//! grade of the worst answer handed out so far. It is the natural
//! advisory stop-threshold hint for auxiliary scans over block-backed
//! sources ([`SortedCursor::set_bound`](crate::access::SortedCursor)):
//! v2 segments use the bound to skip whole data blocks whose fence says
//! every entry is already below the frontier. The hint is strictly an
//! access-plan optimisation — a stale or wrong frontier can only make a
//! bounded scan stop later or earlier than optimal, never change which
//! entries a consumer that honours the bound contract observes.

use garlic_agg::{Aggregation, Grade};

use crate::access::GradedSource;
use crate::fx::FxHashMap;
use crate::graded_set::GradedEntry;
use crate::object::ObjectId;
use crate::topk::{validate_inputs, TopK, TopKError};

/// Upper bound on levels fetched per batched round, to bound scratch-buffer
/// memory (`m · CHUNK` entries) on full-database streams.
const CHUNK: usize = 4096;

/// Minimum levels per round for the opt-in *parallel* per-source fetch
/// ([`Engine::with_parallel_fetch`]) to pay for its thread spawns: below
/// this the sequential walk always wins. Sources are `Sync` (a
/// [`GradedSource`] bound), and the entries are folded into the
/// bookkeeping only after all fetches complete, in the exact positional
/// round-robin order — so results, tie order, and per-source access counts
/// are bit-identical to the sequential fetch.
const PARALLEL_LEVELS: usize = 2048;

/// Flat, slot-addressed candidate bookkeeping — see the module docs.
#[derive(Debug, Default)]
struct Slab {
    /// Number of lists `m` (the stride of `grades`/`ranks`).
    m: usize,
    /// `u64` mask words per slot: `⌈m / 64⌉`.
    words: usize,
    /// Bit pattern of the *last* mask word when every list is present.
    last_full: u64,
    /// `ObjectId → slot` resolution (FxHash — no SipHash per observation).
    slots: FxHashMap<ObjectId, u32>,
    /// `slot → ObjectId`, in first-seen order.
    ids: Vec<ObjectId>,
    /// m-strided grades; validity is governed by `grade_mask`.
    grades: Vec<Grade>,
    /// m-strided sorted ranks; validity is governed by `rank_mask`.
    ranks: Vec<u32>,
    /// Per-slot bitmask of lists whose grade is known (either access kind).
    grade_mask: Vec<u64>,
    /// Per-slot bitmask of lists that showed the object under *sorted*
    /// access (subset of `grade_mask`).
    rank_mask: Vec<u64>,
}

impl Slab {
    fn new(m: usize) -> Self {
        let words = m.div_ceil(64).max(1);
        let tail = m % 64;
        Slab {
            m,
            words,
            last_full: if m == 0 || tail == 0 {
                u64::MAX
            } else {
                (1u64 << tail) - 1
            },
            ..Slab::default()
        }
    }

    /// Number of slots (distinct objects seen via either access kind).
    fn len(&self) -> usize {
        self.ids.len()
    }

    /// Resolves an object to its slot, allocating a fresh one on first
    /// sight. The only hash lookup on the observation path.
    fn slot(&mut self, id: ObjectId) -> u32 {
        match self.slots.entry(id) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let slot = self.ids.len() as u32;
                e.insert(slot);
                self.ids.push(id);
                self.grades.resize(self.grades.len() + self.m, Grade::ZERO);
                self.ranks.resize(self.ranks.len() + self.m, 0);
                self.grade_mask
                    .resize(self.grade_mask.len() + self.words, 0);
                self.rank_mask.resize(self.rank_mask.len() + self.words, 0);
                slot
            }
        }
    }

    /// The slot of an already-seen object, if any.
    fn slot_of(&self, id: ObjectId) -> Option<u32> {
        self.slots.get(&id).copied()
    }

    fn id(&self, slot: u32) -> ObjectId {
        self.ids[slot as usize]
    }

    #[inline]
    fn word_bit(&self, slot: u32, list: usize) -> (usize, u64) {
        (slot as usize * self.words + list / 64, 1u64 << (list % 64))
    }

    /// Whether list `list` has revealed this slot's grade (either kind).
    #[inline]
    fn has_grade(&self, slot: u32, list: usize) -> bool {
        let (w, b) = self.word_bit(slot, list);
        self.grade_mask[w] & b != 0
    }

    /// Whether list `list` has shown this slot under sorted access.
    #[inline]
    fn has_rank(&self, slot: u32, list: usize) -> bool {
        let (w, b) = self.word_bit(slot, list);
        self.rank_mask[w] & b != 0
    }

    /// The grade list `list` revealed, if any.
    #[inline]
    fn grade(&self, slot: u32, list: usize) -> Option<Grade> {
        self.has_grade(slot, list)
            .then(|| self.grades[slot as usize * self.m + list])
    }

    /// The sorted rank list `list` showed the slot at, if any.
    #[inline]
    fn rank(&self, slot: u32, list: usize) -> Option<usize> {
        self.has_rank(slot, list)
            .then(|| self.ranks[slot as usize * self.m + list] as usize)
    }

    /// Records a grade learned by random access.
    #[inline]
    fn set_grade(&mut self, slot: u32, list: usize, grade: Grade) {
        let (w, b) = self.word_bit(slot, list);
        self.grades[slot as usize * self.m + list] = grade;
        self.grade_mask[w] |= b;
    }

    /// All `m` grades known — O(1) for `m ≤ 64` (one masked word compare).
    #[inline]
    fn complete(&self, slot: u32) -> bool {
        Self::mask_full(&self.grade_mask, slot, self.words, self.last_full)
    }

    #[inline]
    fn mask_full(mask: &[u64], slot: u32, words: usize, last_full: u64) -> bool {
        let base = slot as usize * words;
        mask[base + words - 1] == last_full
            && mask[base..base + words - 1].iter().all(|&w| w == u64::MAX)
    }

    /// The complete grade vector as a borrowed slice (the zero-copy scoring
    /// path); `None` while any grade is missing.
    #[inline]
    fn grade_slice(&self, slot: u32) -> Option<&[Grade]> {
        self.complete(slot)
            .then(|| &self.grades[slot as usize * self.m..][..self.m])
    }

    /// Folds one sorted observation in; returns `true` when this was the
    /// slot's last list, i.e. the object just *matched*.
    #[inline]
    fn observe(&mut self, slot: u32, list: usize, rank: usize, grade: Grade) -> bool {
        let (w, b) = self.word_bit(slot, list);
        debug_assert!(
            self.rank_mask[w] & b == 0,
            "object {} shown twice by list {list}",
            self.id(slot)
        );
        let base = slot as usize * self.m + list;
        self.grades[base] = grade;
        self.ranks[base] = rank as u32;
        self.grade_mask[w] |= b;
        self.rank_mask[w] |= b;
        Self::mask_full(&self.rank_mask, slot, self.words, self.last_full)
    }

    /// The best grade any list has shown for the slot (B₀'s scoring rule).
    fn best_grade(&self, slot: u32) -> Grade {
        let mut best: Option<Grade> = None;
        for list in 0..self.m {
            if let Some(g) = self.grade(slot, list) {
                best = Some(best.map_or(g, |b| b.max(g)));
            }
        }
        best.expect("seen objects have at least one grade")
    }
}

/// A borrowed read-only view of one candidate's bookkeeping — what the
/// algorithm shells (`fa`, `fa_min`) inspect instead of the old per-object
/// `Partial` struct.
pub(crate) struct PartialView<'a> {
    slab: &'a Slab,
    slot: u32,
}

impl<'a> PartialView<'a> {
    /// The object this view describes.
    pub fn id(&self) -> ObjectId {
        self.slab.id(self.slot)
    }

    /// The sorted rank list `list` showed the object at, if any.
    pub fn rank(&self, list: usize) -> Option<usize> {
        self.slab.rank(self.slot, list)
    }

    /// The grade list `list` revealed (either access kind), if any.
    pub fn grade(&self, list: usize) -> Option<Grade> {
        self.slab.grade(self.slot, list)
    }

    /// The complete grade vector as a borrowed slice; `None` while any
    /// grade is missing.
    pub fn grades(&self) -> Option<&'a [Grade]> {
        self.slab.grade_slice(self.slot)
    }
}

/// An always-on, allocation-free profile of one engine's work, split into
/// the paper's two phases. Timings are taken once per `advance_*` /
/// completion call (never per entry, never per batch), so keeping the
/// profile costs a handful of `Instant` reads per *page* plus plain
/// integer adds on the batch paths — cheap enough to leave on
/// unconditionally, which is what lets `EXPLAIN` report phase timings
/// without a registry attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Wall-clock nanoseconds inside the sorted phase (`advance_*`).
    pub sorted_ns: u64,
    /// Wall-clock nanoseconds inside random-access completion.
    pub random_ns: u64,
    /// Batched cursor reads issued by the sorted phase (one per list per
    /// fetch round).
    pub sorted_batches: u64,
    /// Entries folded in by the sorted phase across all lists.
    pub sorted_entries: u64,
    /// `random_batch` calls issued by completion (one per list that was
    /// missing grades, per completion round).
    pub random_batches: u64,
    /// Object probes carried by those calls (= random accesses billed by
    /// the completion path).
    pub random_probes: u64,
}

/// Nanoseconds elapsed since `start`, saturating.
fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The unified execution engine: owned sources, batched round-robin sorted
/// streaming at a uniform depth (the paper's `T`), slab candidate
/// bookkeeping, and batched random-access completion. See the module docs.
#[derive(Debug)]
pub struct Engine<S> {
    sources: Vec<S>,
    n: usize,
    slab: Slab,
    matched: Vec<ObjectId>,
    depth: usize,
    /// One reusable fetch buffer per list (scratch reuse across rounds).
    scratch: Vec<Vec<GradedEntry>>,
    /// Reusable completion scratch: slots pending completion.
    pending: Vec<u32>,
    /// Reusable completion scratch: slots probed for the current list.
    probe_slots: Vec<u32>,
    /// Reusable completion scratch: the probe ids sent to `random_batch`.
    probes: Vec<ObjectId>,
    /// Reusable completion scratch: the grades `random_batch` answered.
    probe_grades: Vec<Option<Grade>>,
    /// Opt-in parallel per-source fetch (see [`Engine::with_parallel_fetch`]).
    parallel_fetch: bool,
    /// Cooperative cancellation: checked between batch rounds (see
    /// [`Engine::set_deadline`]).
    deadline: Option<std::time::Instant>,
    /// Phase timings and batch counts (see [`EngineProfile`]).
    profile: EngineProfile,
}

impl<S: GradedSource> Engine<S> {
    /// Opens an engine over the given sources (each conceptually holding a
    /// sorted cursor at rank 0). Fails if there are no sources or they
    /// disagree on the database size.
    ///
    /// # Panics
    /// Panics if the database size exceeds `u32::MAX` ranks (the slab
    /// stores ranks as `u32`; at 16 bytes per entry that bound is only
    /// reachable past 64 GiB per list).
    pub fn open(sources: Vec<S>) -> Result<Self, TopKError> {
        if sources.is_empty() {
            return Err(TopKError::NoSources);
        }
        let n = sources[0].len();
        if sources.iter().any(|s| s.len() != n) {
            return Err(TopKError::MismatchedSources {
                sizes: sources.iter().map(|s| s.len()).collect(),
            });
        }
        assert!(n <= u32::MAX as usize, "slab ranks are u32");
        let m = sources.len();
        Ok(Engine {
            sources,
            n,
            slab: Slab::new(m),
            matched: Vec::new(),
            depth: 0,
            scratch: vec![Vec::new(); m],
            pending: Vec::new(),
            probe_slots: Vec::new(),
            probes: Vec::new(),
            probe_grades: Vec::new(),
            parallel_fetch: false,
            deadline: None,
            profile: EngineProfile::default(),
        })
    }

    /// Sets (or clears) a cooperative deadline. The engine checks it once
    /// per batch round — between `pull_levels` rounds of the sorted phase
    /// and between per-list rounds of random-access completion — and
    /// returns [`TopKError::DeadlineExceeded`] when it has passed. The
    /// engine state stays consistent at every check point: clearing or
    /// extending the deadline and repeating the call resumes the identical
    /// stream with no access re-billed.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// The cooperative deadline currently in force, if any.
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }

    #[inline]
    fn check_deadline(&self) -> Result<(), TopKError> {
        match self.deadline {
            Some(deadline) if std::time::Instant::now() >= deadline => {
                Err(TopKError::DeadlineExceeded)
            }
            _ => Ok(()),
        }
    }

    /// Opts deep fetch rounds into a *parallel* per-source sorted phase:
    /// when a round pulls at least [`PARALLEL_LEVELS`] levels from `m >= 2`
    /// lists, each list's batch is read on its own scoped thread.
    ///
    /// Off by default: for materialised in-memory sources a batch read is a
    /// small slice copy, cheaper than the thread spawns — and a concurrent
    /// service already parallelises *across* queries, so nesting threads
    /// inside each engine would oversubscribe the machine. Enable it when
    /// individual batch reads are genuinely expensive (sources that compute
    /// grades during the read, decompress, or talk to remote subsystems).
    /// Either way the results, tie order, and per-source access counts are
    /// bit-identical — batching and threading are access-plan choices, not
    /// semantic ones (pinned by this module's tests).
    pub fn with_parallel_fetch(mut self, enabled: bool) -> Self {
        self.parallel_fetch = enabled;
        self
    }

    /// The sources the engine streams from.
    pub fn sources(&self) -> &[S] {
        &self.sources
    }

    /// Unwraps the engine, returning its sources.
    pub fn into_sources(self) -> Vec<S> {
        self.sources
    }

    /// Number of lists, `m`.
    pub fn m(&self) -> usize {
        self.sources.len()
    }

    /// Database size, `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Common depth already consumed from every list (the paper's `T` once
    /// the sorted phase stops).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Phase timings and batch counts accumulated so far (always on — see
    /// [`EngineProfile`] for the cost argument).
    pub fn profile(&self) -> EngineProfile {
        self.profile
    }

    /// Objects seen in *every* list under sorted access — the paper's
    /// matched set `L`, in match order.
    pub fn matched(&self) -> &[ObjectId] {
        &self.matched
    }

    /// Every candidate's bookkeeping, in first-seen order.
    pub(crate) fn views(&self) -> impl Iterator<Item = PartialView<'_>> {
        (0..self.slab.len() as u32).map(move |slot| PartialView {
            slab: &self.slab,
            slot,
        })
    }

    /// One candidate's bookkeeping, if the object has been seen.
    pub(crate) fn view(&self, object: ObjectId) -> Option<PartialView<'_>> {
        self.slab.slot_of(object).map(|slot| PartialView {
            slab: &self.slab,
            slot,
        })
    }

    /// Every object seen so far, via either access kind, in first-seen
    /// order.
    pub fn seen(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.slab.ids.iter().copied()
    }

    /// Runs the sorted phase round-robin until at least `k` objects have
    /// been seen in every list ("wait until there are at least k matches"),
    /// or the lists are exhausted. Idempotent for already-achieved targets,
    /// so sessions can call it repeatedly with a growing `k`.
    ///
    /// Streaming is batched (see the module docs for why the batch sizes
    /// cannot overshoot the positional stop depth).
    /// Errors leave the already-folded prefix intact: a transient
    /// [`TopKError::SourceFailed`] or [`TopKError::DeadlineExceeded`] can
    /// be retried by calling again with the same target, and no consumed
    /// entry is re-read or re-billed.
    pub fn advance_until_matched(&mut self, k: usize) -> Result<(), TopKError> {
        let start = std::time::Instant::now();
        let mut result = Ok(());
        while self.matched.len() < k && self.depth < self.n {
            if let Err(e) = self.check_deadline() {
                result = Err(e);
                break;
            }
            // T >= k, and at most m objects can complete per level.
            let by_depth = k.saturating_sub(self.depth);
            let by_matches = (k - self.matched.len()).div_ceil(self.m());
            let step = by_depth
                .max(by_matches)
                .max(1)
                .min(self.n - self.depth)
                .min(CHUNK);
            if let Err(e) = self.pull_levels(step) {
                result = Err(e);
                break;
            }
        }
        self.profile.sorted_ns += elapsed_ns(start);
        result
    }

    /// Streams every list down to `target` (clamped to `N`) regardless of
    /// matches — the full-scan primitive behind B₀ (`target = k`) and the
    /// naive baseline (`target = N`). Errors are resumable exactly as on
    /// [`Engine::advance_until_matched`].
    pub fn advance_to_depth(&mut self, target: usize) -> Result<(), TopKError> {
        let start = std::time::Instant::now();
        let target = target.min(self.n);
        let mut result = Ok(());
        while self.depth < target {
            if let Err(e) = self.check_deadline() {
                result = Err(e);
                break;
            }
            let step = (target - self.depth).min(CHUNK);
            if let Err(e) = self.pull_levels(step) {
                result = Err(e);
                break;
            }
        }
        self.profile.sorted_ns += elapsed_ns(start);
        result
    }

    /// Fetches `levels` more entries from every list (one batched cursor
    /// read per list) and folds them into the bookkeeping in the exact
    /// interleaved order of the positional round-robin loop, so match order
    /// — and therefore every downstream tie-break — is preserved.
    ///
    /// All `m` fetches complete **before** any entry is folded in, so a
    /// failed fetch leaves the bookkeeping untouched at the pre-round depth:
    /// retrying the round re-reads only this round's entries and never
    /// observes an entry twice.
    fn pull_levels(&mut self, levels: usize) -> Result<(), TopKError> {
        debug_assert!(self.depth + levels <= self.n);
        let m = self.sources.len();
        self.profile.sorted_batches += m as u64;
        self.profile.sorted_entries += (levels * m) as u64;
        let mut scratch = std::mem::take(&mut self.scratch);
        let depth = self.depth;
        let mut failed: Option<crate::access::SourceError> = None;
        if self.parallel_fetch && levels >= PARALLEL_LEVELS && m >= 2 {
            // Parallel per-source fetch: one scoped thread per list, each
            // writing its own scratch buffer. See PARALLEL_LEVELS for why
            // this cannot change results or access counts.
            let mut results: Vec<Result<usize, crate::access::SourceError>> =
                (0..m).map(|_| Ok(0)).collect();
            std::thread::scope(|scope| {
                for ((buf, source), slot) in scratch
                    .iter_mut()
                    .zip(&self.sources)
                    .zip(results.iter_mut())
                {
                    scope.spawn(move || {
                        buf.clear();
                        *slot = source.try_sorted_batch(depth, levels, buf);
                    });
                }
            });
            for result in results {
                match result {
                    Ok(got) => {
                        debug_assert_eq!(got, levels, "depth + levels <= N implies full batches")
                    }
                    Err(e) => failed = Some(e),
                }
            }
        } else {
            for (buf, source) in scratch.iter_mut().zip(&self.sources) {
                buf.clear();
                match source.try_sorted_batch(depth, levels, buf) {
                    Ok(got) => {
                        debug_assert_eq!(got, levels, "depth + levels <= N implies full batches")
                    }
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
        }
        if let Some(e) = failed {
            self.scratch = scratch;
            return Err(TopKError::SourceFailed(e));
        }
        for level in 0..levels {
            for (i, buf) in scratch.iter().enumerate() {
                let entry = buf[level];
                let slot = self.slab.slot(entry.object);
                if self.slab.observe(slot, i, self.depth + level, entry.grade) {
                    self.matched.push(entry.object);
                }
            }
        }
        self.depth += levels;
        self.scratch = scratch;
        Ok(())
    }

    /// Completes the grade vectors of the given objects by random access
    /// ("if x ∈ X^j_T then μ_Aj(x) has already been determined, so random
    /// access is not needed"). Objects never seen before get fresh entries.
    ///
    /// Completion is batched per list through
    /// [`GradedSource::random_batch`]: one call per list carrying every
    /// object that list is missing, so block-backed sources decode each
    /// block once. Exactly one random access per missing `(object, list)`
    /// pair is billed — the same count the per-object loop would produce.
    pub fn complete_grades(
        &mut self,
        objects: impl IntoIterator<Item = ObjectId>,
    ) -> Result<(), TopKError> {
        self.pending.clear();
        for object in objects {
            let slot = self.slab.slot(object);
            if !self.slab.complete(slot) {
                self.pending.push(slot);
            }
        }
        // Dedupe repeated inputs: the per-object loop would skip a repeat
        // (its grades are already present); billing must match.
        self.pending.sort_unstable();
        self.pending.dedup();
        let start = std::time::Instant::now();
        let result = self.complete_pending();
        self.profile.random_ns += elapsed_ns(start);
        result
    }

    /// Completes every slot from `from_slot` on — the session high-water
    /// path: slots below the mark were completed by an earlier call and
    /// complete vectors stay complete, so only the tail needs work.
    fn complete_slots_from(&mut self, from_slot: usize) -> Result<(), TopKError> {
        self.pending.clear();
        for slot in from_slot as u32..self.slab.len() as u32 {
            if !self.slab.complete(slot) {
                self.pending.push(slot);
            }
        }
        let start = std::time::Instant::now();
        let result = self.complete_pending();
        self.profile.random_ns += elapsed_ns(start);
        result
    }

    /// Batched completion of `self.pending` (distinct, incomplete slots):
    /// one `random_batch` per list over the objects that list is missing.
    ///
    /// An error (or an expired deadline, checked between per-list rounds)
    /// leaves every already-answered grade in place: retrying re-probes
    /// only the still-missing `(object, list)` pairs, so nothing is billed
    /// twice on resume.
    fn complete_pending(&mut self) -> Result<(), TopKError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        for i in 0..self.sources.len() {
            self.check_deadline()?;
            let Engine {
                sources,
                slab,
                pending,
                probe_slots,
                probes,
                probe_grades,
                profile,
                ..
            } = self;
            let source = &sources[i];
            probe_slots.clear();
            probes.clear();
            for &slot in pending.iter() {
                if !slab.has_grade(slot, i) {
                    probe_slots.push(slot);
                    probes.push(slab.id(slot));
                }
            }
            if probes.is_empty() {
                continue;
            }
            profile.random_batches += 1;
            profile.random_probes += probes.len() as u64;
            probe_grades.clear();
            source
                .try_random_batch(probes, probe_grades)
                .map_err(TopKError::SourceFailed)?;
            debug_assert_eq!(probe_grades.len(), probes.len());
            for (&slot, grade) in probe_slots.iter().zip(probe_grades.iter()) {
                // The paper's model grades every object in every list
                // (possibly zero); a miss — e.g. a degraded sharded source
                // that lost the object's shard — is graded zero rather than
                // poisoning the whole query.
                let grade = grade.unwrap_or(Grade::ZERO);
                slab.set_grade(slot, i, grade);
            }
        }
        Ok(())
    }

    /// The complete grade vector of an object as a borrowed slice — the
    /// zero-copy scoring path. `None` until every grade is known.
    pub fn grade_slice(&self, object: ObjectId) -> Option<&[Grade]> {
        self.slab
            .slot_of(object)
            .and_then(|slot| self.slab.grade_slice(slot))
    }

    /// The full grade vector of an object, if complete. Allocates; prefer
    /// [`Engine::grade_slice`] on hot paths.
    pub fn grade_vector(&self, object: ObjectId) -> Option<Vec<Grade>> {
        self.grade_slice(object).map(<[Grade]>::to_vec)
    }

    /// The overall grade of an object under `agg`, if its vector is
    /// complete. Scores straight from the slab slice — no clone.
    pub fn overall<A: Aggregation>(&self, object: ObjectId, agg: &A) -> Option<Grade> {
        self.grade_slice(object).map(|grades| agg.combine(grades))
    }

    /// Each seen object with the best grade any list has shown for it —
    /// algorithm B₀'s scoring rule (no random access involved). First-seen
    /// order.
    pub fn best_seen(&self) -> impl Iterator<Item = (ObjectId, Grade)> + '_ {
        (0..self.slab.len() as u32)
            .map(move |slot| (self.slab.id(slot), self.slab.best_grade(slot)))
    }
}

/// A growable slot-indexed bitvec: the sessions' returned-set, replacing a
/// per-page-hashed `HashSet<ObjectId>`.
#[derive(Debug, Default)]
struct SlotSet {
    words: Vec<u64>,
}

impl SlotSet {
    fn contains(&self, slot: u32) -> bool {
        self.words
            .get(slot as usize / 64)
            .is_some_and(|w| w & (1 << (slot % 64)) != 0)
    }

    fn insert(&mut self, slot: u32) {
        let word = slot as usize / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << (slot % 64);
    }
}

/// A resumable top-k session over a monotone aggregation: algorithm A₀
/// kept alive between batches, implementing Section 4's "continue where we
/// left off". Grades already fetched (by either access kind) are never
/// re-fetched, so the cumulative *sorted* cost of paging equals one A₀
/// evaluation at the cumulative `k`.
pub struct EngineSession<S, A> {
    engine: Engine<S>,
    agg: A,
    returned: SlotSet,
    /// Slots below this mark were completed — and scored — by an earlier
    /// page; each page only completes, probes for, and scores the slots
    /// discovered since.
    completed_slots: usize,
    /// `scores[slot]` = the overall grade under `agg`, computed exactly
    /// once when the slot was completed (complete grade vectors never
    /// change, so neither can the score). Selection re-reads this array;
    /// it never re-runs the aggregation.
    scores: Vec<Grade>,
    /// Working buffer lent to [`Aggregation::combine_reusing`].
    scratch: Vec<Grade>,
    cumulative: usize,
    /// The overall grade of the worst answer handed out so far (the k-th
    /// score frontier at the cumulative `k`), once a non-empty page exists.
    frontier: Option<Grade>,
    /// `(cumulative k, frontier)` after each non-empty page — the
    /// frontier's progression, one entry per page, for EXPLAIN output.
    frontier_history: Vec<(usize, Grade)>,
}

impl<S, A> EngineSession<S, A>
where
    S: GradedSource,
    A: Aggregation,
{
    /// Opens a session over the given sources and monotone aggregation.
    pub fn new(sources: Vec<S>, agg: A) -> Result<Self, TopKError> {
        validate_inputs(&sources, 1)?;
        Ok(EngineSession {
            engine: Engine::open(sources)?,
            agg,
            returned: SlotSet::default(),
            completed_slots: 0,
            scores: Vec::new(),
            scratch: Vec::new(),
            cumulative: 0,
            frontier: None,
            frontier_history: Vec::new(),
        })
    }

    /// How many answers have been handed out so far.
    pub fn returned(&self) -> usize {
        self.cumulative
    }

    /// The session's current **k-th score frontier**: the overall grade of
    /// the worst answer handed out so far, or `None` before the first
    /// non-empty page. Pages are selected best-first, so this value only
    /// falls as the session advances.
    ///
    /// Use it as the advisory stop-threshold hint for auxiliary bounded
    /// scans ([`SortedCursor::set_bound`](crate::access::SortedCursor)):
    /// under a monotone aggregation no unseen object scoring above the
    /// frontier can lie entirely below it in any list, so a source is free
    /// to stop streaming — and a v2 segment to skip whole blocks — once
    /// its grades fall under this value. Correctness never depends on the
    /// hint: it is permission to stop early, not a filter.
    pub fn frontier(&self) -> Option<Grade> {
        self.frontier
    }

    /// The frontier's progression: `(cumulative k, k-th score)` after each
    /// non-empty page, oldest first. One entry per page — kept for EXPLAIN.
    pub fn frontier_history(&self) -> &[(usize, Grade)] {
        &self.frontier_history
    }

    /// The underlying engine (e.g. for reading metered sources).
    pub fn engine(&self) -> &Engine<S> {
        &self.engine
    }

    /// The session's sources.
    pub fn sources(&self) -> &[S] {
        self.engine.sources()
    }

    /// Sets (or clears) a cooperative deadline on the underlying engine —
    /// see [`Engine::set_deadline`]. A page that fails with
    /// [`TopKError::DeadlineExceeded`] leaves the session resumable:
    /// extend (or clear) the deadline and call
    /// [`next_batch`](EngineSession::next_batch) again to get the identical
    /// page with no access re-billed.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.engine.set_deadline(deadline);
    }

    /// Returns the next `k` best answers (fewer if the database is
    /// exhausted), continuing where the previous batch left off.
    pub fn next_batch(&mut self, k: usize) -> Result<TopK, TopKError> {
        if k == 0 {
            return Err(TopKError::ZeroK);
        }
        let target = (self.cumulative + k).min(self.engine.n());
        if target == self.cumulative {
            return Ok(TopK::from_entries(Vec::new()));
        }

        // Resume the sorted phase until the *cumulative* match target.
        self.engine.advance_until_matched(target)?;

        // Complete — and score — slots discovered since the last page
        // only: everything below the high-water mark is already complete
        // with a cached score, so no access is repeated and no
        // aggregation is re-run.
        self.engine.complete_slots_from(self.completed_slots)?;
        for slot in self.completed_slots as u32..self.engine.slab.len() as u32 {
            let grades = self
                .engine
                .slab
                .grade_slice(slot)
                .expect("grades completed above");
            self.scores
                .push(self.agg.combine_reusing(grades, &mut self.scratch));
        }
        self.completed_slots = self.engine.slab.len();

        // The next `target - cumulative` best among objects not yet
        // returned. (Filtering *before* selection keeps the batch size
        // exact even when fresh objects tie an already-returned one at the
        // cut grade — selecting top-`target` first and subtracting could
        // let a tie displace a returned object and hand out extra entries.)
        let engine = &self.engine;
        let returned = &self.returned;
        let scores = &self.scores;
        let fresh = TopK::select(
            (0..engine.slab.len() as u32)
                .filter(|&slot| !returned.contains(slot))
                .map(|slot| (engine.slab.id(slot), scores[slot as usize])),
            target - self.cumulative,
        );
        for e in fresh.entries() {
            let slot = self
                .engine
                .slab
                .slot_of(e.object)
                .expect("selected objects are seen");
            self.returned.insert(slot);
        }
        if let Some(last) = fresh.entries().last() {
            // Pages are handed out best-first, so the latest page's worst
            // grade is the cumulative k-th score.
            self.frontier = Some(last.grade);
            self.frontier_history.push((target, last.grade));
        }
        self.cumulative = target;
        Ok(fresh)
    }
}

/// A resumable session for the max-disjunction algorithm B₀ (Theorem 4.5):
/// paging deepens the per-list prefixes to the cumulative `k`, so the total
/// cost of paging is exactly `m · Σkᵢ` sorted accesses — identical to one
/// B₀ run at the cumulative `k` — with no random access at all.
pub struct B0Session<S> {
    engine: Engine<S>,
    returned: SlotSet,
    cumulative: usize,
    /// The worst grade handed out so far — see [`EngineSession::frontier`].
    frontier: Option<Grade>,
    /// `(cumulative k, frontier)` per non-empty page — see
    /// [`EngineSession::frontier_history`].
    frontier_history: Vec<(usize, Grade)>,
}

impl<S: GradedSource> B0Session<S> {
    /// Opens a session over the given sources (aggregation fixed to max).
    pub fn new(sources: Vec<S>) -> Result<Self, TopKError> {
        validate_inputs(&sources, 1)?;
        Ok(B0Session {
            engine: Engine::open(sources)?,
            returned: SlotSet::default(),
            cumulative: 0,
            frontier: None,
            frontier_history: Vec::new(),
        })
    }

    /// How many answers have been handed out so far.
    pub fn returned(&self) -> usize {
        self.cumulative
    }

    /// The worst grade handed out so far — the session's k-th score
    /// frontier, usable as an advisory cursor bound exactly as described
    /// on [`EngineSession::frontier`]. `None` before the first non-empty
    /// page.
    pub fn frontier(&self) -> Option<Grade> {
        self.frontier
    }

    /// The frontier's progression, one entry per non-empty page — see
    /// [`EngineSession::frontier_history`].
    pub fn frontier_history(&self) -> &[(usize, Grade)] {
        &self.frontier_history
    }

    /// The underlying engine (e.g. for reading its [`EngineProfile`]).
    pub fn engine(&self) -> &Engine<S> {
        &self.engine
    }

    /// The session's sources.
    pub fn sources(&self) -> &[S] {
        self.engine.sources()
    }

    /// Sets (or clears) a cooperative deadline on the underlying engine —
    /// same resumable semantics as [`EngineSession::set_deadline`].
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.engine.set_deadline(deadline);
    }

    /// Returns the next `k` best answers under max (fewer if the database
    /// is exhausted).
    pub fn next_batch(&mut self, k: usize) -> Result<TopK, TopKError> {
        if k == 0 {
            return Err(TopKError::ZeroK);
        }
        let target = (self.cumulative + k).min(self.engine.n());
        if target == self.cumulative {
            return Ok(TopK::from_entries(Vec::new()));
        }
        self.engine.advance_to_depth(target)?;
        let engine = &self.engine;
        let returned = &self.returned;
        let fresh = TopK::select(
            (0..engine.slab.len() as u32)
                .filter(|&slot| !returned.contains(slot))
                .map(|slot| (engine.slab.id(slot), engine.slab.best_grade(slot))),
            target - self.cumulative,
        );
        for e in fresh.entries() {
            let slot = self
                .engine
                .slab
                .slot_of(e.object)
                .expect("selected objects are seen");
            self.returned.insert(slot);
        }
        if let Some(last) = fresh.entries().last() {
            self.frontier = Some(last.grade);
            self.frontier_history.push((target, last.grade));
        }
        self.cumulative = target;
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{counted, total_stats, MemorySource};
    use garlic_agg::iterated::min_agg;
    use std::collections::{HashMap, HashSet};

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    /// Two 4-object lists with opposite orders.
    fn sources() -> Vec<MemorySource> {
        vec![
            MemorySource::from_grades(&[g(1.0), g(0.8), g(0.6), g(0.4)]),
            MemorySource::from_grades(&[g(0.3), g(0.5), g(0.7), g(0.9)]),
        ]
    }

    #[test]
    fn advance_finds_first_match() {
        let mut engine = Engine::open(sources()).unwrap();
        engine.advance_until_matched(1).unwrap();
        // List 0 order: 0,1,2,3. List 1 order: 3,2,1,0.
        // Depth 1: {0},{3}. Depth 2: {0,1},{3,2}: no match yet.
        // Depth 3: {0,1,2},{3,2,1}: objects 1 and 2 match.
        assert_eq!(engine.depth(), 3);
        assert_eq!(engine.matched().len(), 2);
    }

    #[test]
    fn advance_is_idempotent_and_resumable() {
        let mut engine = Engine::open(sources()).unwrap();
        engine.advance_until_matched(1).unwrap();
        let depth = engine.depth();
        engine.advance_until_matched(1).unwrap();
        assert_eq!(engine.depth(), depth); // no extra work
        engine.advance_until_matched(4).unwrap();
        assert_eq!(engine.depth(), 4);
        assert_eq!(engine.matched().len(), 4);
    }

    #[test]
    fn batched_streaming_reads_no_more_than_positional_round_robin() {
        // The positional loop stops at the first depth T with >= k matches;
        // the engine's batched loop must bill the same m*T entries.
        let cs = counted(sources());
        let mut engine = Engine::open(cs).unwrap();
        engine.advance_until_matched(1).unwrap();
        let stats = total_stats(engine.sources());
        assert_eq!(stats.sorted, 2 * 3); // T = 3 from the hand example
        assert_eq!(stats.random, 0);
    }

    #[test]
    fn complete_grades_fills_missing_slots() {
        let mut engine = Engine::open(sources()).unwrap();
        engine.advance_until_matched(1).unwrap();
        // Object 0 was seen only in list 0 (rank 0); complete it.
        assert!(engine.grade_vector(ObjectId(0)).is_none());
        engine.complete_grades([ObjectId(0)]).unwrap();
        assert_eq!(
            engine.overall(ObjectId(0), &min_agg()),
            Some(g(0.3)) // min(1.0, 0.3)
        );
        assert_eq!(engine.grade_slice(ObjectId(0)), Some(&[g(1.0), g(0.3)][..]));
    }

    #[test]
    fn duplicate_completion_requests_bill_once() {
        let cs = counted(sources());
        let mut engine = Engine::open(cs).unwrap();
        engine.advance_until_matched(1).unwrap();
        // Object 0: seen in list 0 only, so completion needs 1 random
        // access — and repeating it in one call (or across calls) adds none.
        engine
            .complete_grades([ObjectId(0), ObjectId(0), ObjectId(0)])
            .unwrap();
        engine.complete_grades([ObjectId(0)]).unwrap();
        assert_eq!(total_stats(engine.sources()).random, 1);
    }

    #[test]
    fn overall_is_none_until_complete() {
        let mut engine = Engine::open(sources()).unwrap();
        engine.advance_until_matched(1).unwrap();
        assert_eq!(engine.overall(ObjectId(0), &min_agg()), None);
        assert_eq!(engine.overall(ObjectId(99), &min_agg()), None);
    }

    #[test]
    fn advance_to_depth_streams_prefixes() {
        let cs = counted(sources());
        let mut engine = Engine::open(cs).unwrap();
        engine.advance_to_depth(2).unwrap();
        assert_eq!(total_stats(engine.sources()).sorted, 2 * 2);
        let best: HashMap<ObjectId, Grade> = engine.best_seen().collect();
        assert_eq!(best[&ObjectId(0)], g(1.0));
        assert_eq!(best[&ObjectId(3)], g(0.9));
        // Clamped at N, idempotent past it.
        engine.advance_to_depth(99).unwrap();
        assert_eq!(engine.depth(), 4);
        assert_eq!(total_stats(engine.sources()).sorted, 2 * 4);
    }

    #[test]
    fn open_rejects_bad_sources() {
        assert!(matches!(
            Engine::<MemorySource>::open(vec![]),
            Err(TopKError::NoSources)
        ));
        let mismatched = vec![
            MemorySource::from_grades(&[g(0.1), g(0.2)]),
            MemorySource::from_grades(&[g(0.1)]),
        ];
        assert!(matches!(
            Engine::open(mismatched),
            Err(TopKError::MismatchedSources { .. })
        ));
    }

    #[test]
    fn slab_masks_work_past_one_word() {
        // 67 lists forces a 2-word mask per slot; the complete()/matched
        // logic must handle the partial last word.
        let m = 67;
        let lists: Vec<MemorySource> = (0..m)
            .map(|i| {
                MemorySource::from_grades(&[
                    Grade::clamped(0.1 + (i as f64 % 7.0) / 10.0),
                    Grade::clamped(0.9 - (i as f64 % 5.0) / 10.0),
                ])
            })
            .collect();
        let mut engine = Engine::open(lists).unwrap();
        engine.advance_until_matched(1).unwrap();
        assert!(!engine.matched().is_empty());
        let id = engine.matched()[0];
        let slice = engine.grade_slice(id).expect("matched objects complete");
        assert_eq!(slice.len(), m);
        engine.advance_to_depth(2).unwrap();
        assert_eq!(engine.matched().len(), 2);
    }

    #[test]
    fn session_pages_without_repeating_objects() {
        let agg = min_agg();
        let mut session = EngineSession::new(sources(), &agg).unwrap();
        let a = session.next_batch(2).unwrap();
        let b = session.next_batch(2).unwrap();
        assert_eq!(session.returned(), 4);
        let mut ids = a.objects();
        ids.extend(b.objects());
        let distinct: HashSet<_> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
        assert!(session.next_batch(1).unwrap().is_empty());
        assert!(session.next_batch(0).is_err());
    }

    #[test]
    fn session_frontier_is_the_cumulative_kth_score() {
        let agg = min_agg();
        let mut session = EngineSession::new(sources(), &agg).unwrap();
        assert_eq!(session.frontier(), None);
        let first = session.next_batch(2).unwrap();
        assert_eq!(session.frontier(), first.entries().last().map(|e| e.grade));
        let second = session.next_batch(2).unwrap();
        let cut = second.entries().last().map(|e| e.grade);
        assert_eq!(session.frontier(), cut);
        assert!(session.frontier() <= first.entries().last().map(|e| e.grade));
        // Exhausted pages are empty and leave the frontier in place.
        assert!(session.next_batch(1).unwrap().is_empty());
        assert_eq!(session.frontier(), cut);

        // The frontier is a valid advisory cursor bound: a bounded scan
        // emits an exact prefix of the unbounded stream and only withholds
        // entries strictly below the bound.
        let source = &session.sources()[0];
        let bound = session.frontier().unwrap();
        let full: Vec<GradedEntry> = source.open_sorted().collect();
        let hinted: Vec<GradedEntry> = source.open_sorted().with_bound(bound).collect();
        assert_eq!(full[..hinted.len()], hinted[..]);
        assert!(full[hinted.len()..].iter().all(|e| e.grade < bound));
    }

    #[test]
    fn b0_session_frontier_tracks_the_worst_returned_grade() {
        let mut session = B0Session::new(sources()).unwrap();
        assert_eq!(session.frontier(), None);
        let first = session.next_batch(1).unwrap();
        assert_eq!(session.frontier(), first.entries().last().map(|e| e.grade));
        let second = session.next_batch(2).unwrap();
        assert_eq!(session.frontier(), second.entries().last().map(|e| e.grade));
    }

    #[test]
    fn session_high_water_mark_never_repeats_random_accesses() {
        // Page through everything one answer at a time: every (object,
        // list) pair must be fetched at most once per access kind, so the
        // total is bounded by 2·m·N even with N pages.
        let cs = counted(sources());
        let mut session = EngineSession::new(cs, min_agg()).unwrap();
        for _ in 0..4 {
            session.next_batch(1).unwrap();
        }
        let stats = total_stats(session.sources());
        assert!(stats.unweighted() <= 2 * 2 * 4, "stats {stats:?}");
        assert_eq!(stats.sorted, 2 * 4);
    }

    #[test]
    fn parallel_fetch_rounds_match_sequential_results_and_counts() {
        // Deep enough that advance_to_depth pulls >= PARALLEL_LEVELS levels
        // per round, exercising the scoped-thread fetch path.
        let n = 2 * PARALLEL_LEVELS + 37;
        let list = |mult: usize| {
            let grades: Vec<Grade> = (0..n)
                .map(|i| Grade::clamped((i * mult % n) as f64 / n as f64))
                .collect();
            MemorySource::from_grades(&grades)
        };
        let cs = counted(vec![list(7919), list(104_729), list(1)]);
        let mut engine = Engine::open(cs).unwrap().with_parallel_fetch(true);
        engine.advance_to_depth(n).unwrap();
        assert_eq!(engine.depth(), n);
        assert_eq!(engine.matched().len(), n);
        // Exactly m*N entries billed, same as any sequential full scan.
        let stats = total_stats(engine.sources());
        assert_eq!(stats.sorted, 3 * n as u64);
        assert_eq!(stats.random, 0);
        // Spot-check bookkeeping against direct positional access.
        for id in [0u64, 1, (n as u64) / 2, (n as u64) - 1] {
            let vec = engine.grade_vector(ObjectId(id)).expect("fully scanned");
            for (i, g) in vec.iter().enumerate() {
                assert_eq!(
                    Some(*g),
                    engine.sources()[i].inner().random_access(ObjectId(id))
                );
            }
        }
        // And against the default sequential fetch: identical match order
        // and identical per-source counts.
        let mut sequential =
            Engine::open(counted(vec![list(7919), list(104_729), list(1)])).unwrap();
        sequential.advance_to_depth(n).unwrap();
        assert_eq!(engine.matched(), sequential.matched());
        for (p, s) in engine.sources().iter().zip(sequential.sources()) {
            assert_eq!(p.stats(), s.stats());
        }
    }

    #[test]
    fn b0_session_paging_costs_m_times_cumulative_k() {
        let paged = counted(sources());
        let mut session = B0Session::new(paged).unwrap();
        let first = session.next_batch(1).unwrap();
        let second = session.next_batch(2).unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(second.len(), 2);
        let stats = total_stats(session.sources());
        assert_eq!(stats.sorted, 2 * 3);
        assert_eq!(stats.random, 0);

        // Grade-equivalent to one B0 run at the cumulative k.
        let oneshot = super::super::b0_max::b0_max_topk(&sources(), 3).unwrap();
        let mut paged_grades = first.grades();
        paged_grades.extend(second.grades());
        assert_eq!(paged_grades, oneshot.grades());
    }
}
