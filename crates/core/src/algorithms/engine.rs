//! The unified top-k execution engine.
//!
//! Every A₀-family algorithm in this crate shares the same three moving
//! parts (Section 4):
//!
//! 1. a **round-robin sorted phase** that streams all `m` lists in parallel
//!    at a common depth `T`;
//! 2. **candidate bookkeeping** — which grades and ranks each object has
//!    revealed so far (the [`Partial`] map);
//! 3. a **random-access completion** step that fills the missing grades of
//!    a chosen candidate set.
//!
//! [`Engine`] packages those parts once, on top of the *batched* cursor
//! layer of [`crate::access`]: sorted streaming goes through
//! [`GradedSource::sorted_batch`] — a sequential walk on native sources —
//! instead of re-resolving every rank through a virtual
//! `sorted_access(rank)` call. The algorithm modules (`fa`, `fa_min`,
//! `b0_max`, `filtered`, `naive`, `resume`) are thin, paper-annotated
//! shells over this engine.
//!
//! # Exact Section 5 cost preservation
//!
//! Batching is an access-plan optimisation, not a semantic change: the
//! engine consumes *exactly* the entries the paper's positional round-robin
//! loop would, in the same interleaved order, so measured
//! [`AccessStats`](crate::cost::AccessStats) are identical entry-for-entry
//! to the seed positional implementations (property-tested in
//! `tests/engine_equivalence.rs`). The trick is a pair of lower bounds on
//! the stop depth `T` of the "wait until k matches" phase, which let the
//! engine pull large batches without overshooting:
//!
//! * the matched set at depth `T` is contained in every prefix `X^i_T`, so
//!   `T ≥ k` always;
//! * one depth step reveals `m` new `(list, object)` pairs and an object
//!   matches only when its *last* pair arrives, so at most `m` objects can
//!   match per step: from a state with `c` matches at depth `d`,
//!   `T ≥ d + ⌈(k − c)/m⌉`.
//!
//! Within the region these bounds cover, batches are as large as the bound
//! allows; past it the engine degrades gracefully to single-level rounds,
//! never reading an entry the positional algorithm would not.
//!
//! # Sessions
//!
//! [`EngineSession`] keeps an engine alive between top-k requests: asking
//! for the next `k` answers resumes the sorted phase at the stored depth
//! ("continue where we left off", Section 4), so paging through a ranked
//! result set costs the same sorted accesses as one evaluation at the
//! cumulative `k`. [`B0Session`] is the analogous session for the
//! max-disjunction algorithm B₀, whose paging cost is `m·k` cumulative.

use std::collections::{HashMap, HashSet};

use garlic_agg::{Aggregation, Grade};

use crate::access::GradedSource;
use crate::graded_set::GradedEntry;
use crate::object::ObjectId;
use crate::topk::{validate_inputs, TopK, TopKError};

/// Upper bound on levels fetched per batched round, to bound scratch-buffer
/// memory (`m · CHUNK` entries) on full-database streams.
const CHUNK: usize = 4096;

/// Minimum levels per round for the opt-in *parallel* per-source fetch
/// ([`Engine::with_parallel_fetch`]) to pay for its thread spawns: below
/// this the sequential walk always wins. Sources are `Sync` (a
/// [`GradedSource`] bound), and the entries are folded into the
/// bookkeeping only after all fetches complete, in the exact positional
/// round-robin order — so results, tie order, and per-source access counts
/// are bit-identical to the sequential fetch.
const PARALLEL_LEVELS: usize = 2048;

/// What the sorted phase knows about one object: the grade and rank
/// observed in each list (if seen there), plus how many lists have shown it.
#[derive(Debug, Clone)]
pub(crate) struct Partial {
    /// `grades[i]` is `Some` once list `i` has revealed this object — via
    /// either access kind.
    pub grades: Vec<Option<Grade>>,
    /// `ranks[i]` is `Some(r)` iff the object appeared at rank `r` under
    /// *sorted* access to list `i` (random access reveals no rank).
    pub ranks: Vec<Option<usize>>,
    /// Number of lists that have shown the object under sorted access.
    pub seen_sorted: usize,
}

impl Partial {
    fn new(m: usize) -> Self {
        Partial {
            grades: vec![None; m],
            ranks: vec![None; m],
            seen_sorted: 0,
        }
    }

    /// All grades known (random-access phase complete for this object).
    pub fn complete(&self) -> bool {
        self.grades.iter().all(Option::is_some)
    }

    /// The full grade vector; panics if incomplete.
    pub fn grade_vec(&self) -> Vec<Grade> {
        self.grades
            .iter()
            .map(|g| g.expect("grade vector incomplete"))
            .collect()
    }
}

/// The unified execution engine: owned sources, batched round-robin sorted
/// streaming at a uniform depth (the paper's `T`), candidate bookkeeping,
/// and random-access completion. See the module docs.
#[derive(Debug)]
pub struct Engine<S> {
    sources: Vec<S>,
    n: usize,
    partial: HashMap<ObjectId, Partial>,
    matched: Vec<ObjectId>,
    depth: usize,
    /// One reusable fetch buffer per list (scratch reuse across rounds).
    scratch: Vec<Vec<GradedEntry>>,
    /// Opt-in parallel per-source fetch (see [`Engine::with_parallel_fetch`]).
    parallel_fetch: bool,
}

impl<S: GradedSource> Engine<S> {
    /// Opens an engine over the given sources (each conceptually holding a
    /// sorted cursor at rank 0). Fails if there are no sources or they
    /// disagree on the database size.
    pub fn open(sources: Vec<S>) -> Result<Self, TopKError> {
        if sources.is_empty() {
            return Err(TopKError::NoSources);
        }
        let n = sources[0].len();
        if sources.iter().any(|s| s.len() != n) {
            return Err(TopKError::MismatchedSources {
                sizes: sources.iter().map(|s| s.len()).collect(),
            });
        }
        let m = sources.len();
        Ok(Engine {
            sources,
            n,
            partial: HashMap::new(),
            matched: Vec::new(),
            depth: 0,
            scratch: vec![Vec::new(); m],
            parallel_fetch: false,
        })
    }

    /// Opts deep fetch rounds into a *parallel* per-source sorted phase:
    /// when a round pulls at least [`PARALLEL_LEVELS`] levels from `m >= 2`
    /// lists, each list's batch is read on its own scoped thread.
    ///
    /// Off by default: for materialised in-memory sources a batch read is a
    /// small slice copy, cheaper than the thread spawns — and a concurrent
    /// service already parallelises *across* queries, so nesting threads
    /// inside each engine would oversubscribe the machine. Enable it when
    /// individual batch reads are genuinely expensive (sources that compute
    /// grades during the read, decompress, or talk to remote subsystems).
    /// Either way the results, tie order, and per-source access counts are
    /// bit-identical — batching and threading are access-plan choices, not
    /// semantic ones (pinned by this module's tests).
    pub fn with_parallel_fetch(mut self, enabled: bool) -> Self {
        self.parallel_fetch = enabled;
        self
    }

    /// The sources the engine streams from.
    pub fn sources(&self) -> &[S] {
        &self.sources
    }

    /// Unwraps the engine, returning its sources.
    pub fn into_sources(self) -> Vec<S> {
        self.sources
    }

    /// Number of lists, `m`.
    pub fn m(&self) -> usize {
        self.sources.len()
    }

    /// Database size, `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Common depth already consumed from every list (the paper's `T` once
    /// the sorted phase stops).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Objects seen in *every* list under sorted access — the paper's
    /// matched set `L`, in match order.
    pub fn matched(&self) -> &[ObjectId] {
        &self.matched
    }

    /// Everything the sorted phase has seen so far.
    pub(crate) fn partials(&self) -> &HashMap<ObjectId, Partial> {
        &self.partial
    }

    /// Every object seen so far, via either access kind.
    pub fn seen(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.partial.keys().copied()
    }

    /// Runs the sorted phase round-robin until at least `k` objects have
    /// been seen in every list ("wait until there are at least k matches"),
    /// or the lists are exhausted. Idempotent for already-achieved targets,
    /// so sessions can call it repeatedly with a growing `k`.
    ///
    /// Streaming is batched (see the module docs for why the batch sizes
    /// cannot overshoot the positional stop depth).
    pub fn advance_until_matched(&mut self, k: usize) {
        while self.matched.len() < k && self.depth < self.n {
            // T >= k, and at most m objects can complete per level.
            let by_depth = k.saturating_sub(self.depth);
            let by_matches = (k - self.matched.len()).div_ceil(self.m());
            let step = by_depth
                .max(by_matches)
                .max(1)
                .min(self.n - self.depth)
                .min(CHUNK);
            self.pull_levels(step);
        }
    }

    /// Streams every list down to `target` (clamped to `N`) regardless of
    /// matches — the full-scan primitive behind B₀ (`target = k`) and the
    /// naive baseline (`target = N`).
    pub fn advance_to_depth(&mut self, target: usize) {
        let target = target.min(self.n);
        while self.depth < target {
            let step = (target - self.depth).min(CHUNK);
            self.pull_levels(step);
        }
    }

    /// Fetches `levels` more entries from every list (one batched cursor
    /// read per list) and folds them into the bookkeeping in the exact
    /// interleaved order of the positional round-robin loop, so match order
    /// — and therefore every downstream tie-break — is preserved.
    fn pull_levels(&mut self, levels: usize) {
        debug_assert!(self.depth + levels <= self.n);
        let m = self.sources.len();
        if levels == 1 {
            // The one-level tail (where the stop-depth bounds no longer
            // allow batching): a batch of one is exactly one positional
            // access — skip the buffer machinery.
            let Engine {
                sources,
                partial,
                matched,
                depth,
                ..
            } = self;
            for (i, source) in sources.iter().enumerate() {
                let entry = source
                    .sorted_access(*depth)
                    .expect("depth < N implies a sorted entry");
                observe(partial, matched, m, i, *depth, entry);
            }
            self.depth += 1;
            return;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let depth = self.depth;
        if self.parallel_fetch && levels >= PARALLEL_LEVELS && m >= 2 {
            // Parallel per-source fetch: one scoped thread per list, each
            // writing its own scratch buffer. See PARALLEL_LEVELS for why
            // this cannot change results or access counts.
            std::thread::scope(|scope| {
                for (buf, source) in scratch.iter_mut().zip(&self.sources) {
                    scope.spawn(move || {
                        buf.clear();
                        let got = source.sorted_batch(depth, levels, buf);
                        debug_assert_eq!(got, levels, "depth + levels <= N implies full batches");
                    });
                }
            });
        } else {
            for (buf, source) in scratch.iter_mut().zip(&self.sources) {
                buf.clear();
                let got = source.sorted_batch(depth, levels, buf);
                debug_assert_eq!(got, levels, "depth + levels <= N implies full batches");
            }
        }
        for level in 0..levels {
            for (i, buf) in scratch.iter().enumerate() {
                observe(
                    &mut self.partial,
                    &mut self.matched,
                    m,
                    i,
                    self.depth + level,
                    buf[level],
                );
            }
        }
        self.depth += levels;
        self.scratch = scratch;
    }

    /// Completes the grade vectors of the given objects by random access
    /// ("if x ∈ X^j_T then μ_Aj(x) has already been determined, so random
    /// access is not needed"). Objects never seen before get fresh entries.
    pub fn complete_grades(&mut self, objects: impl IntoIterator<Item = ObjectId>) {
        let m = self.sources.len();
        for object in objects {
            let p = self
                .partial
                .entry(object)
                .or_insert_with(|| Partial::new(m));
            for (i, source) in self.sources.iter().enumerate() {
                if p.grades[i].is_none() {
                    let grade = source
                        .random_access(object)
                        .expect("every source grades every object");
                    p.grades[i] = Some(grade);
                }
            }
        }
    }

    /// The full grade vector of an object, if complete.
    pub fn grade_vector(&self, object: ObjectId) -> Option<Vec<Grade>> {
        let p = self.partial.get(&object)?;
        if !p.complete() {
            return None;
        }
        Some(p.grade_vec())
    }

    /// The overall grade of an object under `agg`, if its vector is
    /// complete.
    pub fn overall<A: Aggregation>(&self, object: ObjectId, agg: &A) -> Option<Grade> {
        let p = self.partial.get(&object)?;
        if !p.complete() {
            return None;
        }
        Some(agg.combine(&p.grade_vec()))
    }

    /// Each seen object with the best grade any list has shown for it —
    /// algorithm B₀'s scoring rule (no random access involved).
    pub fn best_seen(&self) -> impl Iterator<Item = (ObjectId, Grade)> + '_ {
        self.partial.iter().map(|(&id, p)| {
            let best = p
                .grades
                .iter()
                .flatten()
                .max()
                .copied()
                .expect("seen objects have at least one grade");
            (id, best)
        })
    }
}

/// Folds one sorted observation into the candidate bookkeeping.
#[inline]
fn observe(
    partial: &mut HashMap<ObjectId, Partial>,
    matched: &mut Vec<ObjectId>,
    m: usize,
    list: usize,
    rank: usize,
    entry: GradedEntry,
) {
    let p = partial
        .entry(entry.object)
        .or_insert_with(|| Partial::new(m));
    debug_assert!(
        p.ranks[list].is_none(),
        "object {} shown twice by list {list}",
        entry.object
    );
    p.grades[list] = Some(entry.grade);
    p.ranks[list] = Some(rank);
    p.seen_sorted += 1;
    if p.seen_sorted == m {
        matched.push(entry.object);
    }
}

/// A resumable top-k session over a monotone aggregation: algorithm A₀
/// kept alive between batches, implementing Section 4's "continue where we
/// left off". Grades already fetched (by either access kind) are never
/// re-fetched, so the cumulative *sorted* cost of paging equals one A₀
/// evaluation at the cumulative `k`.
pub struct EngineSession<S, A> {
    engine: Engine<S>,
    agg: A,
    returned: HashSet<ObjectId>,
    cumulative: usize,
}

impl<S, A> EngineSession<S, A>
where
    S: GradedSource,
    A: Aggregation,
{
    /// Opens a session over the given sources and monotone aggregation.
    pub fn new(sources: Vec<S>, agg: A) -> Result<Self, TopKError> {
        validate_inputs(&sources, 1)?;
        Ok(EngineSession {
            engine: Engine::open(sources)?,
            agg,
            returned: HashSet::new(),
            cumulative: 0,
        })
    }

    /// How many answers have been handed out so far.
    pub fn returned(&self) -> usize {
        self.cumulative
    }

    /// The underlying engine (e.g. for reading metered sources).
    pub fn engine(&self) -> &Engine<S> {
        &self.engine
    }

    /// The session's sources.
    pub fn sources(&self) -> &[S] {
        self.engine.sources()
    }

    /// Returns the next `k` best answers (fewer if the database is
    /// exhausted), continuing where the previous batch left off.
    pub fn next_batch(&mut self, k: usize) -> Result<TopK, TopKError> {
        if k == 0 {
            return Err(TopKError::ZeroK);
        }
        let target = (self.cumulative + k).min(self.engine.n());
        if target == self.cumulative {
            return Ok(TopK::from_entries(Vec::new()));
        }

        // Resume the sorted phase until the *cumulative* match target.
        self.engine.advance_until_matched(target);

        // Complete grades for everything seen (grades already known are
        // skipped inside complete_grades, so no access is repeated).
        let seen: Vec<ObjectId> = self.engine.seen().collect();
        self.engine.complete_grades(seen.iter().copied());

        // The next `target - cumulative` best among objects not yet
        // returned. (Filtering *before* selection keeps the batch size
        // exact even when fresh objects tie an already-returned one at the
        // cut grade — selecting top-`target` first and subtracting could
        // let a tie displace a returned object and hand out extra entries.)
        let fresh = TopK::select(
            seen.into_iter()
                .filter(|id| !self.returned.contains(id))
                .map(|id| {
                    let grade = self
                        .engine
                        .overall(id, &self.agg)
                        .expect("grades completed above");
                    (id, grade)
                }),
            target - self.cumulative,
        );
        for e in fresh.entries() {
            self.returned.insert(e.object);
        }
        self.cumulative = target;
        Ok(fresh)
    }
}

/// A resumable session for the max-disjunction algorithm B₀ (Theorem 4.5):
/// paging deepens the per-list prefixes to the cumulative `k`, so the total
/// cost of paging is exactly `m · Σkᵢ` sorted accesses — identical to one
/// B₀ run at the cumulative `k` — with no random access at all.
pub struct B0Session<S> {
    engine: Engine<S>,
    returned: HashSet<ObjectId>,
    cumulative: usize,
}

impl<S: GradedSource> B0Session<S> {
    /// Opens a session over the given sources (aggregation fixed to max).
    pub fn new(sources: Vec<S>) -> Result<Self, TopKError> {
        validate_inputs(&sources, 1)?;
        Ok(B0Session {
            engine: Engine::open(sources)?,
            returned: HashSet::new(),
            cumulative: 0,
        })
    }

    /// How many answers have been handed out so far.
    pub fn returned(&self) -> usize {
        self.cumulative
    }

    /// The session's sources.
    pub fn sources(&self) -> &[S] {
        self.engine.sources()
    }

    /// Returns the next `k` best answers under max (fewer if the database
    /// is exhausted).
    pub fn next_batch(&mut self, k: usize) -> Result<TopK, TopKError> {
        if k == 0 {
            return Err(TopKError::ZeroK);
        }
        let target = (self.cumulative + k).min(self.engine.n());
        if target == self.cumulative {
            return Ok(TopK::from_entries(Vec::new()));
        }
        self.engine.advance_to_depth(target);
        let fresh = TopK::select(
            self.engine
                .best_seen()
                .filter(|(id, _)| !self.returned.contains(id)),
            target - self.cumulative,
        );
        for e in fresh.entries() {
            self.returned.insert(e.object);
        }
        self.cumulative = target;
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{counted, total_stats, MemorySource};
    use garlic_agg::iterated::min_agg;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    /// Two 4-object lists with opposite orders.
    fn sources() -> Vec<MemorySource> {
        vec![
            MemorySource::from_grades(&[g(1.0), g(0.8), g(0.6), g(0.4)]),
            MemorySource::from_grades(&[g(0.3), g(0.5), g(0.7), g(0.9)]),
        ]
    }

    #[test]
    fn advance_finds_first_match() {
        let mut engine = Engine::open(sources()).unwrap();
        engine.advance_until_matched(1);
        // List 0 order: 0,1,2,3. List 1 order: 3,2,1,0.
        // Depth 1: {0},{3}. Depth 2: {0,1},{3,2}: no match yet.
        // Depth 3: {0,1,2},{3,2,1}: objects 1 and 2 match.
        assert_eq!(engine.depth(), 3);
        assert_eq!(engine.matched().len(), 2);
    }

    #[test]
    fn advance_is_idempotent_and_resumable() {
        let mut engine = Engine::open(sources()).unwrap();
        engine.advance_until_matched(1);
        let depth = engine.depth();
        engine.advance_until_matched(1);
        assert_eq!(engine.depth(), depth); // no extra work
        engine.advance_until_matched(4);
        assert_eq!(engine.depth(), 4);
        assert_eq!(engine.matched().len(), 4);
    }

    #[test]
    fn batched_streaming_reads_no_more_than_positional_round_robin() {
        // The positional loop stops at the first depth T with >= k matches;
        // the engine's batched loop must bill the same m*T entries.
        let cs = counted(sources());
        let mut engine = Engine::open(cs).unwrap();
        engine.advance_until_matched(1);
        let stats = total_stats(engine.sources());
        assert_eq!(stats.sorted, 2 * 3); // T = 3 from the hand example
        assert_eq!(stats.random, 0);
    }

    #[test]
    fn complete_grades_fills_missing_slots() {
        let mut engine = Engine::open(sources()).unwrap();
        engine.advance_until_matched(1);
        // Object 0 was seen only in list 0 (rank 0); complete it.
        assert!(engine.grade_vector(ObjectId(0)).is_none());
        engine.complete_grades([ObjectId(0)]);
        assert_eq!(
            engine.overall(ObjectId(0), &min_agg()),
            Some(g(0.3)) // min(1.0, 0.3)
        );
    }

    #[test]
    fn overall_is_none_until_complete() {
        let mut engine = Engine::open(sources()).unwrap();
        engine.advance_until_matched(1);
        assert_eq!(engine.overall(ObjectId(0), &min_agg()), None);
        assert_eq!(engine.overall(ObjectId(99), &min_agg()), None);
    }

    #[test]
    fn advance_to_depth_streams_prefixes() {
        let cs = counted(sources());
        let mut engine = Engine::open(cs).unwrap();
        engine.advance_to_depth(2);
        assert_eq!(total_stats(engine.sources()).sorted, 2 * 2);
        let best: HashMap<ObjectId, Grade> = engine.best_seen().collect();
        assert_eq!(best[&ObjectId(0)], g(1.0));
        assert_eq!(best[&ObjectId(3)], g(0.9));
        // Clamped at N, idempotent past it.
        engine.advance_to_depth(99);
        assert_eq!(engine.depth(), 4);
        assert_eq!(total_stats(engine.sources()).sorted, 2 * 4);
    }

    #[test]
    fn open_rejects_bad_sources() {
        assert!(matches!(
            Engine::<MemorySource>::open(vec![]),
            Err(TopKError::NoSources)
        ));
        let mismatched = vec![
            MemorySource::from_grades(&[g(0.1), g(0.2)]),
            MemorySource::from_grades(&[g(0.1)]),
        ];
        assert!(matches!(
            Engine::open(mismatched),
            Err(TopKError::MismatchedSources { .. })
        ));
    }

    #[test]
    fn session_pages_without_repeating_objects() {
        let agg = min_agg();
        let mut session = EngineSession::new(sources(), &agg).unwrap();
        let a = session.next_batch(2).unwrap();
        let b = session.next_batch(2).unwrap();
        assert_eq!(session.returned(), 4);
        let mut ids = a.objects();
        ids.extend(b.objects());
        let distinct: HashSet<_> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
        assert!(session.next_batch(1).unwrap().is_empty());
        assert!(session.next_batch(0).is_err());
    }

    #[test]
    fn parallel_fetch_rounds_match_sequential_results_and_counts() {
        // Deep enough that advance_to_depth pulls >= PARALLEL_LEVELS levels
        // per round, exercising the scoped-thread fetch path.
        let n = 2 * PARALLEL_LEVELS + 37;
        let list = |mult: usize| {
            let grades: Vec<Grade> = (0..n)
                .map(|i| Grade::clamped((i * mult % n) as f64 / n as f64))
                .collect();
            MemorySource::from_grades(&grades)
        };
        let cs = counted(vec![list(7919), list(104_729), list(1)]);
        let mut engine = Engine::open(cs).unwrap().with_parallel_fetch(true);
        engine.advance_to_depth(n);
        assert_eq!(engine.depth(), n);
        assert_eq!(engine.matched().len(), n);
        // Exactly m*N entries billed, same as any sequential full scan.
        let stats = total_stats(engine.sources());
        assert_eq!(stats.sorted, 3 * n as u64);
        assert_eq!(stats.random, 0);
        // Spot-check bookkeeping against direct positional access.
        for id in [0u64, 1, (n as u64) / 2, (n as u64) - 1] {
            let vec = engine.grade_vector(ObjectId(id)).expect("fully scanned");
            for (i, g) in vec.iter().enumerate() {
                assert_eq!(
                    Some(*g),
                    engine.sources()[i].inner().random_access(ObjectId(id))
                );
            }
        }
        // And against the default sequential fetch: identical match order
        // and identical per-source counts.
        let mut sequential =
            Engine::open(counted(vec![list(7919), list(104_729), list(1)])).unwrap();
        sequential.advance_to_depth(n);
        assert_eq!(engine.matched(), sequential.matched());
        for (p, s) in engine.sources().iter().zip(sequential.sources()) {
            assert_eq!(p.stats(), s.stats());
        }
    }

    #[test]
    fn b0_session_paging_costs_m_times_cumulative_k() {
        let paged = counted(sources());
        let mut session = B0Session::new(paged).unwrap();
        let first = session.next_batch(1).unwrap();
        let second = session.next_batch(2).unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(second.len(), 2);
        let stats = total_stats(session.sources());
        assert_eq!(stats.sorted, 2 * 3);
        assert_eq!(stats.random, 0);

        // Grade-equivalent to one B0 run at the cumulative k.
        let oneshot = super::super::b0_max::b0_max_topk(&sources(), 3).unwrap();
        let mut paged_grades = first.grades();
        paged_grades.extend(second.grades());
        assert_eq!(paged_grades, oneshot.grades());
    }
}
