//! The filtered ("Beatles") strategy from the opening of Section 4.
//!
//! For `(Artist = "Beatles") ∧ (AlbumColor = "red")` — one crisp, selective
//! conjunct and one fuzzy conjunct — "a good way to evaluate this query
//! would be first to determine all objects that satisfy the first conjunct
//! (call this set of objects S), and then to obtain grades ... (using random
//! access) for the second conjunct for all objects in S."
//!
//! This is correct whenever a grade of 0 in any conjunct forces the overall
//! grade to 0 (`Aggregation::zero_annihilates`) — true for every t-norm,
//! false for means. The middleware cost is `|S| + (m-1)·|S|`, independent of
//! how the other lists rank the rest of the database; experiment E13 finds
//! the selectivity crossover against A₀.
//!
//! The grade-completion step (random access for every match) runs on the
//! shared [`engine`](crate::algorithms::engine) over the graded conjuncts,
//! so its bookkeeping and metering are the same code path as A₀'s phase 2.
//! Note the whole ranking over `S` costs the same regardless of `k` (the
//! padding objects need no access at all), which is why the middleware can
//! page this strategy from one materialised session.

use garlic_agg::{Aggregation, Grade};

use crate::access::{GradedSource, SetAccess};
use crate::object::ObjectId;
use crate::topk::{TopK, TopKError};

use super::engine::Engine;

/// Evaluates a conjunction with one crisp conjunct via the filtered
/// strategy.
///
/// * `crisp` — the subsystem answering the crisp conjunct (grades all 0/1),
///   with set access;
/// * `graded` — the remaining `m - 1` conjuncts' sources;
/// * `crisp_position` — where the crisp conjunct sits in the aggregation's
///   argument order (matters for non-commutative aggregations such as
///   weighted ones);
/// * `agg` — the m-ary aggregation; must be zero-annihilating.
///
/// If fewer than `k` objects match the crisp conjunct, the answer is padded
/// with non-matching objects at grade 0 (their overall grade is known to be
/// 0 *without any access* — that is the whole point of the strategy).
pub fn filtered_topk<C, S, A>(
    crisp: &C,
    graded: &[S],
    crisp_position: usize,
    agg: &A,
    k: usize,
) -> Result<TopK, TopKError>
where
    C: SetAccess,
    S: GradedSource,
    A: Aggregation,
{
    let m = graded.len() + 1;
    if crisp_position >= m {
        return Err(TopKError::UnsupportedAggregation {
            reason: "crisp_position out of range",
        });
    }
    if !agg.zero_annihilates(m) {
        return Err(TopKError::UnsupportedAggregation {
            reason: "the filtered strategy requires a zero-annihilating aggregation \
                     (e.g. any t-norm); with a mean, non-matching objects can still \
                     have positive overall grades",
        });
    }
    let n = crisp.len();
    if k == 0 {
        return Err(TopKError::ZeroK);
    }
    if k > n {
        return Err(TopKError::KTooLarge { k, n });
    }
    if graded.iter().any(|s| s.len() != n) {
        return Err(TopKError::MismatchedSources {
            sizes: std::iter::once(n)
                .chain(graded.iter().map(|s| s.len()))
                .collect(),
        });
    }

    // Step 1: the match set S of the crisp conjunct.
    let matches = crisp.try_matching_set().map_err(TopKError::SourceFailed)?;

    // Step 2: random access for every other conjunct, matches only — the
    // engine's completion phase over the graded lists (no sorted phase).
    let mut scored: Vec<(ObjectId, Grade)> = Vec::with_capacity(matches.len());
    if graded.is_empty() {
        // Degenerate single-conjunct query: every match grades 1.
        scored.extend(matches.iter().map(|&id| (id, agg.combine(&[Grade::ONE]))));
    } else {
        let mut engine = Engine::open(graded.iter().collect())?;
        // One batched random_batch per graded list covers every match, so
        // block-backed sources decode each block once.
        engine.complete_grades(matches.iter().copied())?;
        let mut grades: Vec<Grade> = Vec::with_capacity(m);
        for &id in &matches {
            let completed = engine
                .grade_slice(id)
                .expect("matches were completed above");
            grades.clear();
            for (i, &grade) in completed.iter().enumerate() {
                if i == crisp_position {
                    grades.push(Grade::ONE);
                }
                grades.push(grade);
            }
            if crisp_position == m - 1 {
                grades.push(Grade::ONE);
            }
            debug_assert_eq!(grades.len(), m);
            scored.push((id, agg.combine(&grades)));
        }
    }

    // Pad with non-matching objects at grade 0 if S is smaller than k.
    if scored.len() < k {
        let in_set: std::collections::HashSet<ObjectId> = matches.iter().copied().collect();
        let mut candidates = (0..n as u64).map(ObjectId);
        while scored.len() < k {
            let id = candidates.next().expect("k <= N guarantees enough objects");
            if !in_set.contains(&id) {
                scored.push((id, Grade::ZERO));
            }
        }
    }

    Ok(TopK::select(scored, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{counted, CountingSource, MemorySource};
    use crate::algorithms::naive::naive_topk;
    use garlic_agg::iterated::min_agg;
    use garlic_agg::means::ArithmeticMean;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    /// 6 albums; artist matches objects 1, 3, 4; colour grades vary.
    fn crisp() -> MemorySource {
        MemorySource::from_grades(&[g(0.0), g(1.0), g(0.0), g(1.0), g(1.0), g(0.0)])
    }

    fn colour() -> MemorySource {
        MemorySource::from_grades(&[g(0.9), g(0.3), g(0.8), g(0.7), g(0.1), g(0.5)])
    }

    #[test]
    fn agrees_with_naive_min_conjunction() {
        let crisp_src = crisp();
        let colour_src = colour();
        let both = vec![crisp_src.clone(), colour_src.clone()];
        for k in 1..=6 {
            let fast = filtered_topk(&crisp_src, &[&colour_src], 0, &min_agg(), k).unwrap();
            let slow = naive_topk(&both, &min_agg(), k).unwrap();
            assert!(fast.same_grades(&slow, 0.0), "k = {k}");
        }
    }

    #[test]
    fn beatles_semantics() {
        // Top answers are Beatles albums ranked by colour; best is object 3
        // (match, colour .7), then 1 (.3), then 4 (.1).
        let top = filtered_topk(&crisp(), &[&colour()], 0, &min_agg(), 3).unwrap();
        assert_eq!(top.objects(), vec![ObjectId(3), ObjectId(1), ObjectId(4)]);
        assert_eq!(top.grades(), vec![g(0.7), g(0.3), g(0.1)]);
    }

    #[test]
    fn cost_proportional_to_selectivity_not_n() {
        let crisp_src = CountingSource::new(crisp());
        let colours = counted(vec![colour()]);
        filtered_topk(&crisp_src, &colours, 0, &min_agg(), 2).unwrap();
        // |S| = 3 set-access retrievals + 3 random accesses.
        assert_eq!(crisp_src.stats().sorted, 3);
        assert_eq!(colours[0].stats().random, 3);
        assert_eq!(colours[0].stats().sorted, 0);
    }

    #[test]
    fn pads_with_zero_grades_when_selective() {
        let top = filtered_topk(&crisp(), &[&colour()], 0, &min_agg(), 5).unwrap();
        assert_eq!(top.len(), 5);
        assert_eq!(top.grades()[3], Grade::ZERO);
        assert_eq!(top.grades()[4], Grade::ZERO);
    }

    #[test]
    fn rejects_non_annihilating_aggregation() {
        let err = filtered_topk(&crisp(), &[&colour()], 0, &ArithmeticMean, 1).unwrap_err();
        assert!(matches!(err, TopKError::UnsupportedAggregation { .. }));
    }

    #[test]
    fn crisp_position_is_respected() {
        // With min the position cannot matter; check both positions agree.
        let a = filtered_topk(&crisp(), &[&colour()], 0, &min_agg(), 2).unwrap();
        let b = filtered_topk(&crisp(), &[&colour()], 1, &min_agg(), 2).unwrap();
        assert!(a.same_grades(&b, 0.0));
        assert!(filtered_topk(&crisp(), &[&colour()], 2, &min_agg(), 2).is_err());
    }
}
