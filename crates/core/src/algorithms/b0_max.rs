//! Algorithm B₀ — the disjunction algorithm (Section 4, Theorem 4.5).
//!
//! For the standard fuzzy disjunction (`t = max`) the top-k answers can be
//! found with **no random access at all**: take the top `k` of every list,
//! score each seen object by the best grade any list showed for it, and
//! output the `k` best. The middleware cost is exactly `m·k` sorted
//! accesses, *independent of the database size `N`* — which is why max
//! (being non-strict) escapes the Ω(N^((m-1)/m) k^(1/m)) lower bound
//! (Remark 6.1); experiment E07 measures this.
//!
//! A thin shell over the shared [`engine`](crate::algorithms::engine): the
//! top-`k`-of-every-list phase is one batched stream to depth `k`, and the
//! per-object best grade is the engine's [`best_seen`](Engine::best_seen)
//! scoring. The resumable paging counterpart is
//! [`B0Session`](crate::algorithms::engine::B0Session).

use crate::access::GradedSource;
use crate::topk::{validate_inputs, TopK, TopKError};

use super::engine::Engine;

/// Runs algorithm B₀ for the standard fuzzy disjunction
/// `A₁ ∨ ... ∨ A_m` (aggregation fixed to max).
///
/// The reported grades are the true overall grades: if a winner's true
/// maximum were attained only in a list where it missed the top `k`, then
/// that list alone would contain `k` objects strictly beating it — a
/// contradiction with it being selected.
pub fn b0_max_topk<S>(sources: &[S], k: usize) -> Result<TopK, TopKError>
where
    S: GradedSource,
{
    validate_inputs(sources, k)?;

    // Sorted access phase: the top k of every list, as one batched stream.
    let mut engine = Engine::open(sources.iter().collect())?;
    engine.advance_to_depth(k)?;

    // Computation phase: best grade any list showed, per seen object.
    Ok(TopK::select(engine.best_seen(), k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{counted, total_stats, MemorySource};
    use crate::algorithms::naive::naive_topk;
    use crate::object::ObjectId;
    use garlic_agg::iterated::max_agg;
    use garlic_agg::Grade;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn sources() -> Vec<MemorySource> {
        vec![
            MemorySource::from_grades(&[g(1.0), g(0.8), g(0.6), g(0.4), g(0.1)]),
            MemorySource::from_grades(&[g(0.3), g(0.5), g(0.7), g(0.9), g(0.2)]),
        ]
    }

    #[test]
    fn agrees_with_naive() {
        for k in 1..=5 {
            let fast = b0_max_topk(&sources(), k).unwrap();
            let slow = naive_topk(&sources(), &max_agg(), k).unwrap();
            assert!(fast.same_grades(&slow, 0.0), "k = {k}");
        }
    }

    #[test]
    fn cost_is_mk_with_no_random_access() {
        let cs = counted(sources());
        b0_max_topk(&cs, 2).unwrap();
        let stats = total_stats(&cs);
        assert_eq!(stats.sorted, 2 * 2);
        assert_eq!(stats.random, 0);
    }

    #[test]
    fn cost_independent_of_database_size() {
        // Same k over a 5-object and a 1000-object database: identical cost.
        let big: Vec<MemorySource> = (0..2)
            .map(|list| {
                MemorySource::from_grades(
                    &(0..1000)
                        .map(|i| Grade::clamped(((i * 7 + list * 13) % 1000) as f64 / 999.0))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let small = counted(sources());
        let large = counted(big);
        b0_max_topk(&small, 3).unwrap();
        b0_max_topk(&large, 3).unwrap();
        assert_eq!(total_stats(&small), total_stats(&large));
    }

    #[test]
    fn reported_grades_are_true_maxima() {
        // Object 3: grades (0.4, 0.9) → max 0.9 must be reported even though
        // list 0 would only show 0.4.
        let top = b0_max_topk(&sources(), 1).unwrap();
        assert_eq!(top.best().unwrap().object, ObjectId(0)); // max(1.0, .3)
        assert_eq!(top.best().unwrap().grade, g(1.0));
        let top2 = b0_max_topk(&sources(), 2).unwrap();
        assert_eq!(top2.grades(), vec![g(1.0), g(0.9)]);
    }

    #[test]
    fn rejects_invalid_k() {
        assert!(b0_max_topk(&sources(), 0).is_err());
        assert!(b0_max_topk(&sources(), 6).is_err());
    }
}
