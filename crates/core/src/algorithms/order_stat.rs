//! The order-statistic (median) algorithm of Remark 6.1.
//!
//! The median is monotone but **not strict**, so the Section 6 lower bound
//! does not protect it — and indeed it can be evaluated in `O(√(Nk))`.
//! The paper's algorithm for `median(μ_{A₁}, μ_{A₂}, μ_{A₃})` exploits
//! identity (13): `median(a₁,a₂,a₃) = max{min(a₁,a₂), min(a₁,a₃),
//! min(a₂,a₃)}` — run algorithm A₀′ on every *pair* of lists, pool the three
//! answer sets, and output the `k` pooled objects with the best median
//! scores.
//!
//! The same identity generalises to any order statistic: the j-th largest of
//! m grades is the maximum over all j-element subsets of the minimum within
//! the subset (see `garlic_agg::order_stat`). This module implements that
//! generalisation; the subset count `C(m, j)` is a constant for fixed `m`,
//! preserving the `O(√(Nk))`-style cost. Experiment E08 measures it.

use garlic_agg::order_stat::{subsets_of_size, KthLargest};
use garlic_agg::Aggregation;
use std::collections::BTreeSet;

use crate::access::GradedSource;
use crate::object::ObjectId;
use crate::topk::{validate_inputs, TopK, TopKError};

use super::fa_min::fagin_min_topk;

/// Finds the top-k answers under the *j-th largest* aggregation (1-based)
/// by the subset decomposition of Remark 6.1.
///
/// `j = m` degenerates to A₀′ itself; `j = 1` (max) is better served by
/// [`super::b0_max::b0_max_topk`] but is still handled correctly here.
pub fn order_statistic_topk<S>(sources: &[S], j: usize, k: usize) -> Result<TopK, TopKError>
where
    S: GradedSource,
{
    validate_inputs(sources, k)?;
    let m = sources.len();
    if j == 0 || j > m {
        return Err(TopKError::UnsupportedAggregation {
            reason: "order statistic index must satisfy 1 <= j <= m",
        });
    }

    // Step 1-3 (generalised): for every j-subset of the lists, find the
    // top-k under min over that subset, via algorithm A₀′.
    let mut pooled: BTreeSet<ObjectId> = BTreeSet::new();
    for subset in subsets_of_size(m, j) {
        let view: Vec<&S> = subset.iter().map(|&i| &sources[i]).collect();
        let top = fagin_min_topk(&view, k)?;
        pooled.extend(top.objects());
    }

    // Step 4: grade every pooled candidate under the true order statistic
    // (random access to every list) and keep the best k.
    let agg = KthLargest::new(j);
    let mut scored = Vec::with_capacity(pooled.len());
    for id in pooled {
        let grades: Vec<_> = sources
            .iter()
            .map(|s| {
                s.random_access(id)
                    .expect("every source grades every object")
            })
            .collect();
        scored.push((id, agg.combine(&grades)));
    }
    Ok(TopK::select(scored, k))
}

/// The paper's median query: the ⌈m/2⌉-th largest grade (for odd `m` the
/// textbook median; identical to `garlic_agg::means::MedianAgg`).
pub fn median_topk<S>(sources: &[S], k: usize) -> Result<TopK, TopKError>
where
    S: GradedSource,
{
    let m = sources.len();
    if m == 0 {
        return Err(TopKError::NoSources);
    }
    order_statistic_topk(sources, m / 2 + 1, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{counted, total_stats, MemorySource};
    use crate::algorithms::b0_max::b0_max_topk;
    use crate::algorithms::naive::naive_topk;
    use garlic_agg::means::MedianAgg;
    use garlic_agg::Grade;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn three_sources() -> Vec<MemorySource> {
        vec![
            MemorySource::from_grades(&[g(0.9), g(0.1), g(0.5), g(0.7), g(0.3), g(0.6)]),
            MemorySource::from_grades(&[g(0.2), g(0.8), g(0.4), g(0.6), g(1.0), g(0.1)]),
            MemorySource::from_grades(&[g(0.5), g(0.6), g(0.9), g(0.2), g(0.4), g(0.8)]),
        ]
    }

    #[test]
    fn median_agrees_with_naive() {
        let s = three_sources();
        for k in 1..=6 {
            let fast = median_topk(&s, k).unwrap();
            let slow = naive_topk(&s, &MedianAgg, k).unwrap();
            assert!(fast.same_grades(&slow, 0.0), "k = {k}");
        }
    }

    #[test]
    fn every_order_statistic_agrees_with_naive() {
        let s = three_sources();
        for j in 1..=3 {
            for k in 1..=4 {
                let fast = order_statistic_topk(&s, j, k).unwrap();
                let slow = naive_topk(&s, &KthLargest::new(j), k).unwrap();
                assert!(fast.same_grades(&slow, 0.0), "j = {j}, k = {k}");
            }
        }
    }

    #[test]
    fn j_equals_one_matches_b0() {
        let s = three_sources();
        let via_subsets = order_statistic_topk(&s, 1, 2).unwrap();
        let via_b0 = b0_max_topk(&s, 2).unwrap();
        assert!(via_subsets.same_grades(&via_b0, 0.0));
    }

    #[test]
    fn rejects_bad_j() {
        let s = three_sources();
        assert!(order_statistic_topk(&s, 0, 1).is_err());
        assert!(order_statistic_topk(&s, 4, 1).is_err());
    }

    #[test]
    fn median_cost_stays_sublinear_shaped() {
        // Not a scaling test (that is experiment E08) — just checks the
        // algorithm does not silently degenerate to a full scan on a
        // database where the naive cost would be 3·N = 300.
        let n = 100;
        let lists: Vec<MemorySource> = (0..3)
            .map(|list: usize| {
                MemorySource::from_grades(
                    &(0..n)
                        .map(|i: usize| {
                            Grade::clamped(((i * 37 + list * 11) % n) as f64 / (n - 1) as f64)
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let cs = counted(lists);
        median_topk(&cs, 1).unwrap();
        let stats = total_stats(&cs);
        assert!(
            stats.unweighted() < 300,
            "median algorithm did as much work as the naive scan: {stats}"
        );
    }
}
