//! The middleware cost model of Section 5.
//!
//! The paper measures an algorithm by what it costs the *middleware* (Garlic)
//! to pull information out of the subsystems:
//!
//! * the **sorted access cost** `S` — the total number of objects obtained
//!   under sorted access, summed over all lists;
//! * the **random access cost** `R` — likewise for random access;
//! * the **middleware cost** `c1·S + c2·R` for positive constants `c1, c2`;
//! * the **unweighted middleware cost** `S + R` (the special case
//!   `c1 = c2 = 1`, called the "database access cost" in the earlier version
//!   of the paper).
//!
//! Equation (1)/(2) of the paper — the two costs are within constant factors
//! of each other — is what lets every Θ-bound stated for one carry over to
//! the other; `CostModel::bracket` exposes exactly that inequality.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Counts of sorted and random accesses performed against the subsystems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessStats {
    /// Total objects obtained under sorted access (the paper's `S`).
    pub sorted: u64,
    /// Total objects obtained under random access (the paper's `R`).
    pub random: u64,
}

impl AccessStats {
    /// No accesses.
    pub const ZERO: AccessStats = AccessStats {
        sorted: 0,
        random: 0,
    };

    /// Creates stats from explicit counts.
    pub fn new(sorted: u64, random: u64) -> Self {
        AccessStats { sorted, random }
    }

    /// The unweighted middleware cost `S + R`: the total number of elements
    /// retrieved by the middleware.
    #[inline]
    pub fn unweighted(&self) -> u64 {
        self.sorted + self.random
    }
}

impl Add for AccessStats {
    type Output = AccessStats;
    fn add(self, rhs: AccessStats) -> AccessStats {
        AccessStats {
            sorted: self.sorted + rhs.sorted,
            random: self.random + rhs.random,
        }
    }
}

impl AddAssign for AccessStats {
    fn add_assign(&mut self, rhs: AccessStats) {
        self.sorted += rhs.sorted;
        self.random += rhs.random;
    }
}

impl Sum for AccessStats {
    fn sum<I: Iterator<Item = AccessStats>>(iter: I) -> Self {
        iter.fold(AccessStats::ZERO, Add::add)
    }
}

impl std::fmt::Display for AccessStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S={} R={}", self.sorted, self.random)
    }
}

/// The weighting `(c1, c2)` of sorted vs. random accesses. Both constants
/// must be strictly positive (Section 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost per sorted access.
    pub c1: f64,
    /// Cost per random access.
    pub c2: f64,
}

impl CostModel {
    /// The unweighted model `c1 = c2 = 1`.
    pub const UNWEIGHTED: CostModel = CostModel { c1: 1.0, c2: 1.0 };

    /// Creates a cost model; both weights must be positive and finite.
    ///
    /// # Panics
    /// Panics if either weight is not a positive finite number.
    pub fn new(c1: f64, c2: f64) -> Self {
        assert!(
            c1 > 0.0 && c1.is_finite() && c2 > 0.0 && c2.is_finite(),
            "cost weights must be positive and finite"
        );
        CostModel { c1, c2 }
    }

    /// The middleware cost `c1·S + c2·R`.
    pub fn middleware_cost(&self, stats: AccessStats) -> f64 {
        self.c1 * stats.sorted as f64 + self.c2 * stats.random as f64
    }

    /// The bracketing inequality (1) of Section 5:
    /// `min(c1,c2)·(S+R) <= c1·S + c2·R <= max(c1,c2)·(S+R)`,
    /// returned as `(lower, upper)`.
    pub fn bracket(&self, stats: AccessStats) -> (f64, f64) {
        let sum = stats.unweighted() as f64;
        (self.c1.min(self.c2) * sum, self.c1.max(self.c2) * sum)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::UNWEIGHTED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unweighted_is_sum() {
        let s = AccessStats::new(100, 20);
        assert_eq!(s.unweighted(), 120);
        assert_eq!(CostModel::UNWEIGHTED.middleware_cost(s), 120.0);
    }

    #[test]
    fn weighted_cost() {
        let s = AccessStats::new(10, 5);
        let m = CostModel::new(2.0, 3.0);
        assert_eq!(m.middleware_cost(s), 35.0);
    }

    #[test]
    fn bracket_contains_cost() {
        // Inequality (1): the middleware cost sits inside the bracket.
        let s = AccessStats::new(7, 13);
        for (c1, c2) in [(1.0, 1.0), (0.5, 4.0), (10.0, 0.1)] {
            let m = CostModel::new(c1, c2);
            let (lo, hi) = m.bracket(s);
            let cost = m.middleware_cost(s);
            assert!(lo <= cost + 1e-12 && cost <= hi + 1e-12);
        }
    }

    #[test]
    fn stats_add_and_sum() {
        let a = AccessStats::new(1, 2);
        let b = AccessStats::new(3, 4);
        assert_eq!(a + b, AccessStats::new(4, 6));
        let total: AccessStats = [a, b, AccessStats::ZERO].into_iter().sum();
        assert_eq!(total, AccessStats::new(4, 6));
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_weights() {
        CostModel::new(0.0, 1.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", AccessStats::new(3, 4)), "S=3 R=4");
    }
}
