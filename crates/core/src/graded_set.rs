//! Graded sets — the central semantic object of the paper (Section 2).
//!
//! "A graded set is a set of pairs `(x, g)` where `x` is an object ... and
//! `g` (the grade) is a real number in the interval `[0, 1]`. It is sometimes
//! convenient to think of a graded set as corresponding to a sorted list,
//! where the objects are sorted by their grades. Thus, a graded set is a
//! generalization of both a set and a sorted list."

use garlic_agg::Grade;
use std::collections::HashMap;

use crate::object::ObjectId;

/// One `(object, grade)` pair of a graded set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradedEntry {
    /// The object.
    pub object: ObjectId,
    /// Its grade under the query this set answers.
    pub grade: Grade,
}

impl GradedEntry {
    /// Creates an entry.
    pub fn new(object: impl Into<ObjectId>, grade: Grade) -> Self {
        GradedEntry {
            object: object.into(),
            grade,
        }
    }
}

/// A graded (fuzzy) set: objects with grades in `[0, 1]`, stored sorted by
/// descending grade (ties broken by ascending object id so iteration order is
/// deterministic — one fixed *skeleton* in the paper's terminology).
///
/// Every object appears at most once.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GradedSet {
    entries: Vec<GradedEntry>,
}

impl GradedSet {
    /// Creates an empty graded set.
    pub fn new() -> Self {
        GradedSet::default()
    }

    /// Builds a graded set from arbitrary-order pairs, sorting by descending
    /// grade (ties by ascending object id).
    ///
    /// # Panics
    /// Panics if an object appears more than once.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ObjectId, Grade)>) -> Self {
        let mut entries: Vec<GradedEntry> = pairs
            .into_iter()
            .map(|(object, grade)| GradedEntry { object, grade })
            .collect();
        entries.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.object.cmp(&b.object)));
        for w in entries.windows(2) {
            assert_ne!(
                w[0].object, w[1].object,
                "object {} graded twice",
                w[0].object
            );
        }
        GradedSet { entries }
    }

    /// Builds a graded set where object `i`'s grade is `grades[i]`.
    pub fn from_grades(grades: &[Grade]) -> Self {
        GradedSet::from_pairs(
            grades
                .iter()
                .enumerate()
                .map(|(i, &g)| (ObjectId::from(i), g)),
        )
    }

    /// Number of graded objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at `rank` in descending-grade order (0-based), if any —
    /// i.e. one *sorted access* (Section 4).
    pub fn at_rank(&self, rank: usize) -> Option<GradedEntry> {
        self.entries.get(rank).copied()
    }

    /// Iterates entries in descending-grade order.
    pub fn iter(&self) -> impl Iterator<Item = GradedEntry> + '_ {
        self.entries.iter().copied()
    }

    /// Linear-scan lookup of an object's grade. For repeated random access
    /// build an index with [`GradedSet::to_map`] (or use a
    /// [`crate::access::MemorySource`]).
    pub fn grade_of(&self, object: ObjectId) -> Option<Grade> {
        self.entries
            .iter()
            .find(|e| e.object == object)
            .map(|e| e.grade)
    }

    /// The top-`k` prefix — the paper's `X^i_k` projection, with grades.
    pub fn prefix(&self, k: usize) -> &[GradedEntry] {
        &self.entries[..k.min(self.entries.len())]
    }

    /// The full ranking as a slice, best first. This is what native cursors
    /// stream from (one slice copy per batch instead of per-rank lookups).
    pub fn as_slice(&self) -> &[GradedEntry] {
        &self.entries
    }

    /// Hash index from object to grade (for random access).
    pub fn to_map(&self) -> HashMap<ObjectId, Grade> {
        self.entries.iter().map(|e| (e.object, e.grade)).collect()
    }

    /// The grades in descending order (useful for tie-tolerant comparisons
    /// between algorithms: two correct top-k answers always agree on the
    /// grade multiset even when ties let them disagree on objects).
    pub fn grade_vec(&self) -> Vec<Grade> {
        self.entries.iter().map(|e| e.grade).collect()
    }

    /// Checks the descending-grade invariant (used by debug assertions).
    pub fn is_sorted(&self) -> bool {
        self.entries.windows(2).all(|w| w[0].grade >= w[1].grade)
    }

    /// Fuzzy intersection with another graded set over the same universe,
    /// under a t-norm (Zadeh's `μ_{A∧B} = t(μ_A, μ_B)`, Section 3).
    ///
    /// # Panics
    /// Panics if the sets grade different universes.
    pub fn intersect(&self, other: &GradedSet, tnorm: &dyn garlic_agg::TNorm) -> GradedSet {
        self.zip_with(other, |a, b| tnorm.t(a, b))
    }

    /// Fuzzy union with another graded set over the same universe, under a
    /// t-conorm (`μ_{A∨B} = s(μ_A, μ_B)`).
    ///
    /// # Panics
    /// Panics if the sets grade different universes.
    pub fn union(&self, other: &GradedSet, conorm: &dyn garlic_agg::TCoNorm) -> GradedSet {
        self.zip_with(other, |a, b| conorm.s(a, b))
    }

    /// Fuzzy complement under a negation (`μ_{¬A} = n(μ_A)`).
    pub fn complement_with(&self, negation: &dyn garlic_agg::Negation) -> GradedSet {
        GradedSet::from_pairs(
            self.entries
                .iter()
                .map(|e| (e.object, negation.negate(e.grade))),
        )
    }

    fn zip_with(&self, other: &GradedSet, f: impl Fn(Grade, Grade) -> Grade) -> GradedSet {
        assert_eq!(self.len(), other.len(), "graded sets must share a universe");
        let theirs = other.to_map();
        GradedSet::from_pairs(self.entries.iter().map(|e| {
            let b = *theirs
                .get(&e.object)
                .expect("graded sets must share a universe");
            (e.object, f(e.grade, b))
        }))
    }
}

impl FromIterator<(ObjectId, Grade)> for GradedSet {
    fn from_iter<I: IntoIterator<Item = (ObjectId, Grade)>>(iter: I) -> Self {
        GradedSet::from_pairs(iter)
    }
}

impl IntoIterator for GradedSet {
    type Item = GradedEntry;
    type IntoIter = std::vec::IntoIter<GradedEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn sample() -> GradedSet {
        GradedSet::from_pairs([
            (ObjectId(0), g(0.2)),
            (ObjectId(1), g(0.9)),
            (ObjectId(2), g(0.5)),
        ])
    }

    #[test]
    fn sorted_descending() {
        let s = sample();
        assert!(s.is_sorted());
        assert_eq!(s.at_rank(0).unwrap().object, ObjectId(1));
        assert_eq!(s.at_rank(2).unwrap().object, ObjectId(0));
        assert_eq!(s.at_rank(3), None);
    }

    #[test]
    fn ties_break_by_object_id() {
        let s = GradedSet::from_pairs([
            (ObjectId(5), g(0.5)),
            (ObjectId(3), g(0.5)),
            (ObjectId(4), g(0.5)),
        ]);
        let ids: Vec<_> = s.iter().map(|e| e.object).collect();
        assert_eq!(ids, vec![ObjectId(3), ObjectId(4), ObjectId(5)]);
    }

    #[test]
    #[should_panic]
    fn duplicate_objects_rejected() {
        GradedSet::from_pairs([(ObjectId(1), g(0.4)), (ObjectId(1), g(0.6))]);
    }

    #[test]
    fn grade_lookup() {
        let s = sample();
        assert_eq!(s.grade_of(ObjectId(2)), Some(g(0.5)));
        assert_eq!(s.grade_of(ObjectId(9)), None);
        assert_eq!(s.to_map()[&ObjectId(1)], g(0.9));
    }

    #[test]
    fn prefix_clamps() {
        let s = sample();
        assert_eq!(s.prefix(2).len(), 2);
        assert_eq!(s.prefix(10).len(), 3);
        assert_eq!(s.prefix(0).len(), 0);
    }

    #[test]
    fn from_grades_indexes_objects() {
        let s = GradedSet::from_grades(&[g(0.1), g(0.8)]);
        assert_eq!(s.at_rank(0).unwrap().object, ObjectId(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn grade_vec_descending() {
        assert_eq!(sample().grade_vec(), vec![g(0.9), g(0.5), g(0.2)]);
    }

    #[test]
    fn zadeh_set_operations() {
        use garlic_agg::negation::StandardNegation;
        use garlic_agg::tconorms::Maximum;
        use garlic_agg::tnorms::Minimum;
        let a = sample(); // 0:.2, 1:.9, 2:.5
        let b = GradedSet::from_pairs([
            (ObjectId(0), g(0.7)),
            (ObjectId(1), g(0.4)),
            (ObjectId(2), g(0.5)),
        ]);
        let both = a.intersect(&b, &Minimum);
        assert_eq!(both.grade_of(ObjectId(0)), Some(g(0.2)));
        assert_eq!(both.grade_of(ObjectId(1)), Some(g(0.4)));

        let either = a.union(&b, &Maximum);
        assert_eq!(either.grade_of(ObjectId(0)), Some(g(0.7)));
        assert_eq!(either.grade_of(ObjectId(1)), Some(g(0.9)));

        let not_a = a.complement_with(&StandardNegation);
        assert!(not_a
            .grade_of(ObjectId(1))
            .unwrap()
            .approx_eq(g(0.1), 1e-12));
        // De Morgan on graded sets: ¬(A ∧ B) = ¬A ∨ ¬B.
        let lhs = a.intersect(&b, &Minimum).complement_with(&StandardNegation);
        let rhs = not_a.union(&b.complement_with(&StandardNegation), &Maximum);
        for x in 0..3u64 {
            assert!(lhs
                .grade_of(ObjectId(x))
                .unwrap()
                .approx_eq(rhs.grade_of(ObjectId(x)).unwrap(), 1e-12));
        }
    }

    #[test]
    #[should_panic]
    fn set_operations_require_shared_universe() {
        let a = sample();
        let b = GradedSet::from_pairs([(ObjectId(0), g(0.1))]);
        a.intersect(&b, &garlic_agg::tnorms::Minimum);
    }
}
