//! A vendored fast, non-cryptographic hasher for hot-path maps.
//!
//! The engine's inner loop resolves one `ObjectId → slot` lookup per
//! observation, and the default `std::collections::HashMap` routes every
//! one of them through SipHash-1-3 — a keyed, DoS-resistant hash whose
//! setup cost dwarfs the multiply-and-rotate a u64 key actually needs.
//! This module vendors the FxHash function (the compiler's own workhorse
//! hash, originally from Firefox) so slot resolution is a handful of
//! arithmetic instructions instead.
//!
//! FxHash is **not** DoS-resistant: it must only key maps whose inputs the
//! process itself produced (object ids, block numbers), never maps keyed
//! by untrusted external strings. Every use in this workspace is of the
//! first kind.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash scheme (64-bit golden-ratio
/// derived, as used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Bit rotation applied between words, spreading low-entropy inputs.
const ROTATE: u32 = 5;

/// The FxHash state: one u64 folded with multiply-rotate-xor per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] — drop-in for the default hasher state.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the FxHash function. Use only for process-internal
/// keys (see the module docs).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the FxHash function. Same caveat as [`FxHashMap`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn distinct_keys_hash_differently() {
        // Not a collision-resistance proof — just a sanity check that the
        // fold actually mixes (a constant hasher would pass type checks).
        let hashes: std::collections::HashSet<u64> = (0u64..10_000).map(hash_of).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn hash_is_deterministic_across_hashers() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_ne!(hash_of(42u64), hash_of(43u64));
    }

    #[test]
    fn byte_writes_agree_with_padding_rule() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FxHashMap<crate::ObjectId, u32> = FxHashMap::default();
        for i in 0..100u64 {
            map.insert(crate::ObjectId(i), i as u32);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map[&crate::ObjectId(7)], 7);
        let set: FxHashSet<u64> = (0..50).collect();
        assert!(set.contains(&49));
    }
}
