//! The subsystem access model of Section 4.
//!
//! Garlic can interact with a subsystem in exactly two ways:
//!
//! * **Sorted access** — "the subsystem will output the graded set
//!   consisting of all objects, one by one, along with their grades under
//!   the subquery, in sorted order based on grade";
//! * **Random access** — "Garlic could ask the subsystem the grade (with
//!   respect to a query) of any given object".
//!
//! [`GradedSource`] captures that contract. [`CountingSource`] wraps any
//! source and meters both access kinds, producing the [`AccessStats`] the
//! Section 5 cost model is defined over. [`SetAccess`] is the extra
//! capability crisp relational subsystems have — enumerating the exact-match
//! set — which enables the "Beatles" filtered strategy of Section 4.
//!
//! # The cursor contract
//!
//! Positional access ([`GradedSource::sorted_access`]) re-resolves a rank on
//! every call; production streaming instead goes through **cursors**:
//! [`GradedSource::open_sorted`] yields a [`SortedCursor`] whose
//! [`next_batch`](SortedCursor::next_batch) appends the next `n` entries of
//! the descending-grade stream in one call. Implementations provide the
//! batched primitive [`GradedSource::sorted_batch`]; sources backed by a
//! materialised ranking (e.g. [`MemorySource`]) satisfy it with a sequential
//! slice walk rather than a per-rank lookup. The contract every
//! implementation must honour:
//!
//! * **Same stream.** The cursor yields exactly the sequence
//!   `sorted_access(0), sorted_access(1), ...` — descending grades, each
//!   object exactly once, ties broken by the source's fixed *skeleton* (for
//!   the in-memory sources: descending grade, then ascending object id). The
//!   batch size is an access-plan choice and must never change the stream.
//! * **Batching.** `next_batch(&mut out, n)` appends up to `n` entries to
//!   `out` and returns how many were appended; a short (or zero) count means
//!   the list is exhausted. Entries are *appended* — the caller owns the
//!   buffer and may reuse it across calls to amortise allocation.
//! * **Resumption.** A cursor is a plain rank position
//!   ([`SortedCursor::position`]); [`SortedCursor::at`] reopens a stream at
//!   any rank, which is what makes paging sessions ("continue where we left
//!   off", Section 4) restartable across batches and across process
//!   boundaries.
//! * **Metering.** [`CountingSource`] bills each *entry* obtained, not each
//!   call: a batch of 50 entries counts as 50 sorted accesses — exactly the
//!   Section 5 sorted-access cost `S` — while updating its counter once per
//!   batch.
//!
//! Random access has the analogous batched primitive:
//! [`GradedSource::random_batch`] answers many probes in one call (default:
//! the per-object loop), positionally aligned with its input, with each
//! *hit* billed as one Section 5 random access — so block-backed sources
//! can group probes by block without changing a single measured count.
//!
//! # Threshold hints
//!
//! Once an engine knows its current *k-th score frontier* — the grade of
//! the worst entry that could still matter — deeper stream entries below
//! that grade can never change the answer. [`GradedSource::sorted_batch_bounded`]
//! carries that knowledge to the source as an **advisory bound**: the
//! source may stop early once it can *prove* every remaining entry grades
//! strictly below the bound (disk-backed sources prove it from per-block
//! grade fences without even loading the blocks). The hint never changes
//! *which* entries are emitted — the output is always an exact prefix of
//! the unbounded stream, same entries, same tie order — and
//! [`CountingSource`] bills exactly the entries obtained, so Section 5
//! accounting is identical for the entries actually consumed. A *dirty*
//! hint (a bound higher than the true frontier) is therefore harmless:
//! the caller sees [`BoundedBatch::truncated`], knows the suppressed
//! suffix grades below the bound, and can resume unbounded from
//! `start + appended` to recover the identical full stream.
//!
//! # Threading
//!
//! Garlic is a multi-user middleware: many queries run concurrently over
//! one shared catalog of subsystems. [`GradedSource`] therefore requires
//! `Send + Sync` — a source is an owned, shareable handle (typically an
//! `Arc<dyn GradedSource>`), not a borrow into a single-threaded subsystem
//! — and [`CountingSource`] meters with atomic counters so a metered source
//! can be read from worker threads while still reporting exact Section 5
//! access counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use garlic_agg::Grade;

use crate::cost::AccessStats;
use crate::graded_set::{GradedEntry, GradedSet};
use crate::object::ObjectId;

/// A typed runtime failure from a fallible source read.
///
/// In-memory sources never fail; disk-backed sources surface I/O errors
/// (after their own retry policy is exhausted) through the `try_*` read
/// variants as a `SourceError` instead of panicking. `quarantined`
/// distinguishes a source that has poisoned itself — every subsequent read
/// fails fast with the same error — from a one-off failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError {
    /// Which source failed (a path or label, best-effort).
    pub source: String,
    /// Human-readable failure detail (the underlying I/O or corruption
    /// error).
    pub detail: String,
    /// `true` when the source has marked itself permanently unhealthy and
    /// will fail fast on every subsequent read.
    pub quarantined: bool,
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.quarantined {
            write!(f, "source {} is quarantined: {}", self.source, self.detail)
        } else {
            write!(f, "source {} failed: {}", self.source, self.detail)
        }
    }
}

impl std::error::Error for SourceError {}

/// A subsystem's view of one atomic query: a graded set reachable through
/// sorted access and random access.
///
/// Sorted access is *positional* (`rank` is 0-based); this models "ask for
/// the top 10, then the next 10" as well as one-by-one streaming, and makes
/// instrumentation and resumption trivial. Every object in the database is
/// graded (possibly with grade 0), so `len()` is the database size `N`.
///
/// Sources are `Send + Sync`: a graded answer is an owned handle that many
/// concurrent queries (and the engine's parallel sorted phase) may read
/// simultaneously through `&self`.
pub trait GradedSource: Send + Sync {
    /// The number of graded objects (the database size `N`).
    fn len(&self) -> usize;

    /// Whether the source grades no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorted access: the `rank`-th entry (0-based) in descending-grade
    /// order, or `None` past the end. Tie order is fixed by the source (the
    /// paper's *skeleton*).
    fn sorted_access(&self, rank: usize) -> Option<GradedEntry>;

    /// Random access: the grade of `object`, or `None` for an unknown object.
    fn random_access(&self, object: ObjectId) -> Option<Grade>;

    /// Batched random access: appends one `Option<Grade>` per probe to
    /// `out`, positionally aligned with `objects` (so `out` grows by
    /// exactly `objects.len()`). Semantically identical to looping
    /// [`random_access`](GradedSource::random_access) — same grades, same
    /// misses, and [`CountingSource`] bills one random access per *hit*
    /// either way — but an implementation may reorder its internal I/O:
    /// [`SegmentSource`] groups probes by table block so each cached block
    /// is fetched and decoded once per batch, not once per probe.
    ///
    /// Probes may repeat and may miss; both are answered (and billed)
    /// per-probe, exactly like the loop.
    ///
    /// [`SegmentSource`]: https://docs.rs/garlic-storage
    fn random_batch(&self, objects: &[ObjectId], out: &mut Vec<Option<Grade>>) {
        out.extend(objects.iter().map(|&object| self.random_access(object)));
    }

    /// Batched sorted access: appends up to `count` entries starting at
    /// `start` (in the same descending-grade order as
    /// [`sorted_access`](GradedSource::sorted_access)) to `out`, returning
    /// how many were appended. A short count means the list is exhausted.
    ///
    /// The default loops [`sorted_access`](GradedSource::sorted_access);
    /// sources holding a materialised ranking should override it with a
    /// sequential walk (see the module docs for the full cursor contract).
    fn sorted_batch(&self, start: usize, count: usize, out: &mut Vec<GradedEntry>) -> usize {
        let mut appended = 0;
        for rank in start..start.saturating_add(count) {
            let Some(entry) = self.sorted_access(rank) else {
                break;
            };
            out.push(entry);
            appended += 1;
        }
        appended
    }

    /// Batched sorted access with an advisory stop-threshold (see the
    /// module docs): appends up to `count` entries starting at `start`,
    /// exactly like [`sorted_batch`](GradedSource::sorted_batch), but the
    /// source may stop early once it can prove that every remaining entry
    /// in the stream grades **strictly below** `bound`. The entries
    /// appended are always an exact prefix of the unbounded stream (same
    /// entries, same tie order); entries below the bound *may* still be
    /// emitted (implementations stop at their natural granularity, e.g. a
    /// block boundary) — the bound is a permission to stop, never a
    /// filter.
    ///
    /// Returns the number appended plus whether the source stopped because
    /// of the bound ([`BoundedBatch::truncated`] — the remaining suffix
    /// provably grades below `bound`) rather than because the request was
    /// satisfied or the stream ended.
    ///
    /// The default walks [`sorted_batch`](GradedSource::sorted_batch) in
    /// chunks and stops after the first chunk whose final (least) entry
    /// falls below the bound — correct for any source, since the stream
    /// descends. Sources with skip metadata (block grade fences) should
    /// override it to avoid even loading provably useless regions.
    fn sorted_batch_bounded(
        &self,
        start: usize,
        count: usize,
        bound: Grade,
        out: &mut Vec<GradedEntry>,
    ) -> BoundedBatch {
        const CHUNK: usize = 256;
        let mut appended = 0;
        while appended < count {
            let take = (count - appended).min(CHUNK);
            let got = self.sorted_batch(start + appended, take, out);
            appended += got;
            if got < take {
                return BoundedBatch {
                    appended,
                    truncated: false,
                };
            }
            // The stream descends, so once its tail entry dips below the
            // bound every deeper entry is provably below it too.
            if out.last().is_some_and(|e| e.grade < bound) {
                return BoundedBatch {
                    appended,
                    truncated: true,
                };
            }
        }
        BoundedBatch {
            appended,
            truncated: out.last().is_some_and(|e| e.grade < bound) && appended > 0,
        }
    }

    /// Opens a [`SortedCursor`] over this source's descending-grade stream,
    /// positioned at rank 0.
    fn open_sorted(&self) -> SortedCursor<'_, Self>
    where
        Self: Sized,
    {
        SortedCursor::new(self)
    }

    /// Fallible [`sorted_batch`](GradedSource::sorted_batch): identical
    /// stream, identical billing, but a disk-backed source reports a read
    /// failure as a typed [`SourceError`] instead of panicking. In-memory
    /// sources keep the infallible default (which simply delegates).
    ///
    /// Query engines use the `try_*` variants exclusively; the infallible
    /// methods remain the required primitive for sources that cannot fail.
    fn try_sorted_batch(
        &self,
        start: usize,
        count: usize,
        out: &mut Vec<GradedEntry>,
    ) -> Result<usize, SourceError> {
        Ok(self.sorted_batch(start, count, out))
    }

    /// Fallible [`random_batch`](GradedSource::random_batch): same
    /// alignment and billing, with I/O failures surfaced as a typed error.
    fn try_random_batch(
        &self,
        objects: &[ObjectId],
        out: &mut Vec<Option<Grade>>,
    ) -> Result<(), SourceError> {
        self.random_batch(objects, out);
        Ok(())
    }

    /// Fallible [`sorted_batch_bounded`](GradedSource::sorted_batch_bounded)
    /// with the same advisory-bound semantics.
    fn try_sorted_batch_bounded(
        &self,
        start: usize,
        count: usize,
        bound: Grade,
        out: &mut Vec<GradedEntry>,
    ) -> Result<BoundedBatch, SourceError> {
        Ok(self.sorted_batch_bounded(start, count, bound, out))
    }

    /// Whether this source has dropped part of its data and is serving a
    /// *degraded* stream (e.g. a sharded source that lost a quarantined
    /// shard and now grades that shard's objects as zero). Results computed
    /// over a degraded source are correct for the surviving data but must
    /// be flagged to the caller. In-memory sources are never degraded.
    fn degraded(&self) -> bool {
        false
    }
}

/// What [`GradedSource::sorted_batch_bounded`] did: how many entries were
/// appended and whether the source stopped early because the rest of the
/// stream provably grades below the bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedBatch {
    /// Entries appended to the output — an exact prefix of the unbounded
    /// stream starting at the requested rank.
    pub appended: usize,
    /// `true` when the source stopped because every remaining entry
    /// grades strictly below the bound; `false` when the request was
    /// satisfied or the stream is exhausted.
    pub truncated: bool,
}

/// A streaming cursor over one source's sorted order: the stateful face of
/// [`GradedSource::sorted_batch`]. See the module docs for the contract
/// (batching, resumption, tie order = the source's skeleton).
///
/// A cursor may carry an advisory **stop-threshold bound** (typically the
/// engine's current k-th score frontier, via
/// [`with_bound`](SortedCursor::with_bound)): batches then go through
/// [`GradedSource::sorted_batch_bounded`], letting the source stop — and a
/// fence-aware source skip whole blocks — once the rest of the stream
/// provably grades below the bound. The emitted entries stay an exact
/// prefix of the unbounded stream; after a short batch,
/// [`stopped_by_bound`](SortedCursor::stopped_by_bound) distinguishes
/// "suffix provably below the bound" from "stream exhausted", and clearing
/// the bound resumes the untruncated remainder from the same position
/// (the dirty-hint recovery path).
///
/// The cursor also implements [`Iterator`] for one-at-a-time consumption
/// (which ignores any bound); prefer
/// [`next_batch`](SortedCursor::next_batch) on hot paths.
#[derive(Debug)]
pub struct SortedCursor<'a, S: ?Sized> {
    source: &'a S,
    position: usize,
    bound: Option<Grade>,
    stopped_by_bound: bool,
}

impl<'a, S: GradedSource + ?Sized> SortedCursor<'a, S> {
    /// Opens a cursor at rank 0.
    pub fn new(source: &'a S) -> Self {
        SortedCursor {
            source,
            position: 0,
            bound: None,
            stopped_by_bound: false,
        }
    }

    /// Reopens a cursor at an arbitrary rank — resumption for paging
    /// sessions that stopped at a known depth.
    pub fn at(source: &'a S, position: usize) -> Self {
        SortedCursor {
            source,
            position,
            bound: None,
            stopped_by_bound: false,
        }
    }

    /// Attaches an advisory stop-threshold: batches may end early once
    /// every remaining entry provably grades strictly below `bound`.
    pub fn with_bound(mut self, bound: Grade) -> Self {
        self.bound = Some(bound);
        self
    }

    /// Sets or clears the advisory bound mid-stream — e.g. tightening it
    /// as the engine's k-th score frontier rises, or clearing it to
    /// recover the untruncated remainder after a dirty hint.
    pub fn set_bound(&mut self, bound: Option<Grade>) {
        self.bound = bound;
        self.stopped_by_bound = false;
    }

    /// The current advisory bound, if any.
    pub fn bound(&self) -> Option<Grade> {
        self.bound
    }

    /// Whether the most recent [`next_batch`](SortedCursor::next_batch)
    /// ended early because of the bound (the remaining suffix provably
    /// grades below it) rather than because the stream is exhausted.
    pub fn stopped_by_bound(&self) -> bool {
        self.stopped_by_bound
    }

    /// The rank the next entry will come from (== entries consumed so far
    /// for a cursor opened at 0).
    pub fn position(&self) -> usize {
        self.position
    }

    /// Appends up to `n` next entries to `out`, returning how many were
    /// appended; `0` means the stream is exhausted — unless a bound is set
    /// and [`stopped_by_bound`](SortedCursor::stopped_by_bound) reports
    /// the short batch came from the threshold instead. Once the bound
    /// has stopped the stream, further calls return `0` without touching
    /// the source (the suffix is already proven useless) until
    /// [`set_bound`](SortedCursor::set_bound) changes or clears it.
    pub fn next_batch(&mut self, out: &mut Vec<GradedEntry>, n: usize) -> usize {
        let got = match self.bound {
            None => self.source.sorted_batch(self.position, n, out),
            Some(_) if self.stopped_by_bound => 0,
            Some(bound) => {
                let result = self
                    .source
                    .sorted_batch_bounded(self.position, n, bound, out);
                self.stopped_by_bound = result.truncated;
                result.appended
            }
        };
        self.position += got;
        got
    }

    /// Fallible [`next_batch`](SortedCursor::next_batch): same stream, same
    /// bound semantics, but a disk-backed source's read failure surfaces as
    /// a typed [`SourceError`]. The cursor position only advances by the
    /// entries actually appended, so a failed call is retryable.
    pub fn try_next_batch(
        &mut self,
        out: &mut Vec<GradedEntry>,
        n: usize,
    ) -> Result<usize, SourceError> {
        let got = match self.bound {
            None => self.source.try_sorted_batch(self.position, n, out)?,
            Some(_) if self.stopped_by_bound => 0,
            Some(bound) => {
                let result = self
                    .source
                    .try_sorted_batch_bounded(self.position, n, bound, out)?;
                self.stopped_by_bound = result.truncated;
                result.appended
            }
        };
        self.position += got;
        Ok(got)
    }
}

impl<S: GradedSource + ?Sized> Iterator for SortedCursor<'_, S> {
    type Item = GradedEntry;

    fn next(&mut self) -> Option<GradedEntry> {
        let entry = self.source.sorted_access(self.position)?;
        self.position += 1;
        Some(entry)
    }
}

/// Extra capability of crisp sources: enumerate every object whose grade is
/// exactly 1 (the classical relation "result set"). Powers the filtered
/// conjunction strategy of Section 4.
pub trait SetAccess: GradedSource {
    /// All objects with grade 1, in unspecified order.
    fn matching_set(&self) -> Vec<ObjectId>;

    /// Fallible [`matching_set`](SetAccess::matching_set): disk-backed
    /// crisp sources surface read failures as a typed [`SourceError`]
    /// instead of panicking.
    fn try_matching_set(&self) -> Result<Vec<ObjectId>, SourceError> {
        Ok(self.matching_set())
    }
}

/// An in-memory [`GradedSource`] over a [`GradedSet`], with a hash index for
/// O(1) random access. The workhorse source for workloads and tests.
///
/// The index is keyed by the vendored [`crate::fx`] hash: object ids are
/// process-internal keys, so the hot random-access path skips SipHash
/// entirely.
#[derive(Debug, Clone)]
pub struct MemorySource {
    set: GradedSet,
    index: crate::fx::FxHashMap<ObjectId, Grade>,
}

impl MemorySource {
    /// Builds the source (and its random-access index) from a graded set.
    pub fn new(set: GradedSet) -> Self {
        let index = set.iter().map(|e| (e.object, e.grade)).collect();
        MemorySource { set, index }
    }

    /// Builds from `(object, grade)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ObjectId, Grade)>) -> Self {
        MemorySource::new(GradedSet::from_pairs(pairs))
    }

    /// Builds from a dense grade vector (object `i` gets `grades[i]`).
    pub fn from_grades(grades: &[Grade]) -> Self {
        MemorySource::new(GradedSet::from_grades(grades))
    }

    /// The underlying graded set.
    pub fn graded_set(&self) -> &GradedSet {
        &self.set
    }
}

impl GradedSource for MemorySource {
    fn len(&self) -> usize {
        self.set.len()
    }

    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        self.set.at_rank(rank)
    }

    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        self.index.get(&object).copied()
    }

    /// Native batched streaming: one bounds-checked slice copy per batch
    /// instead of `count` per-rank lookups.
    fn sorted_batch(&self, start: usize, count: usize, out: &mut Vec<GradedEntry>) -> usize {
        let entries = self.set.as_slice();
        let start = start.min(entries.len());
        let end = start.saturating_add(count).min(entries.len());
        out.extend_from_slice(&entries[start..end]);
        end - start
    }
}

impl SetAccess for MemorySource {
    fn matching_set(&self) -> Vec<ObjectId> {
        self.set
            .iter()
            .take_while(|e| e.grade == Grade::ONE)
            .map(|e| e.object)
            .collect()
    }
}

/// Wraps a source and counts accesses, implementing the Section 5 cost
/// bookkeeping. Uses atomic counters so the counted source still implements
/// [`GradedSource`] by shared reference — including shared *across threads*:
/// each access kind bills exactly one increment per entry obtained, so the
/// totals are identical whether the source was read sequentially or from a
/// parallel sorted phase.
#[derive(Debug)]
pub struct CountingSource<S> {
    inner: S,
    sorted: AtomicU64,
    random: AtomicU64,
}

impl<S: GradedSource> CountingSource<S> {
    /// Wraps a source with zeroed counters.
    pub fn new(inner: S) -> Self {
        CountingSource {
            inner,
            sorted: AtomicU64::new(0),
            random: AtomicU64::new(0),
        }
    }

    /// The access counts so far.
    pub fn stats(&self) -> AccessStats {
        AccessStats {
            sorted: self.sorted.load(Ordering::Relaxed),
            random: self.random.load(Ordering::Relaxed),
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.sorted.store(0, Ordering::Relaxed);
        self.random.store(0, Ordering::Relaxed);
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, discarding the counters.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: GradedSource> GradedSource for CountingSource<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        let entry = self.inner.sorted_access(rank);
        if entry.is_some() {
            // Only successful retrievals count as "objects obtained".
            self.sorted.fetch_add(1, Ordering::Relaxed);
        }
        entry
    }

    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        let grade = self.inner.random_access(object);
        if grade.is_some() {
            self.random.fetch_add(1, Ordering::Relaxed);
        }
        grade
    }

    /// Batch-aware metering: delegates to the inner source's (possibly
    /// native) batch path and bills every entry obtained with a single
    /// counter update — the reported Section 5 sorted cost is identical to
    /// per-rank access.
    fn sorted_batch(&self, start: usize, count: usize, out: &mut Vec<GradedEntry>) -> usize {
        let got = self.inner.sorted_batch(start, count, out);
        self.sorted.fetch_add(got as u64, Ordering::Relaxed);
        got
    }

    /// Batch-aware random metering: one counter update per batch, billing
    /// exactly one random access per successful probe — identical Section 5
    /// random cost to the per-object loop.
    fn random_batch(&self, objects: &[ObjectId], out: &mut Vec<Option<Grade>>) {
        let before = out.len();
        self.inner.random_batch(objects, out);
        debug_assert_eq!(out.len(), before + objects.len(), "one slot per probe");
        let hits = out[before..].iter().filter(|g| g.is_some()).count();
        self.random.fetch_add(hits as u64, Ordering::Relaxed);
    }

    /// Bounded batches bill exactly the entries obtained — a threshold
    /// hint changes how *few* entries a caller reads, never the Section 5
    /// price of the entries it does read.
    fn sorted_batch_bounded(
        &self,
        start: usize,
        count: usize,
        bound: Grade,
        out: &mut Vec<GradedEntry>,
    ) -> BoundedBatch {
        let result = self.inner.sorted_batch_bounded(start, count, bound, out);
        self.sorted
            .fetch_add(result.appended as u64, Ordering::Relaxed);
        result
    }

    /// Fallible paths bill exactly the entries obtained — a failed batch
    /// still charges for whatever was appended before the error, which is
    /// exactly the work the subsystem performed.
    fn try_sorted_batch(
        &self,
        start: usize,
        count: usize,
        out: &mut Vec<GradedEntry>,
    ) -> Result<usize, SourceError> {
        let before = out.len();
        let result = self.inner.try_sorted_batch(start, count, out);
        let got = out.len() - before;
        self.sorted.fetch_add(got as u64, Ordering::Relaxed);
        result
    }

    fn try_random_batch(
        &self,
        objects: &[ObjectId],
        out: &mut Vec<Option<Grade>>,
    ) -> Result<(), SourceError> {
        let before = out.len();
        let result = self.inner.try_random_batch(objects, out);
        let hits = out[before..].iter().filter(|g| g.is_some()).count();
        self.random.fetch_add(hits as u64, Ordering::Relaxed);
        result
    }

    fn try_sorted_batch_bounded(
        &self,
        start: usize,
        count: usize,
        bound: Grade,
        out: &mut Vec<GradedEntry>,
    ) -> Result<BoundedBatch, SourceError> {
        let before = out.len();
        let result = self
            .inner
            .try_sorted_batch_bounded(start, count, bound, out);
        let got = out.len() - before;
        self.sorted.fetch_add(got as u64, Ordering::Relaxed);
        result
    }

    fn degraded(&self) -> bool {
        self.inner.degraded()
    }
}

impl<S: SetAccess> SetAccess for CountingSource<S> {
    fn matching_set(&self) -> Vec<ObjectId> {
        let set = self.inner.matching_set();
        // Enumerating the match set retrieves |set| objects from the
        // subsystem; bill it as sorted access (it is a prefix of the sorted
        // order: exactly the grade-1 block).
        self.sorted.fetch_add(set.len() as u64, Ordering::Relaxed);
        set
    }

    fn try_matching_set(&self) -> Result<Vec<ObjectId>, SourceError> {
        let set = self.inner.try_matching_set()?;
        self.sorted.fetch_add(set.len() as u64, Ordering::Relaxed);
        Ok(set)
    }
}

/// Wraps each source of a workload in a [`CountingSource`].
pub fn counted<S: GradedSource>(sources: Vec<S>) -> Vec<CountingSource<S>> {
    sources.into_iter().map(CountingSource::new).collect()
}

/// Sums the stats of a slice of counted sources.
pub fn total_stats<S: GradedSource>(sources: &[CountingSource<S>]) -> AccessStats {
    sources.iter().map(|s| s.stats()).sum()
}

/// Forwards every trait method — including the fallible `try_*` variants
/// and the degradation flag — so wrapper types reach the inner source's
/// overrides instead of the infallible defaults.
macro_rules! forward_graded_source {
    () => {
        fn len(&self) -> usize {
            (**self).len()
        }
        fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
            (**self).sorted_access(rank)
        }
        fn random_access(&self, object: ObjectId) -> Option<Grade> {
            (**self).random_access(object)
        }
        fn sorted_batch(&self, start: usize, count: usize, out: &mut Vec<GradedEntry>) -> usize {
            (**self).sorted_batch(start, count, out)
        }
        fn random_batch(&self, objects: &[ObjectId], out: &mut Vec<Option<Grade>>) {
            (**self).random_batch(objects, out)
        }
        fn sorted_batch_bounded(
            &self,
            start: usize,
            count: usize,
            bound: Grade,
            out: &mut Vec<GradedEntry>,
        ) -> BoundedBatch {
            (**self).sorted_batch_bounded(start, count, bound, out)
        }
        fn try_sorted_batch(
            &self,
            start: usize,
            count: usize,
            out: &mut Vec<GradedEntry>,
        ) -> Result<usize, SourceError> {
            (**self).try_sorted_batch(start, count, out)
        }
        fn try_random_batch(
            &self,
            objects: &[ObjectId],
            out: &mut Vec<Option<Grade>>,
        ) -> Result<(), SourceError> {
            (**self).try_random_batch(objects, out)
        }
        fn try_sorted_batch_bounded(
            &self,
            start: usize,
            count: usize,
            bound: Grade,
            out: &mut Vec<GradedEntry>,
        ) -> Result<BoundedBatch, SourceError> {
            (**self).try_sorted_batch_bounded(start, count, bound, out)
        }
        fn degraded(&self) -> bool {
            (**self).degraded()
        }
    };
}

impl<S: GradedSource + ?Sized> GradedSource for &S {
    forward_graded_source!();
}

impl<S: GradedSource + ?Sized> GradedSource for Box<S> {
    forward_graded_source!();
}

impl<S: SetAccess + ?Sized> SetAccess for &S {
    fn matching_set(&self) -> Vec<ObjectId> {
        (**self).matching_set()
    }
    fn try_matching_set(&self) -> Result<Vec<ObjectId>, SourceError> {
        (**self).try_matching_set()
    }
}

impl<S: SetAccess + ?Sized> SetAccess for Box<S> {
    fn matching_set(&self) -> Vec<ObjectId> {
        (**self).matching_set()
    }
    fn try_matching_set(&self) -> Result<Vec<ObjectId>, SourceError> {
        (**self).try_matching_set()
    }
}

/// `Arc<dyn GradedSource>` is the canonical *owned* answer handle a
/// subsystem returns: cheap to clone, `'static`, and shareable across the
/// threads of a concurrent service.
impl<S: GradedSource + ?Sized> GradedSource for Arc<S> {
    forward_graded_source!();
}

impl<S: SetAccess + ?Sized> SetAccess for Arc<S> {
    fn matching_set(&self) -> Vec<ObjectId> {
        (**self).matching_set()
    }
    fn try_matching_set(&self) -> Result<Vec<ObjectId>, SourceError> {
        (**self).try_matching_set()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn source() -> MemorySource {
        MemorySource::from_grades(&[g(0.2), g(0.9), g(0.5), g(1.0)])
    }

    #[test]
    fn sorted_access_descends() {
        let s = source();
        assert_eq!(s.sorted_access(0).unwrap().object, ObjectId(3));
        assert_eq!(s.sorted_access(1).unwrap().object, ObjectId(1));
        assert_eq!(s.sorted_access(4), None);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn random_access_looks_up() {
        let s = source();
        assert_eq!(s.random_access(ObjectId(2)), Some(g(0.5)));
        assert_eq!(s.random_access(ObjectId(99)), None);
    }

    #[test]
    fn matching_set_is_grade_one_block() {
        let s = source();
        assert_eq!(s.matching_set(), vec![ObjectId(3)]);
    }

    #[test]
    fn counting_meters_both_kinds() {
        let c = CountingSource::new(source());
        c.sorted_access(0);
        c.sorted_access(1);
        c.random_access(ObjectId(0));
        assert_eq!(c.stats(), AccessStats::new(2, 1));
        c.reset();
        assert_eq!(c.stats(), AccessStats::ZERO);
    }

    #[test]
    fn failed_accesses_do_not_count() {
        let c = CountingSource::new(source());
        c.sorted_access(100);
        c.random_access(ObjectId(100));
        assert_eq!(c.stats(), AccessStats::ZERO);
    }

    #[test]
    fn set_access_billed_as_sorted() {
        let c = CountingSource::new(source());
        let set = c.matching_set();
        assert_eq!(set.len(), 1);
        assert_eq!(c.stats(), AccessStats::new(1, 0));
    }

    #[test]
    fn total_stats_sums() {
        let sources = counted(vec![source(), source()]);
        sources[0].sorted_access(0);
        sources[1].random_access(ObjectId(1));
        assert_eq!(total_stats(&sources), AccessStats::new(1, 1));
    }

    #[test]
    fn cursor_streams_the_positional_order() {
        let s = source();
        let mut cursor = s.open_sorted();
        let mut batch = Vec::new();
        assert_eq!(cursor.next_batch(&mut batch, 3), 3);
        assert_eq!(cursor.position(), 3);
        assert_eq!(cursor.next_batch(&mut batch, 3), 1, "short batch at end");
        assert_eq!(cursor.next_batch(&mut batch, 3), 0, "exhausted");
        let positional: Vec<GradedEntry> = (0..4).map(|r| s.sorted_access(r).unwrap()).collect();
        assert_eq!(batch, positional);
    }

    #[test]
    fn cursor_resumes_at_an_arbitrary_rank() {
        let s = source();
        let mut cursor = SortedCursor::at(&s, 2);
        let mut batch = Vec::new();
        cursor.next_batch(&mut batch, 10);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], s.sorted_access(2).unwrap());
        assert_eq!(cursor.position(), 4);
    }

    #[test]
    fn cursor_iterates_like_sorted_access() {
        let s = source();
        let streamed: Vec<GradedEntry> = s.open_sorted().collect();
        let positional: Vec<GradedEntry> = (0..4).map(|r| s.sorted_access(r).unwrap()).collect();
        assert_eq!(streamed, positional);
    }

    #[test]
    fn batched_metering_bills_entries_not_calls() {
        let c = CountingSource::new(source());
        let mut out = Vec::new();
        assert_eq!(c.sorted_batch(0, 3, &mut out), 3);
        assert_eq!(c.stats(), AccessStats::new(3, 0), "3 entries = 3 accesses");
        // Overrunning the end bills only what was actually obtained.
        assert_eq!(c.sorted_batch(3, 10, &mut out), 1);
        assert_eq!(c.stats(), AccessStats::new(4, 0));
        assert_eq!(c.sorted_batch(4, 10, &mut out), 0);
        assert_eq!(c.stats(), AccessStats::new(4, 0));
    }

    #[test]
    fn batched_metering_matches_per_rank_metering() {
        let per_rank = CountingSource::new(source());
        for r in 0..4 {
            per_rank.sorted_access(r);
        }
        let batched = CountingSource::new(source());
        let mut out = Vec::new();
        while batched.sorted_batch(out.len(), 2, &mut out) > 0 {}
        assert_eq!(per_rank.stats(), batched.stats());
    }

    #[test]
    fn default_sorted_batch_agrees_with_native() {
        /// A source with only the positional default.
        struct Positional(MemorySource);
        impl GradedSource for Positional {
            fn len(&self) -> usize {
                self.0.len()
            }
            fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
                self.0.sorted_access(rank)
            }
            fn random_access(&self, object: ObjectId) -> Option<Grade> {
                self.0.random_access(object)
            }
        }
        let native = source();
        let fallback = Positional(source());
        for (start, count) in [(0, 2), (1, 3), (3, 5), (4, 1), (9, 2)] {
            let mut a = Vec::new();
            let mut b = Vec::new();
            assert_eq!(
                native.sorted_batch(start, count, &mut a),
                fallback.sorted_batch(start, count, &mut b)
            );
            assert_eq!(a, b, "start {start} count {count}");
        }
    }

    #[test]
    fn bounded_batch_is_a_prefix_and_truncation_is_honest() {
        // Descending grades 1.0, 0.9, ..., 0.1 over 10 objects.
        let grades: Vec<Grade> = (1..=10).map(|i| g(i as f64 / 10.0)).collect();
        let s = MemorySource::from_grades(&grades);
        let mut full = Vec::new();
        s.sorted_batch(0, 10, &mut full);
        for bound in [0.05, 0.35, 0.75, 1.0] {
            let bound = g(bound);
            let mut bounded = Vec::new();
            let result = s.sorted_batch_bounded(0, 10, bound, &mut bounded);
            assert_eq!(result.appended, bounded.len());
            assert_eq!(bounded, full[..result.appended], "prefix for bound {bound}");
            if result.truncated {
                assert!(
                    full[result.appended..].iter().all(|e| e.grade < bound),
                    "truncation must prove the suffix below {bound}"
                );
            }
        }
        // A bound of zero can never truncate: no grade is strictly below it.
        let mut all = Vec::new();
        let result = s.sorted_batch_bounded(0, 100, Grade::ZERO, &mut all);
        assert_eq!(
            result,
            BoundedBatch {
                appended: 10,
                truncated: false
            }
        );
    }

    #[test]
    fn bounded_billing_charges_entries_obtained() {
        let grades: Vec<Grade> = (1..=8).map(|i| g(i as f64 / 8.0)).collect();
        let c = CountingSource::new(MemorySource::from_grades(&grades));
        let mut out = Vec::new();
        let result = c.sorted_batch_bounded(0, 8, g(0.99), &mut out);
        assert_eq!(c.stats(), AccessStats::new(result.appended as u64, 0));
    }

    #[test]
    fn bounded_cursor_resumes_the_exact_stream_after_a_dirty_hint() {
        let grades: Vec<Grade> = (1..=20).map(|i| g(i as f64 / 20.0)).collect();
        let s = MemorySource::from_grades(&grades);
        let mut full = Vec::new();
        s.sorted_batch(0, 20, &mut full);
        // A deliberately dirty (too-high) hint: almost everything is
        // suppressed on the first pass.
        let mut cursor = s.open_sorted().with_bound(g(0.95));
        assert_eq!(cursor.bound(), Some(g(0.95)));
        let mut streamed = Vec::new();
        while cursor.next_batch(&mut streamed, 4) > 0 {}
        assert!(cursor.stopped_by_bound(), "short batch came from the bound");
        assert_eq!(streamed, full[..streamed.len()], "still an exact prefix");
        // Recovery: clear the bound and resume from the same position.
        cursor.set_bound(None);
        while cursor.next_batch(&mut streamed, 4) > 0 {}
        assert!(!cursor.stopped_by_bound());
        assert_eq!(streamed, full, "dirty hint recovered the identical stream");
    }

    #[test]
    fn random_batch_aligns_with_probes_including_misses_and_duplicates() {
        let s = source();
        let probes = [
            ObjectId(2),
            ObjectId(99), // miss
            ObjectId(2),  // duplicate
            ObjectId(0),
        ];
        let mut out = vec![Some(g(1.0))]; // pre-existing entry must survive
        s.random_batch(&probes, &mut out);
        assert_eq!(
            out,
            vec![Some(g(1.0)), Some(g(0.5)), None, Some(g(0.5)), Some(g(0.2))]
        );
    }

    #[test]
    fn random_batch_billing_matches_per_object_loop() {
        let probes = [ObjectId(0), ObjectId(7), ObjectId(1), ObjectId(1)];
        let looped = CountingSource::new(source());
        for &p in &probes {
            looped.random_access(p);
        }
        let batched = CountingSource::new(source());
        let mut out = Vec::new();
        batched.random_batch(&probes, &mut out);
        // 3 hits (object 7 misses), billed identically either way.
        assert_eq!(looped.stats(), batched.stats());
        assert_eq!(batched.stats(), AccessStats::new(0, 3));
    }

    #[test]
    fn arc_dyn_sources_are_owned_shareable_handles() {
        let arc: Arc<dyn GradedSource> = Arc::new(source());
        let clone = Arc::clone(&arc);
        let mut out = Vec::new();
        assert_eq!(clone.sorted_batch(0, 4, &mut out), 4);
        assert_eq!(out[0], arc.sorted_access(0).unwrap());
        let crisp: Arc<dyn SetAccess> = Arc::new(source());
        assert_eq!(crisp.matching_set(), vec![ObjectId(3)]);
    }

    #[test]
    fn concurrent_metering_bills_exactly_like_sequential() {
        let c = CountingSource::new(source());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    assert_eq!(c.sorted_batch(0, 4, &mut out), 4);
                    assert_eq!(c.random_access(ObjectId(0)), Some(g(0.2)));
                });
            }
        });
        // 4 threads × (4 sorted entries + 1 random hit), no lost updates.
        assert_eq!(c.stats(), AccessStats::new(16, 4));
    }

    #[test]
    fn boxed_dyn_sources_use_the_native_batch_path() {
        let boxed: Box<dyn GradedSource> = Box::new(source());
        let mut out = Vec::new();
        assert_eq!(boxed.sorted_batch(0, 4, &mut out), 4);
        assert_eq!(out[0], boxed.sorted_access(0).unwrap());
        let mut cursor = boxed.open_sorted();
        let mut streamed = Vec::new();
        cursor.next_batch(&mut streamed, 4);
        assert_eq!(streamed, out);
    }
}
