//! The subsystem access model of Section 4.
//!
//! Garlic can interact with a subsystem in exactly two ways:
//!
//! * **Sorted access** — "the subsystem will output the graded set
//!   consisting of all objects, one by one, along with their grades under
//!   the subquery, in sorted order based on grade";
//! * **Random access** — "Garlic could ask the subsystem the grade (with
//!   respect to a query) of any given object".
//!
//! [`GradedSource`] captures that contract. [`CountingSource`] wraps any
//! source and meters both access kinds, producing the [`AccessStats`] the
//! Section 5 cost model is defined over. [`SetAccess`] is the extra
//! capability crisp relational subsystems have — enumerating the exact-match
//! set — which enables the "Beatles" filtered strategy of Section 4.

use std::cell::Cell;

use garlic_agg::Grade;

use crate::cost::AccessStats;
use crate::graded_set::{GradedEntry, GradedSet};
use crate::object::ObjectId;

/// A subsystem's view of one atomic query: a graded set reachable through
/// sorted access and random access.
///
/// Sorted access is *positional* (`rank` is 0-based); this models "ask for
/// the top 10, then the next 10" as well as one-by-one streaming, and makes
/// instrumentation and resumption trivial. Every object in the database is
/// graded (possibly with grade 0), so `len()` is the database size `N`.
pub trait GradedSource {
    /// The number of graded objects (the database size `N`).
    fn len(&self) -> usize;

    /// Whether the source grades no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorted access: the `rank`-th entry (0-based) in descending-grade
    /// order, or `None` past the end. Tie order is fixed by the source (the
    /// paper's *skeleton*).
    fn sorted_access(&self, rank: usize) -> Option<GradedEntry>;

    /// Random access: the grade of `object`, or `None` for an unknown object.
    fn random_access(&self, object: ObjectId) -> Option<Grade>;
}

/// Extra capability of crisp sources: enumerate every object whose grade is
/// exactly 1 (the classical relation "result set"). Powers the filtered
/// conjunction strategy of Section 4.
pub trait SetAccess: GradedSource {
    /// All objects with grade 1, in unspecified order.
    fn matching_set(&self) -> Vec<ObjectId>;
}

/// An in-memory [`GradedSource`] over a [`GradedSet`], with a hash index for
/// O(1) random access. The workhorse source for workloads and tests.
#[derive(Debug, Clone)]
pub struct MemorySource {
    set: GradedSet,
    index: std::collections::HashMap<ObjectId, Grade>,
}

impl MemorySource {
    /// Builds the source (and its random-access index) from a graded set.
    pub fn new(set: GradedSet) -> Self {
        let index = set.to_map();
        MemorySource { set, index }
    }

    /// Builds from `(object, grade)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ObjectId, Grade)>) -> Self {
        MemorySource::new(GradedSet::from_pairs(pairs))
    }

    /// Builds from a dense grade vector (object `i` gets `grades[i]`).
    pub fn from_grades(grades: &[Grade]) -> Self {
        MemorySource::new(GradedSet::from_grades(grades))
    }

    /// The underlying graded set.
    pub fn graded_set(&self) -> &GradedSet {
        &self.set
    }
}

impl GradedSource for MemorySource {
    fn len(&self) -> usize {
        self.set.len()
    }

    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        self.set.at_rank(rank)
    }

    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        self.index.get(&object).copied()
    }
}

impl SetAccess for MemorySource {
    fn matching_set(&self) -> Vec<ObjectId> {
        self.set
            .iter()
            .take_while(|e| e.grade == Grade::ONE)
            .map(|e| e.object)
            .collect()
    }
}

/// Wraps a source and counts accesses, implementing the Section 5 cost
/// bookkeeping. Uses interior mutability so the counted source still
/// implements [`GradedSource`] by shared reference.
#[derive(Debug)]
pub struct CountingSource<S> {
    inner: S,
    sorted: Cell<u64>,
    random: Cell<u64>,
}

impl<S: GradedSource> CountingSource<S> {
    /// Wraps a source with zeroed counters.
    pub fn new(inner: S) -> Self {
        CountingSource {
            inner,
            sorted: Cell::new(0),
            random: Cell::new(0),
        }
    }

    /// The access counts so far.
    pub fn stats(&self) -> AccessStats {
        AccessStats {
            sorted: self.sorted.get(),
            random: self.random.get(),
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.sorted.set(0);
        self.random.set(0);
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, discarding the counters.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: GradedSource> GradedSource for CountingSource<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        let entry = self.inner.sorted_access(rank);
        if entry.is_some() {
            // Only successful retrievals count as "objects obtained".
            self.sorted.set(self.sorted.get() + 1);
        }
        entry
    }

    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        let grade = self.inner.random_access(object);
        if grade.is_some() {
            self.random.set(self.random.get() + 1);
        }
        grade
    }
}

impl<S: SetAccess> SetAccess for CountingSource<S> {
    fn matching_set(&self) -> Vec<ObjectId> {
        let set = self.inner.matching_set();
        // Enumerating the match set retrieves |set| objects from the
        // subsystem; bill it as sorted access (it is a prefix of the sorted
        // order: exactly the grade-1 block).
        self.sorted.set(self.sorted.get() + set.len() as u64);
        set
    }
}

/// Wraps each source of a workload in a [`CountingSource`].
pub fn counted<S: GradedSource>(sources: Vec<S>) -> Vec<CountingSource<S>> {
    sources.into_iter().map(CountingSource::new).collect()
}

/// Sums the stats of a slice of counted sources.
pub fn total_stats<S: GradedSource>(sources: &[CountingSource<S>]) -> AccessStats {
    sources.iter().map(|s| s.stats()).sum()
}

impl<S: GradedSource + ?Sized> GradedSource for &S {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        (**self).sorted_access(rank)
    }
    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        (**self).random_access(object)
    }
}

impl<S: GradedSource + ?Sized> GradedSource for Box<S> {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        (**self).sorted_access(rank)
    }
    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        (**self).random_access(object)
    }
}

impl<S: SetAccess + ?Sized> SetAccess for &S {
    fn matching_set(&self) -> Vec<ObjectId> {
        (**self).matching_set()
    }
}

impl<S: SetAccess + ?Sized> SetAccess for Box<S> {
    fn matching_set(&self) -> Vec<ObjectId> {
        (**self).matching_set()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn source() -> MemorySource {
        MemorySource::from_grades(&[g(0.2), g(0.9), g(0.5), g(1.0)])
    }

    #[test]
    fn sorted_access_descends() {
        let s = source();
        assert_eq!(s.sorted_access(0).unwrap().object, ObjectId(3));
        assert_eq!(s.sorted_access(1).unwrap().object, ObjectId(1));
        assert_eq!(s.sorted_access(4), None);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn random_access_looks_up() {
        let s = source();
        assert_eq!(s.random_access(ObjectId(2)), Some(g(0.5)));
        assert_eq!(s.random_access(ObjectId(99)), None);
    }

    #[test]
    fn matching_set_is_grade_one_block() {
        let s = source();
        assert_eq!(s.matching_set(), vec![ObjectId(3)]);
    }

    #[test]
    fn counting_meters_both_kinds() {
        let c = CountingSource::new(source());
        c.sorted_access(0);
        c.sorted_access(1);
        c.random_access(ObjectId(0));
        assert_eq!(c.stats(), AccessStats::new(2, 1));
        c.reset();
        assert_eq!(c.stats(), AccessStats::ZERO);
    }

    #[test]
    fn failed_accesses_do_not_count() {
        let c = CountingSource::new(source());
        c.sorted_access(100);
        c.random_access(ObjectId(100));
        assert_eq!(c.stats(), AccessStats::ZERO);
    }

    #[test]
    fn set_access_billed_as_sorted() {
        let c = CountingSource::new(source());
        let set = c.matching_set();
        assert_eq!(set.len(), 1);
        assert_eq!(c.stats(), AccessStats::new(1, 0));
    }

    #[test]
    fn total_stats_sums() {
        let sources = counted(vec![source(), source()]);
        sources[0].sorted_access(0);
        sources[1].random_access(ObjectId(1));
        assert_eq!(total_stats(&sources), AccessStats::new(1, 1));
    }
}
